"""Figure 12 — sizes of the farthest sets F1 and F2 on all 20 graphs.

Paper's finding (highest-degree reference): |F1| ~ 0.1 n on average,
|F2| ~ 3.4e-4 n (average 857.7 nodes); kIFECC run for |F2| BFS computes
the exact eccentricities of >=99.999% of vertices (19/20 graphs fully
exact).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import farthest_set_statistics
from repro.core.kifecc import approximate_eccentricities

from bench_common import (
    graph_for,
    large_datasets,
    record,
    small_datasets,
    truth_for,
)

_stats = {}
_f2_accuracy = {}


@pytest.mark.parametrize("name", small_datasets() + large_datasets())
def test_f1_f2_sizes(benchmark, name):
    stats = benchmark.pedantic(
        lambda: farthest_set_statistics(graph_for(name)),
        rounds=1,
        iterations=1,
    )
    _stats[name] = stats


@pytest.mark.parametrize("name", small_datasets())
def test_f2_budget_accuracy(benchmark, name):
    """Section 7.4's claim: |F2| BFS runs nearly always give the exact ED."""

    def run():
        stats = _stats.get(name) or farthest_set_statistics(graph_for(name))
        result = approximate_eccentricities(
            graph_for(name), k=max(1, stats.f2_size)
        )
        return result.accuracy_against(truth_for(name))

    _f2_accuracy[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'n':>8} {'|F1|':>7} {'|F2|':>6} "
        f"{'|F1|/n':>8} {'|F2|/n':>8} {'acc@|F2|':>9}"
    ]
    for name, stats in _stats.items():
        acc = _f2_accuracy.get(name)
        lines.append(
            f"{name:<6} {stats.num_vertices:>8} {stats.f1_size:>7} "
            f"{stats.f2_size:>6} {stats.f1_fraction:>8.4f} "
            f"{stats.f2_fraction:>8.4f} "
            f"{'' if acc is None else f'{acc:.3f}%':>9}"
        )
    mean_f1 = float(np.mean([s.f1_fraction for s in _stats.values()]))
    mean_f2 = float(np.mean([s.f2_fraction for s in _stats.values()]))
    lines.append(
        f"mean |F1|/n = {mean_f1:.4f}, mean |F2|/n = {mean_f2:.5f}"
    )
    record("fig12_f1f2", lines)

    # Shape: F2 is far smaller than F1, which is far smaller than n.
    assert mean_f1 < 0.35
    assert mean_f2 < mean_f1 / 2
    for name, stats in _stats.items():
        assert stats.f2_size <= stats.f1_size <= stats.num_vertices, name
    # |F2| BFS give near-exact EDs (paper: 99.999% of vertices).
    accs = list(_f2_accuracy.values())
    assert float(np.mean(accs)) >= 99.0
    exact_count = sum(1 for a in accs if a == 100.0)
    assert exact_count >= len(accs) // 2  # paper: 19 of 20
