"""Ablation — three ways to get a diameter, at what cost and guarantee.

* **SNAP sampling** (Section 7.5): k uniform BFS, no guarantee;
* **Roditty–Williams** (reference [28]): sampling + hitting-set sweep,
  2/3-guarantee w.h.p.;
* **certified extremes** (`repro.core.extremes`): bound propagation,
  exact with a certificate.

The paper's case-study argument is that exactness is affordable; this
bench puts numbers on all three options side by side.
"""

from __future__ import annotations

import pytest

from repro.baselines.rv_diameter import rv_estimate_diameter
from repro.baselines.snap_diameter import snap_estimate_diameter
from repro.core.extremes import radius_and_diameter

from bench_common import graph_for, record, truth_for

GRAPHS = ("HUDO", "TPD", "FLIC", "BAID")
_rows = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_estimators(benchmark, name):
    def run():
        graph = graph_for(name)
        true_dia = int(truth_for(name).max())
        exact = radius_and_diameter(graph)
        budget = exact.num_bfs
        snap = snap_estimate_diameter(graph, sample_size=budget, seed=5)
        rv = rv_estimate_diameter(graph, sample_size=budget, seed=5)
        return true_dia, exact, snap, rv

    _rows[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'true':>5} "
        f"{'extremes (bfs)':>14} {'SNAP (bfs)':>11} {'RW (bfs)':>10}"
    ]
    for name, (true_dia, exact, snap, rv) in _rows.items():
        lines.append(
            f"{name:<6} {true_dia:>5} "
            f"{exact.diameter:>8} ({exact.num_bfs:>3}) "
            f"{snap.diameter:>5} ({snap.sample_size:>3}) "
            f"{rv.diameter:>4} ({rv.num_bfs:>3})"
        )
    record("ablation_diameter_estimators", lines)

    for name, (true_dia, exact, snap, rv) in _rows.items():
        # the certified method is exact
        assert exact.diameter == true_dia, name
        # both samplers are lower bounds; RW additionally guarantees 2/3
        assert snap.diameter <= true_dia, name
        assert rv.diameter <= true_dia, name
        assert 3 * rv.diameter >= 2 * true_dia, name
        # RW's hitting-set + double-sweep never loses to plain sampling
        # at the same budget (it includes strictly more structure).
        assert rv.diameter >= snap.diameter, name
