"""Shared infrastructure for the per-table / per-figure benchmarks.

Each ``bench_*.py`` module reproduces one table or figure of the paper's
evaluation (Section 7).  The conventions:

* heavy computations run once (``benchmark.pedantic(rounds=1)``) — these
  are experiment harnesses, not micro-benchmarks;
* every module prints the same rows/series its paper artifact reports and
  appends them to ``benchmarks/results/<experiment>.txt`` so the outputs
  survive the pytest run;
* every module asserts the *shape* of the paper's finding (who wins, by
  roughly what factor, which curves are monotone) — absolute numbers are
  not comparable because the substrate is a pure-Python simulator on
  synthetic stand-ins (see DESIGN.md).

Module-level caches keep each dataset's graph, exact eccentricities, and
PLL index shared across benchmark modules within one pytest session.

Wall-clock measurement goes through :class:`repro.obs.trace.Stopwatch`
(reprolint R8 bans bare ``time.perf_counter()`` pairs in the library;
benchmarks follow the same convention), and :func:`write_trace_record`
packages one traced IFECC run as the machine-readable run-record
artifact CI uploads next to ``BENCH_bfs_engine.json``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.baselines.naive import naive_eccentricities
from repro.core.ifecc import IFECC, compute_eccentricities
from repro.datasets.collection import default_collection
from repro.datasets.registry import dataset_names, get_spec
from repro.errors import BudgetExhaustedError
from repro.graph.csr import Graph
from repro.obs.record import RunRecord
from repro.obs.trace import MemorySink, tracing
from repro.pll.index import PLLIndex, build_pll_index

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-dataset wall-clock cap standing in for the paper's 24-hour cut-off.
CUTOFF_SECONDS = 90.0

#: BoundECC BFS cap implied by the cut-off (BFS cost ~ ms at our scale).
BOUNDECC_MAX_BFS = 20_000

_GRAPHS: Dict[str, Graph] = {}
_TRUTH: Dict[str, np.ndarray] = {}
_PLL: Dict[str, Optional[PLLIndex]] = {}


def graph_for(name: str) -> Graph:
    """The stand-in graph for a dataset (session cache).

    Sourced through the default :class:`~repro.datasets.collection.
    GraphCollection`: the first bench invocation on a machine
    materializes the stand-in into a ``.rcsr`` container, every later
    one (same session or not) mmap-opens the file instead of
    regenerating an identical graph.
    """
    if name not in _GRAPHS:
        _GRAPHS[name] = default_collection().open(name)
    return _GRAPHS[name]


def truth_for(name: str) -> np.ndarray:
    """Exact eccentricities of a stand-in (via IFECC, verified once by
    the naive oracle on the smallest dataset)."""
    if name not in _TRUTH:
        graph = graph_for(name)
        result = compute_eccentricities(graph)
        _TRUTH[name] = result.eccentricities
    return _TRUTH[name]


def pll_index_for(name: str) -> Optional[PLLIndex]:
    """A PLL index for a dataset, or None when construction exceeds the
    cut-off (the paper's DNF case).  Cached across benchmarks."""
    if name not in _PLL:
        try:
            _PLL[name] = build_pll_index(
                graph_for(name), time_budget=CUTOFF_SECONDS
            )
        except BudgetExhaustedError:
            _PLL[name] = None
    return _PLL[name]


def small_datasets():
    return dataset_names("small")


def large_datasets():
    return dataset_names("large")


_written_this_session = set()


def record(experiment: str, lines) -> None:
    """Print a result block and write it to the results file.

    The first write of a pytest session truncates the file, so
    ``benchmarks/results/<experiment>.txt`` always holds the latest run.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    text = "\n".join(lines)
    print(f"\n=== {experiment} ===\n{text}")
    mode = "a" if experiment in _written_this_session else "w"
    _written_this_session.add(experiment)
    with open(RESULTS_DIR / f"{experiment}.txt", mode, encoding="utf-8") as f:
        f.write(f"# run {stamp}\n{text}\n\n")


def write_trace_record(graph: Graph, out_path: Path) -> RunRecord:
    """Run IFECC on ``graph`` under a capturing tracer; save the record.

    The record (header / per-traversal events / footer, see
    :mod:`repro.obs.record`) is the structured counterpart of the
    aggregate timings in ``BENCH_bfs_engine.json``: it pins the exact
    probe sequence, per-BFS direction decisions, and final result, so a
    perf regression can be diagnosed from the artifact alone.
    """
    sink = MemorySink()
    with tracing(sink) as tracer:
        result = IFECC(graph).run()
    record = RunRecord.from_run(
        result,
        graph,
        sink.events,
        config={"harness": "bench-smoke"},
        metrics=tracer.metrics.snapshot(),
    )
    record.write_jsonl(str(out_path))
    return record


def fmt_seconds(seconds: Optional[float]) -> str:
    """Human-readable seconds with a DNF marker for None."""
    if seconds is None:
        return "DNF"
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def geometric_mean(values) -> float:
    values = np.asarray([v for v in values if v is not None], dtype=float)
    if len(values) == 0:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))
