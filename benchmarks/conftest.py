"""Benchmark-suite configuration: make bench_common importable and keep
pytest-benchmark in single-round mode (these are experiment harnesses)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
