"""Figure 9 — effect of the reference-node count r on IFECC's runtime.

Paper's finding: relative to r = 1, running time grows ~1.3x, 1.8x,
2.8x, 4.5x for r = 2, 4, 8, 16 on average; occasionally r = 2 wins by a
hair (e.g. SKIT), but never by more than ~1.1x.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.ifecc import compute_eccentricities
from repro.obs.trace import Stopwatch

from bench_common import (
    geometric_mean,
    graph_for,
    record,
    small_datasets,
    truth_for,
)

RS = (1, 2, 4, 8, 16)
_times = {}


@pytest.mark.parametrize("name", small_datasets())
@pytest.mark.parametrize("r", RS)
def test_ifecc_r(benchmark, name, r):
    def run():
        graph = graph_for(name)
        watch = Stopwatch()
        result = compute_eccentricities(graph, num_references=r)
        elapsed = watch.elapsed()
        np.testing.assert_array_equal(
            result.eccentricities, truth_for(name)
        )
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    _times.setdefault(name, {})[r] = elapsed


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} " + " ".join(f"r={r:<2}/r=1" for r in RS[1:])
    ]
    ratios_by_r = {r: [] for r in RS[1:]}
    for name in small_datasets():
        row = _times[name]
        rel = [row[r] / row[1] for r in RS[1:]]
        for r, value in zip(RS[1:], rel):
            ratios_by_r[r].append(value)
        lines.append(
            f"{name:<6} " + " ".join(f"{v:>8.2f}" for v in rel)
        )
    means = {r: geometric_mean(v) for r, v in ratios_by_r.items()}
    lines.append(
        "geomean slowdown vs r=1: "
        + ", ".join(f"r={r}: {m:.2f}x" for r, m in means.items())
    )
    record("fig9_reference_count", lines)

    # Shape: slowdown grows with r, and r=16 costs materially more.
    assert means[16] > means[2]
    assert means[16] > 1.5
    # r=1 is never much worse than any other r (paper: <= ~1.1x).
    for name in small_datasets():
        best = min(_times[name].values())
        assert _times[name][1] <= 2.0 * best, name
