"""BFS engine benchmark — seed kernel vs. top-down-only vs. hybrid.

First point of the repo's perf trajectory: times the direction-optimizing
pooled-workspace :class:`repro.graph.engine.BFSEngine` against (a) a
faithful copy of the seed level-synchronous kernel (per-run allocation,
``np.unique`` frontier dedupe) and (b) the engine forced top-down, on the
generator suite (paper example, random power-law, grid, star).  Writes
machine-readable ``BENCH_bfs_engine.json`` at the repository root with
per-level direction decisions and edges-inspected counts, so Figure
8-style runtime claims are auditable.  Alongside it the suite writes
``BENCH_trace_ifecc.jsonl`` — a structured :mod:`repro.obs.record` run
record of one traced IFECC run on the power-law graph — so every perf
PR carries a replayable probe-by-probe account, not just aggregates.

Run standalone::

    python benchmarks/bench_bfs_engine.py            # full suite (n >= 50k)
    python benchmarks/bench_bfs_engine.py --smoke    # CI-sized graphs

or via pytest (smoke-sized, asserts the shape claims)::

    pytest benchmarks/bench_bfs_engine.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.engine import BFSEngine
from repro.graph.generators import (
    barabasi_albert,
    grid_graph,
    paper_example_graph,
    star_graph,
)
from repro.graph.traversal import UNREACHED
from repro.obs.trace import Stopwatch

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_bfs_engine.json"
DEFAULT_TRACE_OUT = REPO_ROOT / "BENCH_trace_ifecc.jsonl"

#: The aggregate-speedup claim the JSON must witness on the power-law
#: graph (hybrid vs. seed kernel) in full mode.
TARGET_SPEEDUP = 1.5


# ----------------------------------------------------------------------
# Seed kernel (faithful copy of the pre-engine bfs_distances_bounded)
# ----------------------------------------------------------------------
def seed_bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """The original level-synchronous kernel: fresh O(n) state per run,
    every duplicate neighbor materialised, ``np.unique`` sort per level."""
    indptr, indices = graph.indptr, graph.indices
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        csum = np.cumsum(counts)
        offsets = np.repeat(starts - (csum - counts), counts)
        neighbors = indices[np.arange(total, dtype=np.int64) + offsets]
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    return dist


# ----------------------------------------------------------------------
# Suite definition
# ----------------------------------------------------------------------
def suite_graphs(smoke: bool) -> Dict[str, Tuple[str, Graph]]:
    """Benchmark graphs: ``name -> (family, graph)``."""
    if smoke:
        return {
            "paper-example": ("paper example", paper_example_graph()),
            "powerlaw-4k": (
                "random power-law",
                barabasi_albert(4_000, 4, seed=7),
            ),
            "grid-40x30": ("grid", grid_graph(40, 30)),
            "star-3k": ("star", star_graph(3_000)),
        }
    return {
        "paper-example": ("paper example", paper_example_graph()),
        "powerlaw-50k": (
            "random power-law",
            barabasi_albert(50_000, 4, seed=7),
        ),
        "grid-250x200": ("grid", grid_graph(250, 200)),
        "star-50k": ("star", star_graph(50_000)),
    }


def pick_sources(graph: Graph, count: int, seed: int = 0) -> List[int]:
    """Max-degree vertex plus seeded random vertices (BFS sources)."""
    rng = np.random.default_rng(seed)
    sources = [graph.max_degree_vertex()]
    while len(sources) < min(count, graph.num_vertices):
        v = int(rng.integers(0, graph.num_vertices))
        if v not in sources:
            sources.append(v)
    return sources


def _time_total(
    kernel: Callable[[int], np.ndarray],
    sources: Sequence[int],
    repeats: int,
) -> float:
    """Best-of-``repeats`` total seconds to run ``kernel`` on all sources."""
    best = float("inf")
    for _ in range(repeats):
        watch = Stopwatch()
        for s in sources:
            kernel(s)
        best = min(best, watch.elapsed())
    return best


def bench_graph(
    name: str,
    family: str,
    graph: Graph,
    num_sources: int,
    repeats: int,
) -> Dict[str, object]:
    """Time the three kernels on one graph and audit the hybrid runs."""
    sources = pick_sources(graph, num_sources)
    # Dedicated engines so pooled buffers are warm but stats are ours.
    hybrid = BFSEngine(graph)
    topdown = BFSEngine(graph)

    # Correctness audit + per-run direction/edge accounting (untimed).
    runs: List[Dict[str, object]] = []
    for s in sources:
        expected = seed_bfs_distances(graph, s)
        got = hybrid.run(s, mode="hybrid")
        if not np.array_equal(expected, got):
            raise AssertionError(
                f"hybrid BFS disagrees with seed kernel on {name}, "
                f"source {s}"
            )
        stats = hybrid.last_stats
        runs.append(
            {
                "source": s,
                "eccentricity": hybrid.last_ecc,
                "levels": stats.levels,
                "directions": list(stats.directions),
                "frontier_sizes": list(stats.frontier_sizes),
                "edges_scanned": stats.edges_scanned,
                "edges_inspected": stats.edges_inspected,
            }
        )

    seed_s = _time_total(lambda s: seed_bfs_distances(graph, s), sources, repeats)
    td_s = _time_total(lambda s: topdown.run(s, mode="top-down"), sources, repeats)
    hy_s = _time_total(lambda s: hybrid.run(s, mode="hybrid"), sources, repeats)
    return {
        "name": name,
        "family": family,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "sources": sources,
        "repeats": repeats,
        "seed_seconds": seed_s,
        "topdown_seconds": td_s,
        "hybrid_seconds": hy_s,
        "speedup_topdown_vs_seed": seed_s / td_s if td_s else float("inf"),
        "speedup_hybrid_vs_seed": seed_s / hy_s if hy_s else float("inf"),
        "runs": runs,
    }


def run_suite(
    smoke: bool,
    num_sources: int,
    repeats: int,
    out_path: Path,
) -> Dict[str, object]:
    """Run every suite graph and write the JSON report."""
    from repro.graph.engine import ALPHA, BETA

    graphs = suite_graphs(smoke)
    results = []
    for name, (family, graph) in graphs.items():
        print(
            f"[bench_bfs_engine] {name}: n={graph.num_vertices} "
            f"m={graph.num_edges} ..."
        )
        entry = bench_graph(name, family, graph, num_sources, repeats)
        print(
            "  seed {seed_seconds:.4f}s  top-down {topdown_seconds:.4f}s  "
            "hybrid {hybrid_seconds:.4f}s  (hybrid speedup "
            "{speedup_hybrid_vs_seed:.2f}x)".format(**entry)  # type: ignore[str-format]
        )
        results.append(entry)
    powerlaw = next(r for r in results if r["family"] == "random power-law")
    report: Dict[str, object] = {
        "schema": "bench_bfs_engine/v1",
        "mode": "smoke" if smoke else "full",
        "alpha": ALPHA,
        "beta": BETA,
        "target_speedup": TARGET_SPEEDUP,
        "graphs": results,
        "aggregate": {
            "seed_seconds": sum(r["seed_seconds"] for r in results),  # type: ignore[misc]
            "topdown_seconds": sum(r["topdown_seconds"] for r in results),  # type: ignore[misc]
            "hybrid_seconds": sum(r["hybrid_seconds"] for r in results),  # type: ignore[misc]
            "powerlaw_speedup_hybrid_vs_seed": powerlaw[
                "speedup_hybrid_vs_seed"
            ],
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_bfs_engine] wrote {out_path}")

    from bench_common import write_trace_record

    powerlaw_name = str(powerlaw["name"])
    trace_path = out_path.parent / DEFAULT_TRACE_OUT.name
    trace_record = write_trace_record(graphs[powerlaw_name][1], trace_path)
    print(
        f"[bench_bfs_engine] wrote {trace_path} "
        f"({len(trace_record.events)} events, "
        f"{trace_record.result.get('num_traversals', '?')} traversals)"
    )
    return report


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized, asserts the shape claims)
# ----------------------------------------------------------------------
def test_engine_beats_seed_kernel(benchmark) -> None:  # type: ignore[no-untyped-def]
    """Hybrid ≡ seed on every suite graph; bottom-up fires on the dense
    families; the JSON report lands at the repo root."""
    report = benchmark.pedantic(
        lambda: run_suite(
            smoke=True, num_sources=3, repeats=1, out_path=DEFAULT_OUT
        ),
        rounds=1,
        iterations=1,
    )
    graphs = {g["name"]: g for g in report["graphs"]}
    # Direction switching engages on the scale-free and star families.
    powerlaw_dirs = [
        d for r in graphs["powerlaw-4k"]["runs"] for d in r["directions"]
    ]
    star_dirs = [d for r in graphs["star-3k"]["runs"] for d in r["directions"]]
    assert "bu" in powerlaw_dirs
    assert "bu" in star_dirs
    # Bottom-up levels inspect edges they never scan.
    for r in graphs["powerlaw-4k"]["runs"]:
        assert r["edges_inspected"] >= r["edges_scanned"]
    assert DEFAULT_OUT.exists()
    # The run-record artifact rides along and round-trips.
    assert DEFAULT_TRACE_OUT.exists()
    from repro.obs.record import RunRecord

    rec = RunRecord.read_jsonl(str(DEFAULT_TRACE_OUT))
    assert rec.result["exact"] is True
    assert len(rec.probe_events()) == rec.result["num_traversals"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized graphs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_bfs_engine.json)",
    )
    parser.add_argument("--sources", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    num_sources = args.sources if args.sources else (3 if args.smoke else 8)
    report = run_suite(args.smoke, num_sources, args.repeats, args.out)
    speedup = report["aggregate"]["powerlaw_speedup_hybrid_vs_seed"]  # type: ignore[index]
    if not args.smoke and speedup < TARGET_SPEEDUP:
        print(
            f"WARNING: hybrid speedup {speedup:.2f}x below the "
            f"{TARGET_SPEEDUP}x target on the power-law graph"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
