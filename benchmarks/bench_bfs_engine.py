"""BFS engine benchmark — seed kernel vs. hybrid vs. process backend.

First point of the repo's perf trajectory: times the direction-optimizing
pooled-workspace :class:`repro.graph.engine.BFSEngine` against (a) a
faithful copy of the seed level-synchronous kernel (per-run allocation,
``np.unique`` frontier dedupe) and (b) the engine forced top-down, on the
generator suite (paper example, random power-law, grid, star).  Writes
machine-readable ``BENCH_bfs_engine.json`` at the repository root with
per-level direction decisions and edges-inspected counts, so Figure
8-style runtime claims are auditable.  Alongside it the suite writes
``BENCH_trace_ifecc.jsonl`` — a structured :mod:`repro.obs.record` run
record of one traced IFECC run on the power-law graph — so every perf
PR carries a replayable probe-by-probe account, not just aggregates.

The *backend shootout* section additionally races the full-ED
eccentricity sweep across backends — seed kernel, in-process hybrid
engine, and the shared-memory process backend at several worker counts
(:mod:`repro.parallel`) — and writes ``BENCH_parallel_backend.json``
with speedup-vs-cores plus the host's ``effective_cpus``, asserting the
eccentricities are bit-identical across every configuration.

Run standalone::

    python benchmarks/bench_bfs_engine.py            # full suite (n >= 50k)
    python benchmarks/bench_bfs_engine.py --smoke    # CI-sized graphs
    python benchmarks/bench_bfs_engine.py --smoke --shootout-only \
        --workers 1,2                                # backend race only

or via pytest (smoke-sized, asserts the shape claims)::

    pytest benchmarks/bench_bfs_engine.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.engine import BFSEngine
from repro.graph.generators import (
    barabasi_albert,
    grid_graph,
    paper_example_graph,
    star_graph,
)
from repro.graph.traversal import UNREACHED
from repro.obs.trace import Stopwatch

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_bfs_engine.json"
DEFAULT_TRACE_OUT = REPO_ROOT / "BENCH_trace_ifecc.jsonl"
DEFAULT_PARALLEL_OUT = REPO_ROOT / "BENCH_parallel_backend.json"

#: The aggregate-speedup claim the JSON must witness on the power-law
#: graph (hybrid vs. seed kernel) in full mode.
TARGET_SPEEDUP = 1.5

#: Speedup the process backend targets at 4 workers vs. the hybrid
#: engine — achievable only on hosts that actually expose >= 4 cores;
#: the report records ``effective_cpus`` so a miss on a constrained box
#: is distinguishable from a regression.
PARALLEL_TARGET_SPEEDUP = 2.0
PARALLEL_TARGET_WORKERS = 4


# ----------------------------------------------------------------------
# Seed kernel (faithful copy of the pre-engine bfs_distances_bounded)
# ----------------------------------------------------------------------
def seed_bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """The original level-synchronous kernel: fresh O(n) state per run,
    every duplicate neighbor materialised, ``np.unique`` sort per level."""
    indptr, indices = graph.indptr, graph.indices
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        csum = np.cumsum(counts)
        offsets = np.repeat(starts - (csum - counts), counts)
        neighbors = indices[np.arange(total, dtype=np.int64) + offsets]
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    return dist


# ----------------------------------------------------------------------
# Suite definition
# ----------------------------------------------------------------------
def suite_graphs(smoke: bool) -> Dict[str, Tuple[str, Graph]]:
    """Benchmark graphs: ``name -> (family, graph)``."""
    if smoke:
        return {
            "paper-example": ("paper example", paper_example_graph()),
            "powerlaw-4k": (
                "random power-law",
                barabasi_albert(4_000, 4, seed=7),
            ),
            "grid-40x30": ("grid", grid_graph(40, 30)),
            "star-3k": ("star", star_graph(3_000)),
        }
    return {
        "paper-example": ("paper example", paper_example_graph()),
        "powerlaw-50k": (
            "random power-law",
            barabasi_albert(50_000, 4, seed=7),
        ),
        "grid-250x200": ("grid", grid_graph(250, 200)),
        "star-50k": ("star", star_graph(50_000)),
    }


def pick_sources(graph: Graph, count: int, seed: int = 0) -> List[int]:
    """Max-degree vertex plus seeded random vertices (BFS sources)."""
    rng = np.random.default_rng(seed)
    sources = [graph.max_degree_vertex()]
    while len(sources) < min(count, graph.num_vertices):
        v = int(rng.integers(0, graph.num_vertices))
        if v not in sources:
            sources.append(v)
    return sources


def _time_total(
    kernel: Callable[[int], np.ndarray],
    sources: Sequence[int],
    repeats: int,
) -> float:
    """Best-of-``repeats`` total seconds to run ``kernel`` on all sources."""
    best = float("inf")
    for _ in range(repeats):
        watch = Stopwatch()
        for s in sources:
            kernel(s)
        best = min(best, watch.elapsed())
    return best


def bench_graph(
    name: str,
    family: str,
    graph: Graph,
    num_sources: int,
    repeats: int,
) -> Dict[str, object]:
    """Time the three kernels on one graph and audit the hybrid runs."""
    sources = pick_sources(graph, num_sources)
    # Dedicated engines so pooled buffers are warm but stats are ours.
    hybrid = BFSEngine(graph)
    topdown = BFSEngine(graph)

    # Correctness audit + per-run direction/edge accounting (untimed).
    runs: List[Dict[str, object]] = []
    for s in sources:
        expected = seed_bfs_distances(graph, s)
        got = hybrid.run(s, mode="hybrid")
        if not np.array_equal(expected, got):
            raise AssertionError(
                f"hybrid BFS disagrees with seed kernel on {name}, "
                f"source {s}"
            )
        stats = hybrid.last_stats
        runs.append(
            {
                "source": s,
                "eccentricity": hybrid.last_ecc,
                "levels": stats.levels,
                "directions": list(stats.directions),
                "frontier_sizes": list(stats.frontier_sizes),
                "edges_scanned": stats.edges_scanned,
                "edges_inspected": stats.edges_inspected,
            }
        )

    seed_s = _time_total(lambda s: seed_bfs_distances(graph, s), sources, repeats)
    td_s = _time_total(lambda s: topdown.run(s, mode="top-down"), sources, repeats)
    hy_s = _time_total(lambda s: hybrid.run(s, mode="hybrid"), sources, repeats)
    return {
        "name": name,
        "family": family,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "sources": sources,
        "repeats": repeats,
        "seed_seconds": seed_s,
        "topdown_seconds": td_s,
        "hybrid_seconds": hy_s,
        "speedup_topdown_vs_seed": seed_s / td_s if td_s else float("inf"),
        "speedup_hybrid_vs_seed": seed_s / hy_s if hy_s else float("inf"),
        "runs": runs,
    }


def run_suite(
    smoke: bool,
    num_sources: int,
    repeats: int,
    out_path: Path,
) -> Dict[str, object]:
    """Run every suite graph and write the JSON report."""
    from repro.graph.engine import ALPHA, BETA

    graphs = suite_graphs(smoke)
    results = []
    for name, (family, graph) in graphs.items():
        print(
            f"[bench_bfs_engine] {name}: n={graph.num_vertices} "
            f"m={graph.num_edges} ..."
        )
        entry = bench_graph(name, family, graph, num_sources, repeats)
        print(
            "  seed {seed_seconds:.4f}s  top-down {topdown_seconds:.4f}s  "
            "hybrid {hybrid_seconds:.4f}s  (hybrid speedup "
            "{speedup_hybrid_vs_seed:.2f}x)".format(**entry)  # type: ignore[str-format]
        )
        results.append(entry)
    powerlaw = next(r for r in results if r["family"] == "random power-law")
    report: Dict[str, object] = {
        "schema": "bench_bfs_engine/v1",
        "mode": "smoke" if smoke else "full",
        "alpha": ALPHA,
        "beta": BETA,
        "target_speedup": TARGET_SPEEDUP,
        "graphs": results,
        "aggregate": {
            "seed_seconds": sum(r["seed_seconds"] for r in results),  # type: ignore[misc]
            "topdown_seconds": sum(r["topdown_seconds"] for r in results),  # type: ignore[misc]
            "hybrid_seconds": sum(r["hybrid_seconds"] for r in results),  # type: ignore[misc]
            "powerlaw_speedup_hybrid_vs_seed": powerlaw[
                "speedup_hybrid_vs_seed"
            ],
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_bfs_engine] wrote {out_path}")

    from bench_common import write_trace_record

    powerlaw_name = str(powerlaw["name"])
    trace_path = out_path.parent / DEFAULT_TRACE_OUT.name
    trace_record = write_trace_record(graphs[powerlaw_name][1], trace_path)
    print(
        f"[bench_bfs_engine] wrote {trace_path} "
        f"({len(trace_record.events)} events, "
        f"{trace_record.result.get('num_traversals', '?')} traversals)"
    )
    return report


# ----------------------------------------------------------------------
# Backend shootout (seed vs hybrid vs process x workers)
# ----------------------------------------------------------------------
def _effective_cpus() -> int:
    """Cores this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _shootout_sources(graph: Graph, count: Optional[int]) -> np.ndarray:
    """Max-degree vertex + seeded distinct random sources (or all)."""
    n = graph.num_vertices
    if count is None or count >= n:
        return np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(0)
    picks = rng.choice(n, size=count, replace=False).astype(np.int64)
    picks[0] = graph.max_degree_vertex()
    return np.unique(picks)


def _seed_ecc_sweep(graph: Graph, sources: np.ndarray) -> np.ndarray:
    """Full-ED over ``sources`` with the seed kernel (the PR-2 baseline)."""
    ecc = np.empty(len(sources), dtype=np.int32)
    for i, s in enumerate(sources):
        dist = seed_bfs_distances(graph, int(s))
        reached = dist[dist != UNREACHED]
        ecc[i] = int(reached.max()) if len(reached) else 0
    return ecc


def run_shootout(
    smoke: bool,
    workers_list: Sequence[int],
    num_sources: Optional[int],
    repeats: int,
    out_path: Path,
) -> Optional[Dict[str, object]]:
    """Race the ED sweep across backends; write the JSON scorecard.

    ``num_sources=None`` sweeps every vertex (the true full ED).
    Returns ``None`` (and writes nothing) where shared memory is
    unavailable.
    """
    from repro.parallel.pool import TraversalPool
    from repro.parallel.shm import shared_memory_available

    if not shared_memory_available():  # pragma: no cover - exotic platform
        print("[bench_parallel] shared_memory unavailable; skipping shootout")
        return None

    if smoke:
        name, graph = "powerlaw-4k", barabasi_albert(4_000, 4, seed=7)
    else:
        name, graph = "powerlaw-50k", barabasi_albert(50_000, 4, seed=7)
    sources = _shootout_sources(graph, num_sources)
    print(
        f"[bench_parallel] {name}: n={graph.num_vertices} "
        f"m={graph.num_edges} sources={len(sources)} "
        f"effective_cpus={_effective_cpus()}"
    )

    engine = BFSEngine(graph)
    reference = engine.ecc_batch(sources).copy()

    def time_config(run: Callable[[], np.ndarray]) -> Tuple[float, bool]:
        """Best-of-``repeats`` seconds + bit-identity vs. the reference."""
        best = float("inf")
        identical = True
        for _ in range(max(1, repeats)):
            watch = Stopwatch()
            ecc = run()
            best = min(best, watch.elapsed())
            identical = identical and np.array_equal(ecc, reference)
        return best, identical

    configs: List[Dict[str, object]] = []
    seed_s, seed_ok = time_config(lambda: _seed_ecc_sweep(graph, sources))
    configs.append(
        {"config": "seed", "workers": 0, "seconds": seed_s,
         "bit_identical": seed_ok}
    )
    print(f"  seed kernel      {seed_s:.4f}s")
    hybrid_s, hybrid_ok = time_config(lambda: engine.ecc_batch(sources))
    configs.append(
        {"config": "hybrid", "workers": 0, "seconds": hybrid_s,
         "bit_identical": hybrid_ok}
    )
    print(f"  hybrid engine    {hybrid_s:.4f}s")
    for workers in workers_list:
        pool = TraversalPool(graph, workers=workers)
        try:
            pool.eccentricities(sources[: min(16, len(sources))])  # warm-up
            proc_s, proc_ok = time_config(
                lambda: pool.eccentricities(sources)
            )
        finally:
            pool.close()
        configs.append(
            {
                "config": f"process x{workers}",
                "workers": workers,
                "seconds": proc_s,
                "bit_identical": proc_ok,
                "speedup_vs_hybrid": hybrid_s / proc_s if proc_s else 0.0,
            }
        )
        print(
            f"  process x{workers}       {proc_s:.4f}s "
            f"({hybrid_s / proc_s:.2f}x vs hybrid)"
        )

    all_identical = all(bool(c["bit_identical"]) for c in configs)
    best_speedup = max(
        (float(c.get("speedup_vs_hybrid", 0.0)) for c in configs), default=0.0
    )
    report: Dict[str, object] = {
        "schema": "bench_parallel_backend/v1",
        "mode": "smoke" if smoke else "full",
        "graph": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_sources": int(len(sources)),
        "full_ed": bool(len(sources) == graph.num_vertices),
        "repeats": repeats,
        "effective_cpus": _effective_cpus(),
        "target_speedup": PARALLEL_TARGET_SPEEDUP,
        "target_workers": PARALLEL_TARGET_WORKERS,
        "configs": configs,
        "bit_identical": all_identical,
        "best_speedup_vs_hybrid": best_speedup,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_parallel] wrote {out_path}")
    if not all_identical:
        raise AssertionError(
            "backend shootout produced non-identical eccentricities"
        )
    return report


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized, asserts the shape claims)
# ----------------------------------------------------------------------
def test_engine_beats_seed_kernel(benchmark) -> None:  # type: ignore[no-untyped-def]
    """Hybrid ≡ seed on every suite graph; bottom-up fires on the dense
    families; the JSON report lands at the repo root."""
    report = benchmark.pedantic(
        lambda: run_suite(
            smoke=True, num_sources=3, repeats=1, out_path=DEFAULT_OUT
        ),
        rounds=1,
        iterations=1,
    )
    graphs = {g["name"]: g for g in report["graphs"]}
    # Direction switching engages on the scale-free and star families.
    powerlaw_dirs = [
        d for r in graphs["powerlaw-4k"]["runs"] for d in r["directions"]
    ]
    star_dirs = [d for r in graphs["star-3k"]["runs"] for d in r["directions"]]
    assert "bu" in powerlaw_dirs
    assert "bu" in star_dirs
    # Bottom-up levels inspect edges they never scan.
    for r in graphs["powerlaw-4k"]["runs"]:
        assert r["edges_inspected"] >= r["edges_scanned"]
    assert DEFAULT_OUT.exists()
    # The run-record artifact rides along and round-trips.
    assert DEFAULT_TRACE_OUT.exists()
    from repro.obs.record import RunRecord

    rec = RunRecord.read_jsonl(str(DEFAULT_TRACE_OUT))
    assert rec.result["exact"] is True
    assert len(rec.probe_events()) == rec.result["num_traversals"]


def test_parallel_backend_shootout(benchmark) -> None:  # type: ignore[no-untyped-def]
    """Process backend is bit-identical to the hybrid engine on the
    smoke graph; the scorecard JSON lands at the repo root."""
    import pytest

    from repro.parallel.shm import shared_memory_available

    if not shared_memory_available():
        pytest.skip("multiprocessing.shared_memory unavailable")
    report = benchmark.pedantic(
        lambda: run_shootout(
            smoke=True,
            workers_list=[2],
            num_sources=48,
            repeats=1,
            out_path=DEFAULT_PARALLEL_OUT,
        ),
        rounds=1,
        iterations=1,
    )
    assert report is not None
    assert report["bit_identical"] is True
    assert report["effective_cpus"] >= 1
    assert DEFAULT_PARALLEL_OUT.exists()
    process_cfgs = [
        c for c in report["configs"] if c["config"].startswith("process")
    ]
    assert process_cfgs and all(c["seconds"] > 0 for c in process_cfgs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized graphs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_bfs_engine.json)",
    )
    parser.add_argument("--sources", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--shootout-only",
        action="store_true",
        help="skip the kernel suite, run only the backend shootout",
    )
    parser.add_argument(
        "--no-shootout",
        action="store_true",
        help="skip the backend shootout",
    )
    parser.add_argument(
        "--workers",
        type=str,
        default="1,2,4",
        help="comma-separated worker counts for the shootout",
    )
    parser.add_argument(
        "--parallel-out",
        type=Path,
        default=DEFAULT_PARALLEL_OUT,
        help="shootout JSON path (default: BENCH_parallel_backend.json)",
    )
    parser.add_argument(
        "--full-ed",
        action="store_true",
        help="shootout sweeps every vertex instead of a source sample",
    )
    args = parser.parse_args(argv)
    num_sources = args.sources if args.sources else (3 if args.smoke else 8)
    status = 0
    if not args.shootout_only:
        report = run_suite(args.smoke, num_sources, args.repeats, args.out)
        speedup = report["aggregate"]["powerlaw_speedup_hybrid_vs_seed"]  # type: ignore[index]
        if not args.smoke and speedup < TARGET_SPEEDUP:
            print(
                f"WARNING: hybrid speedup {speedup:.2f}x below the "
                f"{TARGET_SPEEDUP}x target on the power-law graph"
            )
            status = 1
    if not args.no_shootout:
        workers_list = [int(w) for w in args.workers.split(",") if w]
        shootout_sources = (
            None if args.full_ed else (48 if args.smoke else 512)
        )
        shootout = run_shootout(
            args.smoke,
            workers_list,
            shootout_sources,
            args.repeats,
            args.parallel_out,
        )
        if shootout is not None and not args.smoke:
            best = float(shootout["best_speedup_vs_hybrid"])  # type: ignore[arg-type]
            cpus = int(shootout["effective_cpus"])  # type: ignore[arg-type]
            if best < PARALLEL_TARGET_SPEEDUP:
                print(
                    f"WARNING: process-backend speedup {best:.2f}x below "
                    f"the {PARALLEL_TARGET_SPEEDUP}x target "
                    f"(effective_cpus={cpus})"
                )
                if cpus >= PARALLEL_TARGET_WORKERS:
                    status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
