"""Ablation — MS-BFS (reference [35]) as the "fast naive" baseline.

Even with bit-parallel multi-source BFS (Then et al., VLDB'14) speeding
the |V|-BFS sweep up by the lane width's constant factor, the naive ED
stays quadratic — IFECC beats it by orders of magnitude because it runs
a near-constant number of traversals.  This bench quantifies both gaps.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.baselines.naive import naive_eccentricities
from repro.core.ifecc import compute_eccentricities
from repro.graph.msbfs import msbfs_eccentricities
from repro.obs.trace import Stopwatch

from bench_common import graph_for, record, small_datasets, truth_for

GRAPHS = ("DBLP", "GP", "YOUT", "HUDO")
_rows = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_three_way(benchmark, name):
    def run():
        graph = graph_for(name)
        truth = truth_for(name)

        watch = Stopwatch()
        sequential = naive_eccentricities(graph)
        t_naive = watch.elapsed()
        np.testing.assert_array_equal(sequential.eccentricities, truth)

        watch = Stopwatch()
        bitparallel = msbfs_eccentricities(graph)
        t_msbfs = watch.elapsed()
        np.testing.assert_array_equal(bitparallel, truth)

        watch = Stopwatch()
        ifecc = compute_eccentricities(graph)
        t_ifecc = watch.elapsed()
        np.testing.assert_array_equal(ifecc.eccentricities, truth)

        return t_naive, t_msbfs, t_ifecc

    _rows[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'naive':>9} {'MS-BFS':>9} {'IFECC':>9} "
        f"{'msbfs speedup':>13} {'ifecc speedup':>13}"
    ]
    for name, (t_naive, t_msbfs, t_ifecc) in _rows.items():
        lines.append(
            f"{name:<6} {t_naive:>8.2f}s {t_msbfs:>8.2f}s {t_ifecc:>8.3f}s "
            f"{t_naive / t_msbfs:>12.1f}x {t_naive / t_ifecc:>12.1f}x"
        )
    record("ablation_msbfs", lines)

    for name, (t_naive, t_msbfs, t_ifecc) in _rows.items():
        # MS-BFS accelerates the sweep by a healthy constant...
        assert t_msbfs < t_naive, name
        # ... but IFECC still wins big (different asymptotics).
        assert t_ifecc < t_msbfs, name
