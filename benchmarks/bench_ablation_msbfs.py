"""Ablation — MS-BFS (reference [35]) as the "fast naive" baseline.

Even with bit-parallel multi-source BFS (Then et al., VLDB'14) speeding
the |V|-BFS sweep up by the lane width's constant factor, the naive ED
stays quadratic — IFECC beats it by orders of magnitude because it runs
a near-constant number of traversals.  This bench quantifies both gaps,
and — since the MS-BFS engine now backs ``naive_eccentricities`` itself
via :meth:`repro.graph.engine.BFSEngine.ecc_batch` — also the gap the
batch seam closed: ``naive-loop`` keeps the historical one-BFS-per-
vertex sweep (``traversal="loop"``, the seed-comparable number), while
``naive-batch`` is the same call on shared lane sweeps.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.baselines.naive import naive_eccentricities
from repro.core.ifecc import compute_eccentricities
from repro.graph.msbfs import msbfs_eccentricities
from repro.obs.trace import Stopwatch

from bench_common import graph_for, record, small_datasets, truth_for

GRAPHS = ("DBLP", "GP", "YOUT", "HUDO")
_rows = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_four_way(benchmark, name):
    def run():
        graph = graph_for(name)
        truth = truth_for(name)

        watch = Stopwatch()
        looped = naive_eccentricities(graph, traversal="loop")
        t_naive_loop = watch.elapsed()
        np.testing.assert_array_equal(looped.eccentricities, truth)

        watch = Stopwatch()
        batched = naive_eccentricities(graph, traversal="batch")
        t_naive_batch = watch.elapsed()
        np.testing.assert_array_equal(batched.eccentricities, truth)

        watch = Stopwatch()
        bitparallel = msbfs_eccentricities(graph)
        t_msbfs = watch.elapsed()
        np.testing.assert_array_equal(bitparallel, truth)

        watch = Stopwatch()
        ifecc = compute_eccentricities(graph)
        t_ifecc = watch.elapsed()
        np.testing.assert_array_equal(ifecc.eccentricities, truth)

        return t_naive_loop, t_naive_batch, t_msbfs, t_ifecc

    _rows[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'naive-loop':>10} {'naive-batch':>11} "
        f"{'MS-BFS':>9} {'IFECC':>9} {'batch speedup':>13} "
        f"{'msbfs speedup':>13} {'ifecc speedup':>13}"
    ]
    for name, (t_loop, t_batch, t_msbfs, t_ifecc) in _rows.items():
        lines.append(
            f"{name:<6} {t_loop:>9.2f}s {t_batch:>10.2f}s "
            f"{t_msbfs:>8.2f}s {t_ifecc:>8.3f}s "
            f"{t_loop / t_batch:>12.1f}x "
            f"{t_loop / t_msbfs:>12.1f}x {t_loop / t_ifecc:>12.1f}x"
        )
    record("ablation_msbfs", lines)

    for name, (t_loop, t_batch, t_msbfs, t_ifecc) in _rows.items():
        # The MS-BFS engine accelerates the full sweep from either
        # entry point (ecc_batch and msbfs_eccentricities share lane
        # sweeps, so both beat the one-BFS-per-vertex loop) ...
        assert t_batch < t_loop, name
        assert t_msbfs < t_loop, name
        # ... but IFECC still wins big (different asymptotics).
        assert t_ifecc < t_msbfs, name
