"""Ablation — PLL vertex ordering vs index size.

PLLECC's index is built with degree-descending vertex ordering (Akiba
et al.); a bad ordering inflates labels dramatically.  This ablation
quantifies how much the ordering buys — and therefore how intrinsic the
index-size problem is: even under the best ordering the index dwarfs
the graph (Figure 10), which is the paper's motivation for IFECC.
"""

from __future__ import annotations

import pytest

from repro.pll.index import build_pll_index

from bench_common import graph_for, record

GRAPHS = ("DBLP", "GP", "YOUT", "HUDO")
ORDERINGS = ("degree", "closeness", "random")
_rows = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_orderings(benchmark, name):
    def run():
        graph = graph_for(name)
        out = {}
        for ordering in ORDERINGS:
            index = build_pll_index(graph, ordering=ordering, seed=3)
            out[ordering] = (
                index.average_label_size(),
                index.size_bytes(),
            )
        out["graph_bytes"] = graph.memory_bytes()
        return out

    _rows[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} "
        + " ".join(f"{o}(avg label)" for o in ORDERINGS)
        + "  index/graph bytes (degree)"
    ]
    for name, row in _rows.items():
        ratio = row["degree"][1] / row["graph_bytes"]
        lines.append(
            f"{name:<6} "
            + " ".join(f"{row[o][0]:>12.1f}" for o in ORDERINGS)
            + f"  {ratio:>10.2f}x"
        )
    record("ablation_pll_ordering", lines)

    for name, row in _rows.items():
        # Degree ordering never loses to random...
        assert row["degree"][0] <= row["random"][0], name
        # ... and even so, the index exceeds the graph itself.
        assert row["degree"][1] > row["graph_bytes"], name
