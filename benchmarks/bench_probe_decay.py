"""Probe-number decay at dataset scale (Section 4.1 beyond Table 2).

Table 2 shows probe numbers on the 13-node toy; the argument that
carries IFECC — "only the FFO front is ever probed, the index is dead
weight" — is quantitative: PN^z(v_i) decays to zero within a small
prefix of L^z.  This bench replays PLLECC's probing on a full dataset
stand-in and reports the decay profile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.probes import probe_numbers

from bench_common import graph_for, record

_profiles = {}


@pytest.mark.parametrize("name", ["DBLP"])
def test_probe_decay(benchmark, name):
    def run():
        graph = graph_for(name)
        references = graph.top_degree_vertices(2)
        return probe_numbers(graph, [int(z) for z in references])

    _profiles[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for name, profiles in _profiles.items():
        for profile in profiles:
            counts = profile.counts
            n = len(counts)
            nonzero = int(np.count_nonzero(counts))
            # index position by which 50% / 90% / 100% of probes happened
            cumulative = np.cumsum(counts)
            total = int(cumulative[-1]) if n else 0
            marks = {}
            for pct in (50, 90, 100):
                threshold = total * pct / 100
                marks[pct] = int(np.searchsorted(cumulative, threshold)) + 1
            lines.append(
                f"{name} z={profile.ffo.source}: territory="
                f"{profile.territory_size}, probed positions={nonzero}/{n} "
                f"({100 * nonzero / n:.1f}%), "
                f"50%/90%/100% of probes within the first "
                f"{marks[50]}/{marks[90]}/{marks[100]} FFO positions"
            )
    record("probe_decay", lines)

    for profiles in _profiles.values():
        for profile in profiles:
            # Lemma 4.3 at scale ...
            assert profile.is_monotone()
            # ... and the index-is-dead-weight claim: the probed prefix
            # is a small fraction of the order.
            nonzero = int(np.count_nonzero(profile.counts))
            assert nonzero < 0.2 * len(profile.counts)
