"""Ablation — reference-node selection strategy.

Section 7.4 argues the highest-degree vertex is a good proxy for the
graph center, keeping |F2| (and hence IFECC's BFS count) small.  This
ablation compares three strategies on the small datasets:

* ``degree``  — the paper's choice (highest degree);
* ``center``  — an explicit two-sweep pseudo-center (2 extra BFS);
* ``random``  — an arbitrary vertex (Section 5's theorems still hold,
  but the constants should degrade).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifecc import compute_eccentricities
from repro.core.stratify import stratify
from repro.core.reference import get_strategy

from bench_common import graph_for, record, small_datasets, truth_for

STRATEGIES = ("degree", "center", "random")
_rows = {}


@pytest.mark.parametrize("name", small_datasets())
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy(benchmark, name, strategy):
    def run():
        graph = graph_for(name)
        reference = int(get_strategy(strategy)(graph, 1, 0)[0])
        strat = stratify(graph, reference=reference)
        result = compute_eccentricities(
            graph, num_references=1, strategy=strategy, seed=0
        )
        np.testing.assert_array_equal(
            result.eccentricities, truth_for(name)
        )
        return result.num_bfs, len(strat.f2)

    bfs, f2 = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.setdefault(name, {})[strategy] = (bfs, f2)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} "
        + " ".join(f"{s}(bfs,|F2|)" for s in STRATEGIES)
    ]
    totals = {s: 0 for s in STRATEGIES}
    for name in small_datasets():
        row = _rows[name]
        for s in STRATEGIES:
            totals[s] += row[s][0]
        lines.append(
            f"{name:<6} "
            + " ".join(f"{row[s][0]:>5},{row[s][1]:<6}" for s in STRATEGIES)
        )
    lines.append(
        "total BFS: "
        + ", ".join(f"{s}={totals[s]}" for s in STRATEGIES)
    )
    record("ablation_reference_strategy", lines)

    # All strategies stay exact (asserted per-run); degree-based
    # selection should be competitive with the explicit pseudo-center
    # and clearly better than random.
    assert totals["degree"] <= 1.5 * totals["center"]
    assert totals["degree"] < totals["random"]
