"""Figure 15 (Exp-3) — eccentricity distribution plots.

Paper's finding: on HUDO / TPD / FLIC / BAID the number of vertices
whose eccentricity equals the diameter is 9 / 4 / 3 / 9 — an average
fraction of 3.2e-6 of V — which is why uniform sampling virtually never
observes the diameter, and why IFECC (which yields the full ED) should
replace SNAP's estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distribution import distribution_from_eccentricities

from bench_common import record, truth_for

GRAPHS = ("HUDO", "TPD", "FLIC", "BAID")

_dists = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_distribution(benchmark, name):
    dist = benchmark.pedantic(
        lambda: distribution_from_eccentricities(truth_for(name)),
        rounds=1,
        iterations=1,
    )
    _dists[name] = dist


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for name, dist in _dists.items():
        lines.append(
            f"{name}: radius={dist.radius} diameter={dist.diameter} "
            f"diameter-vertices={dist.diameter_vertex_count()} "
            f"(fraction {dist.diameter_vertex_fraction():.2e})"
        )
        lines.append(dist.ascii_plot(width=40))
        lines.append("")
    fractions = [d.diameter_vertex_fraction() for d in _dists.values()]
    lines.append(
        f"average diameter-vertex fraction: {np.mean(fractions):.2e}"
    )
    record("fig15_ed_plot", lines)

    for name, dist in _dists.items():
        # A proper spread between radius and diameter (paper: ~10-15
        # distinct eccentricity values per graph).
        assert len(dist.values) >= 6, name
        # Very few vertices realise the diameter (the Exp-3 argument).
        assert dist.diameter_vertex_fraction() < 0.02, name
        # ... and the bulk sits in the middle of the range, so the
        # histogram is unimodal-ish rather than flat.
        assert dist.counts.max() > 5 * dist.diameter_vertex_count(), name
