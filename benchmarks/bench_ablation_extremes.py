"""Ablation — radius/diameter-only early termination (extension).

The related work ([33], [2]) computes just the ED's extremes with early
stopping.  Our :func:`repro.core.extremes.radius_and_diameter` applies
the same relaxed certificates on top of IFECC's machinery; this bench
quantifies the saving over computing the full ED, per dataset.
"""

from __future__ import annotations

import pytest

from repro.core.extremes import radius_and_diameter
from repro.core.ifecc import compute_eccentricities

from bench_common import graph_for, record, small_datasets, truth_for

_rows = {}


@pytest.mark.parametrize("name", small_datasets())
def test_extremes_vs_full(benchmark, name):
    def run():
        graph = graph_for(name)
        extremes = radius_and_diameter(graph)
        full = compute_eccentricities(graph)
        truth = truth_for(name)
        assert extremes.radius == int(truth.min())
        assert extremes.diameter == int(truth.max())
        return extremes.num_bfs, full.num_bfs

    _rows[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'dataset':<6} {'extremes #BFS':>13} {'full ED #BFS':>13}"]
    for name, (extremes_bfs, full_bfs) in _rows.items():
        lines.append(f"{name:<6} {extremes_bfs:>13} {full_bfs:>13}")
    total_ext = sum(r[0] for r in _rows.values())
    total_full = sum(r[1] for r in _rows.values())
    lines.append(f"total: extremes={total_ext}, full={total_full}")
    record("ablation_extremes", lines)

    # The relaxed certificates must never cost more than the full ED,
    # and should save work in aggregate.
    for name, (extremes_bfs, full_bfs) in _rows.items():
        assert extremes_bfs <= full_bfs + 2, name
    assert total_ext < total_full
