"""Ablation — do the weighted and directed extensions keep IFECC's edge?

The weighted engine replaces BFS with Dijkstra and keeps the full IFECC
structure (FFO + Lemma 3.3): orders-of-magnitude wins over its naive
oracle.  For digraphs we compare two designs:

* ``directed_eccentricities`` — BoundECC-style bound propagation, two
  traversals per source.  On handle-rich graphs, where bound selection
  is per-vertex-stuck by construction, it can reach wall-time *parity*
  with the naive sweep;
* ``directed_ifecc_eccentricities`` — the IFECC scheme carried over
  (forward FFO of a reference + backward-BFS probes + the directed tail
  cap), one traversal per probe.  It restores the orders-of-magnitude
  win, mirroring the paper's undirected IFECC-vs-BoundECC story.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.directed.eccentricity import (
    directed_eccentricities,
    directed_ifecc_eccentricities,
    naive_directed_eccentricities,
)
from repro.directed.graph import DirectedGraph
from repro.directed.eccentricity import directed_radius_and_diameter
from repro.obs.trace import Stopwatch
from repro.weighted.eccentricity import (
    naive_weighted_eccentricities,
    weighted_eccentricities,
    weighted_radius_and_diameter,
)
from repro.weighted.graph import WeightedGraph

from bench_common import graph_for, record

GRAPHS = ("DBLP", "HUDO")
_rows = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_weighted(benchmark, name):
    def run():
        base = graph_for(name)
        rng = np.random.default_rng(3)
        triples = [
            (u, v, int(rng.integers(1, 8))) for u, v in base.edges()
        ]
        wg = WeightedGraph.from_edges(
            triples, num_vertices=base.num_vertices
        )
        watch = Stopwatch()
        fast = weighted_eccentricities(wg)
        t_fast = watch.elapsed()
        watch = Stopwatch()
        truth = naive_weighted_eccentricities(wg)
        t_naive = watch.elapsed()
        np.testing.assert_allclose(fast.eccentricities, truth)
        return t_fast, t_naive, fast.num_bfs, wg.num_vertices

    _rows[("weighted", name)] = benchmark.pedantic(
        run, rounds=1, iterations=1
    )


@pytest.mark.parametrize("name", GRAPHS)
def test_directed(benchmark, name):
    def run():
        base = graph_for(name)
        dg = DirectedGraph.from_undirected(base)
        watch = Stopwatch()
        bound = directed_eccentricities(dg)
        t_bound = watch.elapsed()
        watch = Stopwatch()
        ifecc = directed_ifecc_eccentricities(dg)
        t_ifecc = watch.elapsed()
        watch = Stopwatch()
        truth = naive_directed_eccentricities(dg)
        t_naive = watch.elapsed()
        np.testing.assert_array_equal(bound.eccentricities, truth)
        np.testing.assert_array_equal(ifecc.eccentricities, truth)
        _rows[("directed-bound", name)] = (
            t_bound, t_naive, bound.num_bfs, dg.num_vertices
        )
        return t_ifecc, t_naive, ifecc.num_bfs, dg.num_vertices

    _rows[("directed-ifecc", name)] = benchmark.pedantic(
        run, rounds=1, iterations=1
    )


@pytest.mark.parametrize("name", GRAPHS)
def test_extremes(benchmark, name):
    """Radius/diameter early-stop through the metric-generic solver core:
    the same ``oracle_radius_and_diameter`` loop drives the Dijkstra and
    the forward/backward-BFS oracles."""

    def run():
        base = graph_for(name)
        rng = np.random.default_rng(3)
        triples = [
            (u, v, int(rng.integers(1, 8))) for u, v in base.edges()
        ]
        wg = WeightedGraph.from_edges(
            triples, num_vertices=base.num_vertices
        )
        dg = DirectedGraph.from_undirected(base)
        watch = Stopwatch()
        w_ext = weighted_radius_and_diameter(wg)
        t_w = watch.elapsed()
        watch = Stopwatch()
        d_ext = directed_radius_and_diameter(dg)
        t_d = watch.elapsed()
        watch = Stopwatch()
        w_truth = naive_weighted_eccentricities(wg)
        t_naive = watch.elapsed()
        assert w_ext.radius == pytest.approx(w_truth.min())
        assert w_ext.diameter == pytest.approx(w_truth.max())
        _rows[("dir-extrem", name)] = (
            t_d, t_naive, d_ext.num_bfs, dg.num_vertices
        )
        return t_w, t_naive, w_ext.num_bfs, wg.num_vertices

    _rows[("wtd-extrem", name)] = benchmark.pedantic(
        run, rounds=1, iterations=1
    )


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'setting':<10} {'dataset':<6} {'fast':>9} {'naive':>9} "
        f"{'speedup':>8} {'#traversals':>12} {'n':>7}"
    ]
    for (setting, name), (t_fast, t_naive, bfs, n) in _rows.items():
        lines.append(
            f"{setting:<10} {name:<6} {t_fast:>8.2f}s {t_naive:>8.2f}s "
            f"{t_naive / t_fast:>7.1f}x {bfs:>12} {n:>7}"
        )
    record("ablation_extensions", lines)

    for (setting, name), (t_fast, t_naive, bfs, n) in _rows.items():
        if setting in ("weighted", "directed-ifecc"):
            # full IFECC machinery: strict, large wins
            assert t_fast < t_naive / 5, (setting, name)
            assert bfs < n / 10, (setting, name)
        elif setting in ("wtd-extrem", "dir-extrem"):
            # extremes early-stop: certifying two numbers must cost far
            # fewer traversals than the naive full sweep
            assert bfs < n / 10, (setting, name)
        else:
            # directed bound propagation: fewer sources than the naive
            # sweep, but wall time may reach parity on adversarial
            # handle graphs (each source costs two traversals)
            assert bfs / 2 < n, (setting, name)
            assert t_fast < 1.3 * t_naive, (setting, name)
