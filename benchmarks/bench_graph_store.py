"""Graph-store cold-open benchmark — parse/build vs. mmap open.

Times the three ways to get a dataset stand-in into memory:

* **parse** — read the edge-list text file and rebuild CSR with
  :class:`repro.graph.builder.GraphBuilder` (what every run did before
  the store existed);
* **npz** — load the compressed ``.npz`` CSR dump (the old disk cache:
  no parse, but a full decompress-and-copy);
* **store** — ``repro.store.open_store`` on a ``.rcsr`` container
  (header read + ``np.memmap`` views, O(1) in the graph size).

Writes machine-readable ``BENCH_graph_store.json`` at the repository
root with per-dataset open times and the store-vs-parse speedup, and
asserts the tentpole claim: store open at least
:data:`TARGET_SPEEDUP` x faster than edge-list parse+build on the
largest stand-in benchmarked.  A ``first_touch_seconds`` column records
the cost of actually faulting every mapped page (one full scan), so the
"open is free, pages stream in on demand" story is auditable rather
than hidden.

Run standalone::

    python benchmarks/bench_graph_store.py           # UKUN (largest stand-in)
    python benchmarks/bench_graph_store.py --smoke   # DBLP (CI-sized)

or via pytest (smoke-sized, asserts the speedup claim)::

    pytest benchmarks/bench_graph_store.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.collection import GraphCollection
from repro.graph.io import (
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)
from repro.obs.trace import Stopwatch
from repro.store.format import open_store

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_graph_store.json"

#: The acceptance claim: store open beats edge-list parse+build by at
#: least this factor on the largest stand-in benchmarked.
TARGET_SPEEDUP = 10.0

#: Datasets per mode (ordered small -> large; the claim is checked on
#: the last one).
SMOKE_DATASETS = ("DBLP",)
FULL_DATASETS = ("DBLP", "SKIT", "UKUN")


def _best_of(repeats: int, run) -> float:  # type: ignore[no-untyped-def]
    best = float("inf")
    for _ in range(max(1, repeats)):
        watch = Stopwatch()
        run()
        best = min(best, watch.elapsed())
    return best


def bench_dataset(
    name: str,
    collection: GraphCollection,
    workdir: Path,
    repeats: int,
) -> Dict[str, object]:
    """Time parse / npz / store opens of one dataset stand-in."""
    info = collection.materialize(name)
    graph = open_store(info.path)

    edge_path = workdir / f"{name.lower()}.txt"
    npz_path = workdir / f"{name.lower()}.npz"
    write_edge_list(graph, edge_path)
    save_npz(graph, npz_path)

    parse_s = _best_of(repeats, lambda: read_edge_list(edge_path))
    npz_s = _best_of(repeats, lambda: load_npz(npz_path))
    store_s = _best_of(repeats, lambda: open_store(info.path))

    # One full page-fault pass: what "actually reading the graph" adds
    # on top of the O(1) open.
    def first_touch() -> int:
        opened = open_store(info.path)
        return int(opened.indptr.sum() + opened.indices.sum())

    touch_s = _best_of(repeats, first_touch)

    # The opens must agree bit-for-bit with the parsed graph.
    parsed = read_edge_list(edge_path)
    mapped = open_store(info.path)
    if not (
        np.array_equal(parsed.indptr, mapped.indptr)
        and np.array_equal(parsed.indices, mapped.indices)
    ):
        raise AssertionError(f"{name}: store open disagrees with parse")

    return {
        "name": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "store_bytes": info.file_bytes,
        "fingerprint": info.digest,
        "repeats": repeats,
        "parse_seconds": parse_s,
        "npz_seconds": npz_s,
        "store_open_seconds": store_s,
        "first_touch_seconds": touch_s,
        "speedup_store_vs_parse": (
            parse_s / store_s if store_s else float("inf")
        ),
        "speedup_store_vs_npz": npz_s / store_s if store_s else float("inf"),
    }


def run_suite(
    smoke: bool,
    repeats: int,
    out_path: Path,
    root: Optional[Path] = None,
) -> Dict[str, object]:
    """Benchmark every mode dataset and write the JSON report."""
    datasets = SMOKE_DATASETS if smoke else FULL_DATASETS
    results: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        workdir = Path(tmp)
        collection = GraphCollection(root if root else workdir / "collection")
        for name in datasets:
            print(f"[bench_graph_store] {name} ...")
            entry = bench_dataset(name, collection, workdir, repeats)
            print(
                "  parse {parse_seconds:.4f}s  npz {npz_seconds:.4f}s  "
                "store {store_open_seconds:.6f}s  "
                "({speedup_store_vs_parse:.0f}x vs parse)".format(**entry)  # type: ignore[str-format]
            )
            results.append(entry)
    largest = results[-1]
    report: Dict[str, object] = {
        "schema": "bench_graph_store/v1",
        "mode": "smoke" if smoke else "full",
        "target_speedup": TARGET_SPEEDUP,
        "datasets": results,
        "aggregate": {
            "largest": largest["name"],
            "largest_speedup_store_vs_parse": largest[
                "speedup_store_vs_parse"
            ],
            "claim_met": bool(
                float(largest["speedup_store_vs_parse"])  # type: ignore[arg-type]
                >= TARGET_SPEEDUP
            ),
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_graph_store] wrote {out_path}")
    return report


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized, asserts the speedup claim)
# ----------------------------------------------------------------------
def test_store_open_beats_parse(benchmark) -> None:  # type: ignore[no-untyped-def]
    """Store open is >= 10x faster than parse+build even on the
    smallest stand-in; the JSON report lands at the repo root."""
    report = benchmark.pedantic(
        lambda: run_suite(smoke=True, repeats=3, out_path=DEFAULT_OUT),
        rounds=1,
        iterations=1,
    )
    assert DEFAULT_OUT.exists()
    assert report["aggregate"]["claim_met"] is True
    for entry in report["datasets"]:
        assert entry["speedup_store_vs_parse"] >= TARGET_SPEEDUP
        # npz already skips parsing; beating it too shows the win is
        # the zero-copy mapping, not just the binary encoding.
        assert entry["store_open_seconds"] < entry["npz_seconds"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized dataset (DBLP) instead of the full ladder",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_graph_store.json)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="collection directory (default: a throwaway temp dir)",
    )
    args = parser.parse_args(argv)
    report = run_suite(args.smoke, args.repeats, args.out, args.root)
    if not bool(report["aggregate"]["claim_met"]):  # type: ignore[index]
        largest = report["aggregate"]["largest_speedup_store_vs_parse"]  # type: ignore[index]
        print(
            f"WARNING: store-vs-parse speedup {float(largest):.1f}x below "  # type: ignore[arg-type]
            f"the {TARGET_SPEEDUP}x target"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
