"""Scalability — IFECC's cost as the graph grows (the paper's headline).

The paper's claim is that IFECC scales to billion-edge graphs because
its cost is (#BFS) x O(m + n) with a small, slowly-growing #BFS.  This
bench sweeps synthetic web graphs across a 16x size range and fits the
growth of IFECC's wall time and BFS count.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.ifecc import compute_eccentricities
from repro.graph.components import largest_connected_component
from repro.graph.generators import (
    attach_branches,
    attach_deep_trap,
    copying_model,
)
from repro.obs.trace import Stopwatch

from bench_common import record

SIZES = (2_000, 4_000, 8_000, 16_000, 32_000)
_rows = {}


def _make_graph(n: int):
    core = copying_model(n, out_degree=4, copy_probability=0.65, seed=n)
    trapped = attach_deep_trap(core, depth=24, branch_length=4)
    graph = attach_branches(
        trapped, count=n // 50, max_depth=12, seed=n + 1, max_anchor_id=n
    )
    graph, _ids = largest_connected_component(graph)
    return graph


@pytest.mark.parametrize("n", SIZES)
def test_scaling(benchmark, n):
    def run():
        graph = _make_graph(n)
        watch = Stopwatch()
        result = compute_eccentricities(graph)
        elapsed = watch.elapsed()
        return graph.num_vertices, graph.num_edges, elapsed, result.num_bfs

    _rows[n] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'n':>8} {'m':>9} {'time (s)':>9} {'#BFS':>6} {'us/edge/BFS':>12}"]
    for n in SIZES:
        vertices, edges, elapsed, bfs = _rows[n]
        per_edge = 1e6 * elapsed / (edges * bfs)
        lines.append(
            f"{vertices:>8} {edges:>9} {elapsed:>9.3f} {bfs:>6} "
            f"{per_edge:>12.3f}"
        )
    record("scalability", lines)

    smallest = _rows[SIZES[0]]
    largest = _rows[SIZES[-1]]
    size_ratio = largest[1] / smallest[1]          # edge growth (~16x)
    time_ratio = largest[2] / max(smallest[2], 1e-9)
    bfs_ratio = largest[3] / max(smallest[3], 1)
    lines = [
        f"edges x{size_ratio:.1f} -> time x{time_ratio:.1f}, "
        f"#BFS x{bfs_ratio:.2f}"
    ]
    record("scalability_summary", lines)

    # Near-linear scaling: time grows at most ~quadratically slower
    # than the edge count would in a naive |V|-BFS sweep, and the BFS
    # count grows sublinearly in n.
    assert bfs_ratio < size_ratio / 2
    assert time_ratio < size_ratio * 4
