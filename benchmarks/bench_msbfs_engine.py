"""MS-BFS engine shootout — seed lane kernel vs. lane engine vs. loop.

Times a 64-source batch (the unit of Then et al.'s bit-parallel MS-BFS,
the paper's reference [35]) through four contenders on the generator
suite shared with :mod:`bench_bfs_engine`:

* ``seed-msbfs`` — a faithful copy of the seed repo's 1-D uint64 lane
  kernel (top-down only, ``np.bitwise_or.at`` scatter per level);
* ``lanes-top-down`` — :class:`repro.graph.msengine.MSBFSEngine` forced
  top-down (vectorised CSR gathers, transposed recording);
* ``lanes-hybrid`` — the engine with direction-optimizing switching
  (``np.bitwise_or.reduceat`` bottom-up levels) and per-lane retirement;
* ``loop-hybrid`` — the single-source hybrid :class:`repro.graph.engine.
  BFSEngine` looped over the batch (what every consumer paid before the
  batch seam existed).

Both batch products are raced — the eccentricity reduction
(``ecc_batch``, the headline) and the full ``(k, n)`` distance-rows
product — and every contender's distances are asserted bit-identical to
the seed kernels before anything is timed.  A width-scaling section
re-times the hybrid engine at 64/128/256-source batches to audit the
lane-width planner's multi-word crossover.  Writes machine-readable
``BENCH_msbfs_engine.json`` at the repository root.

Run standalone::

    python benchmarks/bench_msbfs_engine.py            # full (n >= 50k)
    python benchmarks/bench_msbfs_engine.py --smoke    # CI-sized graphs

or via pytest (smoke-sized, asserts bit-identity and the report shape)::

    pytest benchmarks/bench_msbfs_engine.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from bench_bfs_engine import seed_bfs_distances, suite_graphs
from repro.graph.csr import Graph
from repro.graph.engine import ALPHA, BETA, BFSEngine, gather_csr_arcs
from repro.graph.msengine import MSBFSEngine, plan_lane_width
from repro.graph.traversal import UNREACHED
from repro.obs.trace import Stopwatch

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_msbfs_engine.json"

#: The speedup the JSON must witness in full mode on the power-law
#: graph: hybrid-lane ``ecc_batch`` vs. looping the single-source
#: hybrid engine over the same 64 sources.
TARGET_SPEEDUP = 2.0

#: Distance rows carry an O(n*k) transpose the eccentricity reduction
#: skips, so the rows product gets a softer target.
ROWS_TARGET_SPEEDUP = 1.5

#: Headline batch size — one full uint64 lane word.
BATCH = 64


# ----------------------------------------------------------------------
# Seed MS-BFS kernel (faithful copy of the pre-engine lane sweep)
# ----------------------------------------------------------------------
def seed_msbfs_rows(graph: Graph, sources: np.ndarray) -> np.ndarray:
    """The seed repo's 64-lane kernel: 1-D uint64 bitmaps, top-down only,
    per-level ``bitwise_or.at`` scatter and dense lane unpack.

    :dtype: int32, shape ``(k, n)``
    """
    n = graph.num_vertices
    k = len(sources)
    if k > 64:
        raise ValueError("seed kernel holds at most 64 lanes")
    dist = np.full((k, n), -1, dtype=np.int32)
    seen = np.zeros(n, dtype=np.uint64)
    frontier = np.zeros(n, dtype=np.uint64)
    scratch = np.zeros(n, dtype=np.uint64)
    lanes = np.arange(k, dtype=np.uint64)
    lane_bits = np.uint64(1) << lanes
    np.bitwise_or.at(frontier, sources, lane_bits)
    np.bitwise_or.at(seen, sources, lane_bits)
    dist[lanes.astype(np.int64), sources] = 0

    indptr, indices = graph.indptr, graph.indices
    level = 0
    active = np.flatnonzero(frontier)
    while len(active):
        level += 1
        next_mask = scratch
        next_mask.fill(0)
        counts = indptr[active + 1] - indptr[active]
        arc_dst, _seg = gather_csr_arcs(indptr, indices, active, counts)
        if len(arc_dst) == 0:
            break
        arc_masks = np.repeat(frontier[active], counts)
        np.bitwise_or.at(next_mask, arc_dst, arc_masks)
        next_mask &= ~seen
        newly = np.flatnonzero(next_mask)
        if len(newly) == 0:
            break
        seen[newly] |= next_mask[newly]
        new_bits = (next_mask[newly, None] >> lanes) & np.uint64(1)
        vert_idx, lane_idx = np.nonzero(new_bits)
        dist[lane_idx, newly[vert_idx]] = level
        scratch, frontier = frontier, next_mask
        active = newly
    return dist


def seed_msbfs_ecc(graph: Graph, sources: np.ndarray) -> np.ndarray:
    """Eccentricities via the seed lane kernel (unreached -> ignored)."""
    rows = seed_msbfs_rows(graph, sources)
    return np.where(rows != -1, rows, 0).max(axis=1).astype(np.int32)


# ----------------------------------------------------------------------
# Contenders
# ----------------------------------------------------------------------
def batch_sources(graph: Graph, count: int, seed: int = 0) -> np.ndarray:
    """``count`` seeded distinct sources, max-degree vertex included."""
    n = graph.num_vertices
    count = min(count, n)
    rng = np.random.default_rng(seed)
    picks = rng.choice(n, size=count, replace=False).astype(np.int64)
    picks[0] = graph.max_degree_vertex()
    return np.unique(picks)


def _loop_rows(engine: BFSEngine, sources: np.ndarray, n: int) -> np.ndarray:
    out = np.empty((len(sources), n), dtype=np.int32)
    for i, s in enumerate(sources):
        out[i, :] = engine.run(int(s), mode="hybrid")
    return out


def _loop_ecc(engine: BFSEngine, sources: np.ndarray) -> np.ndarray:
    out = np.empty(len(sources), dtype=np.int32)
    for i, s in enumerate(sources):
        engine.run(int(s), mode="hybrid")
        out[i] = engine.last_ecc
    return out


def _best_of(run: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        watch = Stopwatch()
        run()
        best = min(best, watch.elapsed())
    return best


def bench_graph(
    name: str,
    family: str,
    graph: Graph,
    repeats: int,
) -> Dict[str, object]:
    """Race the four contenders on one graph's 64-source batch."""
    n = graph.num_vertices
    sources = batch_sources(graph, BATCH)
    k = len(sources)
    ms = MSBFSEngine(graph)
    loop = BFSEngine(graph)

    # --- bit-identity audit (untimed): every contender must agree with
    # the seed lane kernel, which must agree with the seed single-source
    # kernel.  The ecc reductions must match the rows they summarise.
    expected = seed_msbfs_rows(graph, sources)
    for i, s in enumerate(sources):
        if not np.array_equal(expected[i], seed_bfs_distances(graph, int(s))):
            raise AssertionError(
                f"seed lane kernel disagrees with seed BFS on {name}, "
                f"source {int(s)}"
            )
    for mode in ("top-down", "hybrid"):
        got = ms.run_batch(sources, mode=mode)
        if not np.array_equal(expected, got):
            raise AssertionError(
                f"MSBFSEngine mode={mode} disagrees with the seed lane "
                f"kernel on {name}"
            )
    expected_ecc = np.where(expected != UNREACHED, expected, 0).max(axis=1)
    for ecc in (
        ms.ecc_batch(sources),
        ms.ecc_batch(sources, mode="top-down"),
        _loop_ecc(loop, sources),
    ):
        if not np.array_equal(expected_ecc, ecc):
            raise AssertionError(f"ecc reduction mismatch on {name}")
    stats = ms.last_stats

    # --- timed: the eccentricity batch (headline) ...
    ecc_s = {
        "seed-msbfs": _best_of(lambda: seed_msbfs_ecc(graph, sources), repeats),
        "lanes-top-down": _best_of(
            lambda: ms.ecc_batch(sources, mode="top-down"), repeats
        ),
        "lanes-hybrid": _best_of(lambda: ms.ecc_batch(sources), repeats),
        "loop-hybrid": _best_of(lambda: _loop_ecc(loop, sources), repeats),
    }
    # ... and the full (k, n) distance-rows product.
    rows_s = {
        "seed-msbfs": _best_of(lambda: seed_msbfs_rows(graph, sources), repeats),
        "lanes-top-down": _best_of(
            lambda: ms.run_batch(sources, mode="top-down"), repeats
        ),
        "lanes-hybrid": _best_of(lambda: ms.run_batch(sources), repeats),
        "loop-hybrid": _best_of(lambda: _loop_rows(loop, sources, n), repeats),
    }
    return {
        "name": name,
        "family": family,
        "num_vertices": n,
        "num_edges": graph.num_edges,
        "batch": k,
        "planned_width": plan_lane_width(n, len(graph.indices), k),
        "repeats": repeats,
        "ecc_seconds": ecc_s,
        "rows_seconds": rows_s,
        "speedup_ecc_vs_loop": ecc_s["loop-hybrid"] / ecc_s["lanes-hybrid"]
        if ecc_s["lanes-hybrid"]
        else float("inf"),
        "speedup_rows_vs_loop": rows_s["loop-hybrid"] / rows_s["lanes-hybrid"]
        if rows_s["lanes-hybrid"]
        else float("inf"),
        "speedup_ecc_vs_seed_msbfs": ecc_s["seed-msbfs"]
        / ecc_s["lanes-hybrid"]
        if ecc_s["lanes-hybrid"]
        else float("inf"),
        "hybrid_stats": {
            "levels": stats.levels,
            "directions": list(stats.directions),
            "live_lanes": list(stats.live_lanes),
            "edges_scanned": stats.edges_scanned,
            "edges_inspected": stats.edges_inspected,
            "words_touched": stats.words_touched,
        },
    }


def bench_width_scaling(
    graph: Graph, name: str, repeats: int
) -> List[Dict[str, object]]:
    """Hybrid ``ecc_batch`` at one, two, and four lane words."""
    ms = MSBFSEngine(graph)
    loop = BFSEngine(graph)
    entries: List[Dict[str, object]] = []
    for batch in (64, 128, 256):
        sources = batch_sources(graph, batch)
        if len(sources) < batch:
            continue
        width = plan_lane_width(
            graph.num_vertices, len(graph.indices), len(sources)
        )
        ms_s = _best_of(lambda: ms.ecc_batch(sources), repeats)
        loop_s = _best_of(lambda: _loop_ecc(loop, sources), repeats)
        entries.append(
            {
                "batch": int(len(sources)),
                "planned_width": width,
                "lanes_hybrid_seconds": ms_s,
                "loop_hybrid_seconds": loop_s,
                "speedup_vs_loop": loop_s / ms_s if ms_s else float("inf"),
            }
        )
        print(
            f"  width-scaling batch={len(sources):>3} (width {width}): "
            f"lanes {ms_s:.4f}s  loop {loop_s:.4f}s "
            f"({loop_s / ms_s:.2f}x)"
        )
    return entries


def run_suite(
    smoke: bool,
    repeats: int,
    out_path: Path,
) -> Dict[str, object]:
    """Run the shootout on every suite graph; write the JSON report."""
    graphs = suite_graphs(smoke)
    results = []
    for name, (family, graph) in graphs.items():
        print(
            f"[bench_msbfs_engine] {name}: n={graph.num_vertices} "
            f"m={graph.num_edges} batch={min(BATCH, graph.num_vertices)} ..."
        )
        entry = bench_graph(name, family, graph, repeats)
        ecc_s = entry["ecc_seconds"]
        print(
            "  ecc: seed-msbfs {seed:.4f}s  td-lanes {td:.4f}s  "
            "hybrid-lanes {hy:.4f}s  loop {loop:.4f}s  "
            "({speed:.2f}x vs loop)".format(
                seed=ecc_s["seed-msbfs"],  # type: ignore[index]
                td=ecc_s["lanes-top-down"],  # type: ignore[index]
                hy=ecc_s["lanes-hybrid"],  # type: ignore[index]
                loop=ecc_s["loop-hybrid"],  # type: ignore[index]
                speed=entry["speedup_ecc_vs_loop"],
            )
        )
        results.append(entry)
    powerlaw = next(r for r in results if r["family"] == "random power-law")
    powerlaw_graph = graphs[str(powerlaw["name"])][1]
    print(f"[bench_msbfs_engine] width scaling on {powerlaw['name']}:")
    scaling = bench_width_scaling(powerlaw_graph, str(powerlaw["name"]), repeats)
    report: Dict[str, object] = {
        "schema": "bench_msbfs_engine/v1",
        "mode": "smoke" if smoke else "full",
        "alpha": ALPHA,
        "beta": BETA,
        "batch": BATCH,
        "target_speedup": TARGET_SPEEDUP,
        "rows_target_speedup": ROWS_TARGET_SPEEDUP,
        "bit_identical": True,  # bench_graph raises otherwise
        "graphs": results,
        "width_scaling": scaling,
        "aggregate": {
            "powerlaw_speedup_ecc_vs_loop": powerlaw["speedup_ecc_vs_loop"],
            "powerlaw_speedup_rows_vs_loop": powerlaw["speedup_rows_vs_loop"],
            "powerlaw_speedup_ecc_vs_seed_msbfs": powerlaw[
                "speedup_ecc_vs_seed_msbfs"
            ],
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_msbfs_engine] wrote {out_path}")
    return report


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized, asserts bit-identity + report shape)
# ----------------------------------------------------------------------
def test_msbfs_engine_shootout(benchmark) -> None:  # type: ignore[no-untyped-def]
    """Every contender agrees bit for bit on every smoke graph; the
    report lands at the repo root with all four contenders timed."""
    report = benchmark.pedantic(
        lambda: run_suite(smoke=True, repeats=1, out_path=DEFAULT_OUT),
        rounds=1,
        iterations=1,
    )
    assert report["bit_identical"] is True
    assert DEFAULT_OUT.exists()
    for entry in report["graphs"]:
        assert set(entry["ecc_seconds"]) == {
            "seed-msbfs",
            "lanes-top-down",
            "lanes-hybrid",
            "loop-hybrid",
        }
        assert all(s >= 0 for s in entry["ecc_seconds"].values())
    # The multi-word planner engages past one lane word on the smoke
    # power-law graph (n=4k clears the 128-lane threshold; the 256-lane
    # tier needs n >= 4096, so batch=256 still plans at least two words).
    widths = {e["batch"]: e["planned_width"] for e in report["width_scaling"]}
    assert widths.get(128) == 128 and widths.get(256, 0) >= 128


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized graphs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_msbfs_engine.json)",
    )
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)
    report = run_suite(args.smoke, args.repeats, args.out)
    status = 0
    if not args.smoke:
        agg = report["aggregate"]
        ecc_speed = float(agg["powerlaw_speedup_ecc_vs_loop"])  # type: ignore[index]
        rows_speed = float(agg["powerlaw_speedup_rows_vs_loop"])  # type: ignore[index]
        if ecc_speed < TARGET_SPEEDUP:
            print(
                f"WARNING: hybrid-lane ecc speedup {ecc_speed:.2f}x below "
                f"the {TARGET_SPEEDUP}x target on the power-law graph"
            )
            status = 1
        if rows_speed < ROWS_TARGET_SPEEDUP:
            print(
                f"WARNING: hybrid-lane rows speedup {rows_speed:.2f}x below "
                f"the {ROWS_TARGET_SPEEDUP}x target on the power-law graph"
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
