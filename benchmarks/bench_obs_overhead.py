"""Tracing-overhead gate: A/B a null-sink vs. a captured IFECC run.

The observability layer's contract (docs/OBSERVABILITY.md) is that
instrumentation stays within a documented **3%** overhead budget at
paper scale: with the default :class:`~repro.obs.trace.NullSink` every
instrumented site costs one attribute load and branch per traversal,
and a fully captured run (memory sink, spans, metrics) adds a small
per-traversal cost that is amortised by real traversal work.  This
harness enforces the number so an instrumentation change that puts sink
calls on a hot path fails CI instead of silently taxing every run:

* **A (null)** — IFECC under an explicit ``NullSink``: tracing
  disabled, the branch-only configuration every production run pays.
* **B (captured)** — the same run under a ``MemorySink``: spans,
  events, and the metrics registry all live.

Repeats interleave A and B in alternating order (so machine drift hits
both arms alike), collection is disabled inside the timed region, each
arm scores its *minimum* CPU time, and the capture cost is expressed
per traversal.  A few-percent wall-clock comparison on a smoke graph is
pure noise on shared runners, so the smoke gate normalises instead: the
measured per-traversal capture cost is divided by the documented
paper-scale traversal cost (``REFERENCE_TRAVERSAL_US``, auditable by
running ``--full`` which times real powerlaw-50k traversals) to yield
the ``overhead_fraction`` the 3% budget applies to.  Full mode gates
the directly measured fraction.

Writes ``BENCH_obs_overhead.json`` (schema ``bench_obs_overhead/v1`` —
parsed by ``repro bench check``) and exits non-zero when the budget is
blown.

Usage::

    python benchmarks/bench_obs_overhead.py --smoke   # CI-sized graph
    python benchmarks/bench_obs_overhead.py           # paper scale
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.ifecc import IFECC
from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert
from repro.obs.trace import (
    MemorySink,
    NullSink,
    Sink,
    Stopwatch,
    tracing,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

#: The documented tracing-overhead ceiling (docs/OBSERVABILITY.md).
BUDGET_FRACTION = 0.03

#: Documented per-traversal solver cost at paper scale (powerlaw-50k),
#: the denominator the smoke-mode budget is defined against.  Verified
#: by full mode, which measures the real per-traversal cost directly.
REFERENCE_TRAVERSAL_US = 5_000.0


def _timed_run(graph: Graph, sink: Sink) -> Tuple[float, float]:
    """(cpu_seconds, wall_seconds) for one IFECC run under ``sink``.

    Collection is forced *before* and disabled *during* the timed
    region: a captured run keeps thousands of event dicts alive, and a
    generational collection landing inside one arm but not the other
    would swamp the few-percent signal this gate measures.  CPU time is
    the gated clock — wall time on shared runners includes preemption
    that has nothing to do with tracing cost.
    """
    gc.collect()
    gc.disable()
    try:
        cpu0 = time.process_time()
        watch = Stopwatch()
        with tracing(sink):
            IFECC(graph).run()
        return time.process_time() - cpu0, watch.elapsed()
    finally:
        gc.enable()


def run_overhead(
    smoke: bool,
    repeats: int,
    budget: float,
    out_path: Path,
) -> Dict[str, Any]:
    """The A/B experiment; returns the written scorecard document."""
    if smoke:
        name, graph = "powerlaw-8k", barabasi_albert(8_000, 4, seed=7)
    else:
        name, graph = "powerlaw-50k", barabasi_albert(50_000, 4, seed=7)
    # Warm the per-graph engine/workspace caches out of the timed region.
    IFECC(graph).run()
    null_cpu: List[float] = []
    traced_cpu: List[float] = []
    null_wall: List[float] = []
    traced_wall: List[float] = []
    events = 0
    traversals = 0
    for repeat in range(repeats):
        # Alternate which arm goes first so monotonic machine drift
        # (thermal, frequency scaling, noisy neighbours) cancels out of
        # the min-of-arm comparison instead of biasing one side.
        capture = MemorySink()
        if repeat % 2 == 0:
            cpu, wall = _timed_run(graph, NullSink())
            null_cpu.append(cpu)
            null_wall.append(wall)
            cpu, wall = _timed_run(graph, capture)
            traced_cpu.append(cpu)
            traced_wall.append(wall)
        else:
            cpu, wall = _timed_run(graph, capture)
            traced_cpu.append(cpu)
            traced_wall.append(wall)
            cpu, wall = _timed_run(graph, NullSink())
            null_cpu.append(cpu)
            null_wall.append(wall)
        events = len(capture.events)
        traversals = sum(
            1 for event in capture.events if event["name"] == "bfs.run"
        )
    null_best = min(null_cpu)
    traced_best = min(traced_cpu)
    capture_us = (traced_best - null_best) / max(traversals, 1) * 1e6
    null_traversal_us = null_best / max(traversals, 1) * 1e6
    if smoke:
        overhead = capture_us / REFERENCE_TRAVERSAL_US
    else:
        overhead = (traced_best - null_best) / null_best
    doc: Dict[str, Any] = {
        "schema": "bench_obs_overhead/v1",
        "mode": "smoke" if smoke else "full",
        "graph": name,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "repeats": repeats,
        "traversals": traversals,
        "events_captured": events,
        "null_cpu_seconds": null_best,
        "traced_cpu_seconds": traced_best,
        "null_wall_seconds": min(null_wall),
        "traced_wall_seconds": min(traced_wall),
        "capture_us_per_traversal": capture_us,
        "measured_traversal_us": null_traversal_us,
        "reference_traversal_us": REFERENCE_TRAVERSAL_US,
        "overhead_fraction": overhead,
        "budget_fraction": budget,
        "within_budget": overhead <= budget,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return doc


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized graph (powerlaw-8k) instead of paper scale",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="interleaved A/B repeats; each arm scores its minimum",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=BUDGET_FRACTION,
        help=f"failure threshold as a fraction (default {BUDGET_FRACTION})",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="scorecard JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    doc = run_overhead(args.smoke, args.repeats, args.budget, args.out)
    print(
        f"obs overhead on {doc['graph']}: "
        f"null {doc['null_cpu_seconds']:.3f}s cpu, "
        f"captured {doc['traced_cpu_seconds']:.3f}s cpu over "
        f"{doc['traversals']} traversals "
        f"({doc['events_captured']} events) -> "
        f"{doc['capture_us_per_traversal']:.0f}us/traversal, "
        f"{doc['overhead_fraction']:+.2%} of "
        + (
            "the documented paper-scale traversal cost"
            if doc["mode"] == "smoke"
            else "the null-sink run"
        )
        + f" (budget {doc['budget_fraction']:.0%})"
    )
    print(f"scorecard written to {args.out}")
    if not doc["within_budget"]:
        print("FAIL: tracing overhead exceeds the documented budget")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
