"""Figure 11 — approximate ED accuracy: kIFECC vs kBFS, k = 2 .. 128.

Paper's finding: kIFECC's accuracy steadily increases with k (it is an
anytime-exact algorithm: monotone bounds converge to the exact ED),
while kBFS's accuracy fluctuates non-monotonically — e.g. on TOPC it
went 27.2% -> 8.9% -> 99.2% -> 40.2% as k doubled.
"""

from __future__ import annotations

import pytest

from repro.baselines.kbfs import kbfs_eccentricities
from repro.core.kifecc import kifecc_sweep

from bench_common import graph_for, record, small_datasets, truth_for

KS = (2, 4, 8, 16, 32, 64, 128)
#: Six representative small graphs keep the bench quick while covering
#: both generator families (the paper plots 8 graphs).
GRAPHS = ("DBLP", "GP", "HUDO", "TPD", "TOPC", "STAC")

_kifecc = {}
_kbfs = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_kifecc_sweep(benchmark, name):
    def run():
        graph = graph_for(name)
        truth = truth_for(name)
        return {
            e["k"]: e["accuracy"]
            for e in kifecc_sweep(graph, KS, truth=truth)
        }

    _kifecc[name] = benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("name", GRAPHS)
def test_kbfs_sweep(benchmark, name):
    def run():
        graph = graph_for(name)
        truth = truth_for(name)
        # Each k is an independent sample, as in Shun's implementation —
        # this is exactly what makes kBFS unstable in Figure 11.
        return {
            k: kbfs_eccentricities(graph, k=k, seed=1000 + k)
            .accuracy_against(truth)
            for k in KS
        }

    _kbfs[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for name in GRAPHS:
        lines.append(f"{name}:")
        lines.append(
            "  k       " + " ".join(f"{k:>7}" for k in KS)
        )
        lines.append(
            "  kIFECC  "
            + " ".join(f"{_kifecc[name][k]:>6.1f}%" for k in KS)
        )
        lines.append(
            "  kBFS    "
            + " ".join(f"{_kbfs[name][k]:>6.1f}%" for k in KS)
        )
    record("fig11_accuracy", lines)

    for name in GRAPHS:
        accs = [_kifecc[name][k] for k in KS]
        # kIFECC: monotone non-decreasing, converging high.
        assert accs == sorted(accs), name
        assert accs[-1] >= 99.0, name
        # kIFECC at the largest budget is at least as good as kBFS.
        assert accs[-1] >= _kbfs[name][KS[-1]] - 1e-9, name
    # kBFS is not monotone on at least one graph (the instability).
    non_monotone = sum(
        1
        for name in GRAPHS
        if [_kbfs[name][k] for k in KS]
        != sorted(_kbfs[name][k] for k in KS)
    )
    assert non_monotone >= 1
