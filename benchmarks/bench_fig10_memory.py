"""Figure 10 — memory consumption of IFECC vs PLLECC.

Paper's finding: PLLECC needs on average >36.6x (max 65.4x on DBLP) the
memory of IFECC on the 12 small graphs, because of the distance index;
IFECC's footprint is linear in the graph (<40 GB even on the graphs
PLLECC cannot process at all).
"""

from __future__ import annotations

import pytest

from repro.analysis.memory import ifecc_footprint, pllecc_footprint

from bench_common import (
    geometric_mean,
    graph_for,
    large_datasets,
    pll_index_for,
    record,
    small_datasets,
)

_rows = {}


@pytest.mark.parametrize("name", small_datasets())
def test_memory_small(benchmark, name):
    def run():
        graph = graph_for(name)
        index = pll_index_for(name)
        ifecc = ifecc_footprint(graph, num_references=1)
        pllecc = (
            pllecc_footprint(graph, index, num_references=16)
            if index is not None
            else None
        )
        return ifecc, pllecc

    ifecc, pllecc = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[name] = (ifecc, pllecc)


@pytest.mark.parametrize("name", large_datasets())
def test_memory_large(benchmark, name):
    # PLLECC cannot build its index within the cut-off on these; only
    # IFECC's footprint is measurable (the paper reports <40 GB there).
    ifecc = benchmark.pedantic(
        lambda: ifecc_footprint(graph_for(name), num_references=1),
        rounds=1,
        iterations=1,
    )
    _rows[name] = (ifecc, None)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'IFECC (KiB)':>12} {'PLLECC (KiB)':>13} {'ratio':>7}"
    ]
    ratios = []
    for name, (ifecc, pllecc) in _rows.items():
        if pllecc is None:
            lines.append(
                f"{name:<6} {ifecc.total_bytes / 1024:>12.1f} "
                f"{'DNF':>13} {'-':>7}"
            )
            continue
        ratio = pllecc.ratio_to(ifecc)
        ratios.append(ratio)
        lines.append(
            f"{name:<6} {ifecc.total_bytes / 1024:>12.1f} "
            f"{pllecc.total_bytes / 1024:>13.1f} {ratio:>7.2f}"
        )
    lines.append(f"geomean PLLECC/IFECC memory ratio: "
                 f"{geometric_mean(ratios):.2f}x")
    record("fig10_memory", lines)

    # Shape: the index makes PLLECC strictly and materially larger.
    assert all(r > 1.5 for r in ratios)
    assert geometric_mean(ratios) > 2.0
