"""Table 2 — probe numbers on the running example graph.

Reproduces the probe-number table for the 13-node example of Figure 1
with reference nodes Z = {v13, v7}: probe numbers are non-increasing
along each FFO (Lemma 4.3) and concentrate at the FFO front, with the
tail never probed (Example 4.4) — the observation that motivates
removing the distance index.
"""

from __future__ import annotations

import pytest

from repro.core.probes import probe_numbers
from repro.graph.generators import paper_example_graph

from bench_common import record

_profiles = []


def test_probe_numbers(benchmark):
    graph = paper_example_graph()
    profiles = benchmark.pedantic(
        lambda: probe_numbers(graph, [12, 6]),  # v13, v7 (0-based ids)
        rounds=1,
        iterations=1,
    )
    _profiles.extend(profiles)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for profile in _profiles:
        z = profile.ffo.source + 1  # back to the paper's 1-based names
        order = " ".join(f"v{v + 1:<3}" for v in profile.ffo.order)
        counts = " ".join(f"{c:<4}" for c in profile.counts)
        lines.append(f"L^v{z}:  {order}")
        lines.append(f"PN^v{z}: {counts}")
    record("table2_probe_numbers", lines)

    for profile in _profiles:
        # Lemma 4.3: probe numbers are non-increasing along the FFO.
        assert profile.is_monotone()
        # Example 4.4: the tail of the order is never probed.
        half = len(profile.counts) // 2
        assert profile.counts[half:].sum() == 0
        # The front is probed by (almost) the whole territory.
        assert profile.counts[0] >= profile.territory_size - 1
