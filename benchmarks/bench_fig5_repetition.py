"""Figure 5 — FFO-front overlap across 16 reference nodes.

Paper's finding: on IT and TWIT, the first ``num`` nodes of the FFOs of
the 16 highest-degree reference nodes are >94.5% shared on average
(num = 5..50).  This redundancy motivates using one reference node.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import repetition_curve

from bench_common import graph_for, record

NUMS = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
_curves = {}


@pytest.mark.parametrize("name", ["IT", "TWIT"])
def test_repetition_curve(benchmark, name):
    points = benchmark.pedantic(
        lambda: repetition_curve(graph_for(name), nums=NUMS),
        rounds=1,
        iterations=1,
    )
    _curves[name] = points


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'num':>4} " + " ".join(f"{n:>8}" for n in _curves)]
    for i, num in enumerate(NUMS):
        lines.append(
            f"{num:>4} "
            + " ".join(f"{_curves[n][i].ratio:>8.3f}" for n in _curves)
        )
    averages = {
        n: float(np.mean([p.ratio for p in pts]))
        for n, pts in _curves.items()
    }
    lines.append(
        "average: "
        + ", ".join(f"{n}={avg:.3f}" for n, avg in averages.items())
    )
    record("fig5_repetition", lines)
    # Paper: >94.5% of high-probe-number nodes shared on average.
    for name, avg in averages.items():
        assert avg > 0.90, (name, avg)
