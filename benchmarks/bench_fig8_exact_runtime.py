"""Figure 8 — exact ED computation runtime.

Paper's finding: on the 12 graphs PLLECC can finish, IFECC-16 is ~15x and
IFECC-1 ~70x faster than PLLECC (whose time is dominated by the
PLLECC-PLL index construction, >41x the PLLECC-ECC stage); BoundECC is
slower still (it cannot finish STAC within the cut-off).  On the 8 large
graphs only IFECC completes.

We reproduce the orderings and the stage breakdown at stand-in scale.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.baselines.boundecc import boundecc_eccentricities
from repro.baselines.pllecc import pllecc_eccentricities
from repro.core.ifecc import compute_eccentricities
from repro.obs.trace import Stopwatch

from bench_common import (
    BOUNDECC_MAX_BFS,
    fmt_seconds,
    geometric_mean,
    graph_for,
    large_datasets,
    pll_index_for,
    record,
    small_datasets,
    truth_for,
)

_rows = {}


def _time_ifecc(name, r):
    graph = graph_for(name)
    watch = Stopwatch()
    result = compute_eccentricities(graph, num_references=r)
    elapsed = watch.elapsed()
    np.testing.assert_array_equal(result.eccentricities, truth_for(name))
    return elapsed, result.num_bfs


@pytest.mark.parametrize("name", small_datasets() + large_datasets())
def test_ifecc1(benchmark, name):
    elapsed, bfs = benchmark.pedantic(
        lambda: _time_ifecc(name, 1), rounds=1, iterations=1
    )
    _rows.setdefault(name, {})["IFECC-1"] = elapsed
    _rows[name]["IFECC-1 #BFS"] = bfs


@pytest.mark.parametrize("name", small_datasets() + large_datasets())
def test_ifecc16(benchmark, name):
    elapsed, _bfs = benchmark.pedantic(
        lambda: _time_ifecc(name, 16), rounds=1, iterations=1
    )
    _rows.setdefault(name, {})["IFECC-16"] = elapsed


@pytest.mark.parametrize("name", small_datasets())
def test_pllecc(benchmark, name):
    def run():
        index = pll_index_for(name)
        if index is None:
            return None
        report = pllecc_eccentricities(
            graph_for(name), num_references=16, index=index
        )
        np.testing.assert_array_equal(
            report.result.eccentricities, truth_for(name)
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    row = _rows.setdefault(name, {})
    if report is None:
        row["PLLECC"] = None
    else:
        # count the (cached) index construction at its measured cost
        pll_seconds = pll_index_for(name).construction_seconds
        row["PLLECC-PLL"] = pll_seconds
        row["PLLECC-ECC"] = report.ecc_seconds
        row["PLLECC"] = pll_seconds + report.ecc_seconds


@pytest.mark.parametrize("name", small_datasets())
def test_boundecc(benchmark, name):
    def run():
        graph = graph_for(name)
        watch = Stopwatch()
        result = boundecc_eccentricities(graph, max_bfs=BOUNDECC_MAX_BFS)
        elapsed = watch.elapsed()
        if result.exact:
            np.testing.assert_array_equal(
                result.eccentricities, truth_for(name)
            )
            return elapsed
        return None  # DNF within the cut-off budget

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.setdefault(name, {})["BoundECC"] = elapsed


def test_zz_report_and_shape(benchmark):
    """Print the Figure 8 table and assert the paper's orderings."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'IFECC-1':>9} {'IFECC-16':>9} {'PLLECC':>9} "
        f"{'(PLL':>9} {'+ECC)':>9} {'BoundECC':>9} {'IFECC-1 #BFS':>13}"
    ]
    speedup_1, speedup_16 = [], []
    for name in small_datasets() + large_datasets():
        row = _rows.get(name, {})
        lines.append(
            f"{name:<6} {fmt_seconds(row.get('IFECC-1')):>9} "
            f"{fmt_seconds(row.get('IFECC-16')):>9} "
            f"{fmt_seconds(row.get('PLLECC')):>9} "
            f"{fmt_seconds(row.get('PLLECC-PLL')):>9} "
            f"{fmt_seconds(row.get('PLLECC-ECC')):>9} "
            f"{fmt_seconds(row.get('BoundECC')):>9} "
            f"{row.get('IFECC-1 #BFS', ''):>13}"
        )
        if row.get("PLLECC") is not None and name in small_datasets():
            speedup_1.append(row["PLLECC"] / row["IFECC-1"])
            speedup_16.append(row["PLLECC"] / row["IFECC-16"])
    lines.append(
        f"geomean speedup over PLLECC: IFECC-1 {geometric_mean(speedup_1):.1f}x, "
        f"IFECC-16 {geometric_mean(speedup_16):.1f}x"
    )
    record("fig8_exact_runtime", lines)

    # Shape assertions (paper: IFECC-1 ~70x, IFECC-16 ~15x faster).
    assert geometric_mean(speedup_1) > 5.0
    assert geometric_mean(speedup_16) > 2.0
    stage_ratios = []
    for name in small_datasets():
        row = _rows[name]
        if row.get("PLLECC") is None:
            continue
        # IFECC beats PLLECC on every dataset it completes.
        assert row["IFECC-1"] < row["PLLECC"], name
        # the index construction dominates PLLECC (paper: >41x); allow
        # per-dataset timing noise, assert the aggregate strongly.
        assert row["PLLECC-PLL"] > 1.5 * row["PLLECC-ECC"], name
        stage_ratios.append(row["PLLECC-PLL"] / row["PLLECC-ECC"])
    assert geometric_mean(stage_ratios) > 4.0
    # BoundECC is the slowest exact method overall (geomean over the
    # datasets it finishes).
    bound_total = [
        _rows[n]["BoundECC"]
        for n in small_datasets()
        if _rows[n].get("BoundECC") is not None
    ]
    ifecc_total = [_rows[n]["IFECC-1"] for n in small_datasets()]
    assert geometric_mean(bound_total) > 10 * geometric_mean(ifecc_total)
    # Large graphs: IFECC completes all of them.
    for name in large_datasets():
        assert _rows[name].get("IFECC-1") is not None
