"""Figure 14 (Exp-2) — SNAP sampling vs IFECC at a matched BFS budget.

Paper's finding: IFECC needed 83 / 26 / 32 / 61 BFS to compute the exact
ED (hence the exact diameter) of HUDO / TPD / FLIC / BAID.  Given 20%..
100% of that same BFS budget, SNAP's sampled diameter stays <= 85%
accurate — so at equal cost IFECC strictly dominates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.snap_diameter import snap_estimate_diameter
from repro.core.ifecc import compute_eccentricities

from bench_common import graph_for, record, truth_for

GRAPHS = ("HUDO", "TPD", "FLIC", "BAID")
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)

_results = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_budget_match(benchmark, name):
    def run():
        graph = graph_for(name)
        exact = compute_eccentricities(graph)
        budget = exact.num_bfs
        true_diameter = exact.diameter
        snap_acc = {}
        for fraction in FRACTIONS:
            k = max(1, int(round(fraction * budget)))
            estimate = snap_estimate_diameter(graph, sample_size=k, seed=7)
            snap_acc[fraction] = estimate.accuracy_against(true_diameter)
        return budget, snap_acc

    _results[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'IFECC #BFS':>10} "
        + " ".join(f"{int(f * 100):>4}%" for f in FRACTIONS)
        + "   (SNAP diameter accuracy; IFECC is exact at 100%)"
    ]
    for name in GRAPHS:
        budget, snap_acc = _results[name]
        lines.append(
            f"{name:<6} {budget:>10} "
            + " ".join(f"{snap_acc[f]:>5.1f}" for f in FRACTIONS)
        )
    record("fig14_snap_vs_ifecc", lines)

    for name in GRAPHS:
        budget, snap_acc = _results[name]
        # Paper: IFECC gets exact EDs in tens of BFS on these graphs.
        assert budget <= 150, name
        # SNAP never reaches the exact diameter at IFECC's budget.
        assert snap_acc[1.0] < 100.0, name
