"""Ablation — where does IFECC's efficiency come from?

IFECC = (FFO source order) + (Lemma 3.3 territory upper-bound cap).
Plugging the FFO order into the plain BFS-framework keeps the order but
drops the cap (only Lemma 3.1 updates apply).  The gap between the two
isolates the cap's contribution; the comparison against the
Takes–Kosters alternating selector isolates the order's contribution.
"""

from __future__ import annotations

import pytest

from repro.core.framework import (
    AlternatingBoundSelector,
    BFSFramework,
    FFOSelector,
)
from repro.core.ifecc import compute_eccentricities

from bench_common import graph_for, record, small_datasets

_rows = {}
#: A subset keeps the (slow) no-cap configuration affordable.
GRAPHS = tuple(small_datasets()[:6])


@pytest.mark.parametrize("name", GRAPHS)
def test_variants(benchmark, name):
    def run():
        graph = graph_for(name)
        full = compute_eccentricities(graph)  # order + cap
        order_only = BFSFramework(graph, FFOSelector()).run()
        alternating = BFSFramework(graph, AlternatingBoundSelector()).run()
        assert full.exact and order_only.exact and alternating.exact
        return full.num_bfs, order_only.num_bfs, alternating.num_bfs

    _rows[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} {'IFECC':>7} {'FFO only':>9} {'TK select':>10}"
        "   (#BFS to exact ED)"
    ]
    for name, (full, order_only, alternating) in _rows.items():
        lines.append(
            f"{name:<6} {full:>7} {order_only:>9} {alternating:>10}"
        )
    record("ablation_lemma33", lines)

    for name, (full, order_only, _alternating) in _rows.items():
        # The Lemma 3.3 cap is load-bearing: dropping it costs > 2x BFS.
        assert full * 2 < order_only, name
