"""Figure 13 (Exp-1) — effect of SNAP's sample size on diameter accuracy.

Paper's finding: on HUDO, TPD, FLIC and BAID, SNAP's sampled-diameter
accuracy averages 77.4% and does NOT improve as the sample grows from
200 to 1000 (e.g. HUDO: 75% -> 87.5% -> 81.3% -> 75%).

The paper's sample sizes are tuned to 2M-vertex graphs; we scale them to
the stand-in sizes (same fractions of n).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.snap_diameter import snap_estimate_diameter

from bench_common import graph_for, record, truth_for

GRAPHS = ("HUDO", "TPD", "FLIC", "BAID")
#: paper sizes 200..1000 on n~2e6 -> fractions ~1e-4..5e-4 of n; at our
#: n~3e3 that is <1 vertex, so we keep the paper's *relative ladder*
#: (1:2:3:4:5) at a sample the stand-ins can express.
SAMPLE_LADDER = (4, 8, 12, 16, 20)

_accuracy = {}


@pytest.mark.parametrize("name", GRAPHS)
def test_snap_accuracy(benchmark, name):
    def run():
        graph = graph_for(name)
        true_diameter = int(truth_for(name).max())
        out = {}
        for size in SAMPLE_LADDER:
            estimate = snap_estimate_diameter(
                graph, sample_size=size, seed=size
            )
            out[size] = estimate.accuracy_against(true_diameter)
        return out

    _accuracy[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<6} " + " ".join(f"k={s:<3}" for s in SAMPLE_LADDER)
    ]
    for name in GRAPHS:
        lines.append(
            f"{name:<6} "
            + " ".join(f"{_accuracy[name][s]:>5.1f}" for s in SAMPLE_LADDER)
        )
    overall = float(
        np.mean([a for row in _accuracy.values() for a in row.values()])
    )
    lines.append(f"average accuracy: {overall:.1f}%")
    record("fig13_snap_sampling", lines)

    # Shape: sampling never reaches 100% reliably, and growing the
    # sample does not monotonically improve accuracy on every graph.
    assert overall < 100.0
    non_monotone = sum(
        1
        for name in GRAPHS
        if list(_accuracy[name].values())
        != sorted(_accuracy[name].values())
    )
    assert non_monotone >= 1
