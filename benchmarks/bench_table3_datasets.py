"""Table 3 — the dataset inventory.

Prints the paper's statistics for all 20 graphs next to the measured
statistics (n, m, radius, diameter) of the synthetic stand-ins this
reproduction substitutes for them, and checks the stand-ins retain the
structural features the experiments rely on.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import get_spec, paper_table3

from bench_common import graph_for, large_datasets, record, small_datasets, truth_for

_rows = []


@pytest.mark.parametrize("name", small_datasets() + large_datasets())
def test_standin_summary(benchmark, name):
    def run():
        graph = graph_for(name)
        truth = truth_for(name)
        return (
            graph.num_vertices,
            graph.num_edges,
            int(truth.min()),
            int(truth.max()),
        )

    n, m, radius, diameter = benchmark.pedantic(run, rounds=1, iterations=1)
    spec = get_spec(name)
    _rows.append((spec, n, m, radius, diameter))


def test_zz_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'Name':<5} {'paper n':>12} {'paper m':>14} {'r':>4} {'d':>4} "
        f"{'Type':<9}| {'standin n':>9} {'m':>8} {'r':>4} {'d':>4}"
    ]
    paper = {row[0]: row for row in paper_table3()}
    for spec, n, m, radius, diameter in _rows:
        p = paper[spec.name]
        lines.append(
            f"{spec.name:<5} {p[2]:>12,} {p[3]:>14,} {p[4]:>4} {p[5]:>4} "
            f"{p[6]:<9}| {n:>9,} {m:>8,} {radius:>4} {diameter:>4}"
        )
    record("table3_datasets", lines)

    assert len(_rows) == 20
    for spec, n, m, radius, diameter in _rows:
        # connected stand-in of the intended scale
        assert 0.9 * spec.standin_n <= n <= 2.0 * spec.standin_n, spec.name
        # small-world sanity: diameter well below n, radius <= d <= 2r
        assert diameter < n / 10, spec.name
        assert radius <= diameter <= 2 * radius, spec.name
        # non-degenerate ED (the paper's graphs all have d > r)
        assert diameter > radius, spec.name
