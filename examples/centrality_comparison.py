"""Comparing centrality measures on a social network.

Section 6 of the paper surveys the centrality family that eccentricity
belongs to.  This example computes all four measures the library ships
on one social-network stand-in and shows where they agree (the dense
core) and where they diverge (brokers vs hubs vs geometric centers).

Run with::

    python examples/centrality_comparison.py
"""

import numpy as np

import repro
from repro.analysis.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eccentricity_centrality,
)
from repro.datasets.loader import load_dataset


def top(values: np.ndarray, k: int = 10) -> set:
    return set(np.argsort(-values, kind="stable")[:k].tolist())


def main():
    graph = load_dataset("DBLP", scale=0.5)  # quick half-scale stand-in
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    ecc = repro.compute_eccentricities(graph)
    measures = {
        "eccentricity": eccentricity_centrality(ecc.eccentricities),
        "degree": degree_centrality(graph),
        "closeness": closeness_centrality(graph),
        "betweenness": betweenness_centrality(graph),
    }

    print(f"\n{'measure':<14} {'top vertex':>10} {'top-10 set'}")
    for name, values in measures.items():
        best = int(np.argmax(values))
        print(f"{name:<14} {best:>10} {sorted(top(values))}")

    print("\npairwise top-10 overlap:")
    names = list(measures)
    print(f"{'':<14}" + "".join(f"{n[:6]:>8}" for n in names))
    for a in names:
        row = [
            f"{len(top(measures[a]) & top(measures[b])):>8}"
            for b in names
        ]
        print(f"{a:<14}" + "".join(row))

    hub = graph.max_degree_vertex()
    print(
        f"\nhighest-degree vertex {hub}: "
        f"eccentricity {ecc.eccentricities[hub]} "
        f"(radius is {ecc.radius}) — the Section 7.4 intuition that "
        "hubs sit near the eccentricity center."
    )


if __name__ == "__main__":
    main()
