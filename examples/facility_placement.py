"""Location optimization with the network center (paper Section 1).

The paper motivates exact eccentricities with facility placement: a
time-critical facility (hospital, fire station, storage center) should
sit at the **network center** — the vertices of minimum eccentricity —
because the center minimises the worst-case service delay.

This example builds a synthetic road-ish service network, computes the
exact ED with IFECC, and compares three placement policies by their
worst-case and average delay:

* center placement (minimum eccentricity, needs the exact ED),
* highest-degree placement (the cheap heuristic),
* random placement.

Run with::

    python examples/facility_placement.py
"""

import numpy as np

import repro
from repro.graph.components import largest_connected_component
from repro.graph.generators import attach_branches, watts_strogatz
from repro.graph.traversal import bfs_distances


def build_service_network(seed: int = 3):
    """A town-like network: a rewired ring of neighborhoods with rural
    branch roads hanging off it."""
    town = watts_strogatz(600, 6, 0.08, seed=seed)
    with_rural_roads = attach_branches(town, count=25, max_depth=9, seed=seed)
    graph, _ids = largest_connected_component(with_rural_roads)
    return graph


def evaluate_placement(graph, site: int) -> dict:
    """Worst-case and mean delay (hops) from ``site`` to every vertex."""
    dist = bfs_distances(graph, site)
    return {
        "site": site,
        "worst_delay": int(dist.max()),
        "mean_delay": float(dist.mean()),
    }


def main():
    graph = build_service_network()
    print(f"service network: n={graph.num_vertices}, m={graph.num_edges}")

    result = repro.compute_eccentricities(graph)
    print(
        f"radius={result.radius} diameter={result.diameter} "
        f"({result.num_bfs} BFS traversals)"
    )

    center_vertices = np.flatnonzero(
        result.eccentricities == result.radius
    )
    print(f"network center: {len(center_vertices)} vertices")

    rng = np.random.default_rng(0)
    placements = {
        "center (exact ED)": int(center_vertices[0]),
        "highest degree": graph.max_degree_vertex(),
        "random": int(rng.integers(0, graph.num_vertices)),
    }

    print(f"\n{'policy':<20} {'site':>6} {'worst delay':>12} {'mean delay':>11}")
    rows = {}
    for policy, site in placements.items():
        row = evaluate_placement(graph, site)
        rows[policy] = row
        print(
            f"{policy:<20} {row['site']:>6} {row['worst_delay']:>12} "
            f"{row['mean_delay']:>11.2f}"
        )

    # The center is optimal in the worst case by definition:
    assert rows["center (exact ED)"]["worst_delay"] == result.radius
    saving = (
        rows["random"]["worst_delay"]
        - rows["center (exact ED)"]["worst_delay"]
    )
    print(
        f"\ncenter placement cuts the worst-case delay by {saving} hops "
        "versus random placement"
    )


if __name__ == "__main__":
    main()
