"""Replacing SNAP's sampled diameter with IFECC (paper Section 7.5).

SNAP estimates a graph's diameter by running BFS from ``k`` uniformly
random vertices and reporting the largest eccentricity seen.  The paper
shows this estimator is biased low and unstable because the vertices
realising the diameter are a vanishing fraction of V — and that IFECC
obtains the *exact* diameter (with the whole ED as a bonus) in a
comparable number of BFS traversals.

This example replays the case study on the four study graphs' stand-ins.

Run with::

    python examples/diameter_case_study.py
"""

from repro.analysis.distribution import distribution_from_eccentricities
from repro.baselines.snap_diameter import snap_estimate_diameter
from repro.core.ifecc import compute_eccentricities
from repro.datasets.loader import load_dataset


def main():
    print(
        f"{'graph':<6} {'true dia':>8} {'IFECC BFS':>9} "
        f"{'SNAP est':>8} {'SNAP acc':>8} {'dia vertices':>12}"
    )
    for name in ("HUDO", "TPD", "FLIC", "BAID"):
        graph = load_dataset(name)

        # IFECC: exact diameter + full ED.
        exact = compute_eccentricities(graph)

        # SNAP: same BFS budget, sampled estimate.
        snap = snap_estimate_diameter(
            graph, sample_size=exact.num_bfs, seed=11
        )

        histogram = distribution_from_eccentricities(exact.eccentricities)
        print(
            f"{name:<6} {exact.diameter:>8} {exact.num_bfs:>9} "
            f"{snap.diameter:>8} "
            f"{snap.accuracy_against(exact.diameter):>7.1f}% "
            f"{histogram.diameter_vertex_count():>12}"
        )

    print(
        "\nAt the SAME number of BFS traversals, IFECC returns the exact\n"
        "diameter while SNAP's uniform sample usually misses it: only a\n"
        "handful of vertices attain the diameter, so a random sample\n"
        "almost never includes one."
    )


if __name__ == "__main__":
    main()
