"""Anytime eccentricity estimation on a large graph (kIFECC vs kBFS).

IFECC can be interrupted at any point and still return sound bounds —
Algorithm 3 (kIFECC) formalises this with a BFS budget ``k``.  This
example streams progress on a large web-graph stand-in and contrasts
kIFECC's monotone convergence with the instability of uniform-sampling
kBFS (the Figure 11 comparison, live).

Run with::

    python examples/anytime_estimation.py
"""

import numpy as np

from repro.baselines.kbfs import kbfs_eccentricities
from repro.core.ifecc import IFECC
from repro.core.kifecc import kifecc_sweep
from repro.datasets.loader import load_dataset


def main():
    graph = load_dataset("UK02")  # the paper's UK02 stand-in
    print(f"graph UK02 stand-in: n={graph.num_vertices}, m={graph.num_edges}")

    # ------------------------------------------------------------ 1
    # Stream IFECC's progress: fraction of vertices whose bounds met.
    print("\nIFECC progress (resolved vertices after each BFS):")
    engine = IFECC(graph)
    milestones = {0.5, 0.9, 0.99, 1.0}
    for snapshot in engine.steps():
        fraction = snapshot.fraction_resolved
        hit = {m for m in milestones if fraction >= m}
        for m in sorted(hit):
            print(
                f"  {m:>5.0%} of vertices resolved after "
                f"{snapshot.bfs_runs} BFS (last source: {snapshot.source})"
            )
        milestones -= hit
    truth = engine.bounds.eccentricities()
    print(f"  exact ED complete after {engine.counter.bfs_runs} BFS")

    # ------------------------------------------------------------ 2
    # Accuracy vs budget: kIFECC (one resumable run) vs kBFS
    # (fresh sample per budget).
    budgets = [2, 4, 8, 16, 32, 64]
    sweep = kifecc_sweep(graph, budgets, truth=truth)
    print(f"\n{'k':>4} {'kIFECC acc':>11} {'kBFS acc':>9}")
    for entry in sweep:
        k = entry["k"]
        kbfs_acc = kbfs_eccentricities(
            graph, k=k, seed=100 + k
        ).accuracy_against(truth)
        print(f"{k:>4} {entry['accuracy']:>10.2f}% {kbfs_acc:>8.2f}%")

    print(
        "\nkIFECC's estimate only improves with budget (monotone bounds); "
        "kBFS re-samples and can get worse."
    )

    # ------------------------------------------------------------ 3
    # The bounds are usable even when unresolved: report the widest gaps.
    engine2 = IFECC(graph)
    budget_result = engine2.run_budgeted(max_bfs=5)
    gaps = engine2.bounds.gap()
    unresolved = int(np.count_nonzero(gaps > 0))
    print(
        f"\nafter only 5 BFS: {graph.num_vertices - unresolved} vertices "
        f"exact, {unresolved} still bounded (max gap {int(gaps.max())})"
    )


if __name__ == "__main__":
    main()
