"""Quickstart: compute the exact eccentricity distribution of a graph.

Run with::

    python examples/quickstart.py [path/to/edge_list.txt]

Without an argument, the script runs on the paper's 13-node example
graph (Figure 1) and on a generated small-world network, demonstrating
the core workflow:

1. build or load a graph (``repro.Graph`` / ``repro.graph.io``);
2. call :func:`repro.compute_eccentricities` (IFECC, Algorithm 2);
3. read the radius, the diameter, and the per-vertex eccentricities.
"""

import sys

import repro
from repro.analysis.distribution import distribution_from_eccentricities
from repro.graph.components import largest_connected_component
from repro.graph.generators import attach_handles, barabasi_albert
from repro.graph.io import read_edge_list


def show(title, graph):
    result = repro.compute_eccentricities(graph)
    print(f"--- {title} ---")
    print(f"vertices: {graph.num_vertices}, edges: {graph.num_edges}")
    print(
        f"radius: {result.radius}, diameter: {result.diameter} "
        f"(computed with {result.num_bfs} BFS traversals "
        f"in {result.elapsed_seconds * 1000:.1f} ms)"
    )
    histogram = distribution_from_eccentricities(result.eccentricities)
    print("eccentricity distribution:")
    print(histogram.ascii_plot(width=40))
    print()
    return result


def main():
    if len(sys.argv) > 1:
        graph = read_edge_list(sys.argv[1])
        graph, _original_ids = largest_connected_component(graph)
        show(sys.argv[1], graph)
        return

    # The paper's running example (Figure 1): radius 3, diameter 5.
    show("paper example graph", repro.generators.paper_example_graph())

    # A synthetic small-world network: preferential-attachment core
    # with a deep periphery, the structure IFECC is designed for.
    core = barabasi_albert(2000, 3, seed=7)
    graph, _ids = largest_connected_component(
        attach_handles(core, num_handles=15, max_length=18, seed=8)
    )
    result = show("synthetic small-world network", graph)

    # The exact ED also answers centrality queries directly:
    center = int(result.eccentricities.argmin())
    print(
        f"network center: vertex {center} "
        f"(eccentricity {result.eccentricities[center]})"
    )


if __name__ == "__main__":
    main()
