"""Weighted eccentricities: travel-time analysis of a transit network.

Extension beyond the paper: the bound machinery of IFECC consists of
triangle inequalities, so it works unchanged over Dijkstra distances.
This example models a small transit network whose edges carry travel
times (minutes), computes the exact weighted eccentricity of every
station, and contrasts the *hop* center with the *travel-time* center —
they genuinely differ when a hub is topologically central but slow to
reach.

Run with::

    python examples/weighted_travel_times.py
"""

import numpy as np

import repro
from repro.graph.components import largest_connected_component
from repro.graph.generators import attach_branches, watts_strogatz
from repro.weighted.eccentricity import weighted_eccentricities
from repro.weighted.graph import WeightedGraph


def build_transit_network(seed: int = 12):
    """A ring-of-lines city with suburban branches; edge weights are
    travel times: fast in the core, slow on the branches."""
    core = watts_strogatz(300, 4, 0.08, seed=seed)
    topology = attach_branches(core, count=12, max_depth=7, seed=seed)
    topology, _ids = largest_connected_component(topology)
    rng = np.random.default_rng(seed)
    triples = []
    for u, v in topology.edges():
        if u < 300 and v < 300:
            minutes = int(rng.integers(2, 5))    # metro core: quick hops
        else:
            minutes = int(rng.integers(6, 15))   # suburban rail: slow
        triples.append((u, v, minutes))
    return topology, WeightedGraph.from_edges(
        triples, num_vertices=topology.num_vertices
    )


def main():
    topology, network = build_transit_network()
    print(
        f"transit network: {network.num_vertices} stations, "
        f"{network.num_edges} segments"
    )

    # Hop-count view (the paper's setting).
    hops = repro.compute_eccentricities(topology)
    hop_center = int(hops.eccentricities.argmin())
    print(
        f"\nhop view:    radius={hops.radius} hops, "
        f"diameter={hops.diameter} hops, center=station {hop_center}"
    )

    # Travel-time view (weighted extension).
    times = weighted_eccentricities(network)
    time_center = int(times.eccentricities.argmin())
    print(
        f"time view:   radius={times.eccentricities.min():.0f} min, "
        f"diameter={times.eccentricities.max():.0f} min, "
        f"center=station {time_center}"
    )
    print(
        f"(exact weighted ED computed with {times.num_bfs} Dijkstra "
        f"traversals out of {network.num_vertices} stations)"
    )

    # How different are the two centralities?
    hop_rank = np.argsort(hops.eccentricities)
    time_rank = np.argsort(times.eccentricities)
    top20_hop = set(hop_rank[:20].tolist())
    top20_time = set(time_rank[:20].tolist())
    overlap = len(top20_hop & top20_time)
    print(
        f"\ntop-20 most-central stations shared between the two views: "
        f"{overlap}/20"
    )
    if time_center != hop_center:
        print(
            "the hop center and the travel-time center are different "
            "stations — edge weights matter for facility placement."
        )


if __name__ == "__main__":
    main()
