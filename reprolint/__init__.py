"""Checkout shim for :mod:`reprolint`.

The implementation lives in ``tools/reprolint/``; this package exists so
``python -m reprolint src tests benchmarks`` works from a repository
checkout without installing anything or exporting ``PYTHONPATH``.  It
extends the package search path to the real location — every submodule
(``reprolint.cli``, ``reprolint.rules``, ``reprolint.__main__`` …)
resolves there.

Keep this file free of logic beyond the path splice and the re-exports
mirrored from ``tools/reprolint/__init__.py``.
"""

import os

_TOOLS_PACKAGE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "reprolint",
)
if not os.path.isdir(_TOOLS_PACKAGE):  # pragma: no cover - broken checkout
    raise ImportError(
        "reprolint implementation not found at tools/reprolint; "
        "run from a full repository checkout"
    )
__path__.append(_TOOLS_PACKAGE)

from reprolint.diagnostics import Diagnostic
from reprolint.engine import lint_paths, lint_source
from reprolint.registry import RULE_REGISTRY, Rule, all_rules
from reprolint.cli import main

__version__ = "1.0.0"

__all__ = [
    "Diagnostic",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "__version__",
]
