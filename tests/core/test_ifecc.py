"""Unit and integration tests for the IFECC engine (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.ifecc import (
    IFECC,
    compute_eccentricities,
    eccentricities_per_component,
)
from repro.errors import (
    DisconnectedGraphError,
    InvalidParameterError,
)
from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.properties import exact_eccentricities
from helpers import random_connected_graph


class TestExactness:
    def test_paper_example(self, example_graph, example_eccentricities):
        result = compute_eccentricities(example_graph)
        np.testing.assert_array_equal(
            result.eccentricities, example_eccentricities
        )

    def test_social_graph(self, social_graph, social_truth):
        result = compute_eccentricities(social_graph)
        np.testing.assert_array_equal(result.eccentricities, social_truth)

    def test_web_graph(self, web_graph, web_truth):
        result = compute_eccentricities(web_graph)
        np.testing.assert_array_equal(result.eccentricities, web_truth)

    def test_lattice_graph(self, lattice_graph, lattice_truth):
        result = compute_eccentricities(lattice_graph)
        np.testing.assert_array_equal(result.eccentricities, lattice_truth)

    @pytest.mark.parametrize("r", [1, 2, 4, 8, 16])
    def test_all_reference_counts(self, social_graph, social_truth, r):
        result = compute_eccentricities(social_graph, num_references=r)
        assert result.exact
        np.testing.assert_array_equal(result.eccentricities, social_truth)

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(17),
            lambda: cycle_graph(12),
            lambda: star_graph(9),
            lambda: complete_graph(7),
            lambda: grid_graph(5, 6),
        ],
        ids=["path", "cycle", "star", "complete", "grid"],
    )
    def test_structured_graphs(self, graph_factory):
        g = graph_factory()
        truth = exact_eccentricities(g)
        result = compute_eccentricities(g)
        np.testing.assert_array_equal(result.eccentricities, truth)

    def test_random_graphs_sweep(self):
        for seed in range(8):
            g = random_connected_graph(80, 60, seed)
            truth = exact_eccentricities(g)
            for r in (1, 3):
                result = compute_eccentricities(g, num_references=r)
                np.testing.assert_array_equal(result.eccentricities, truth)

    def test_single_vertex(self):
        g = Graph.from_edges([], num_vertices=1)
        result = compute_eccentricities(g)
        assert result.eccentricities.tolist() == [0]

    def test_two_vertices(self):
        result = compute_eccentricities(path_graph(2))
        assert result.eccentricities.tolist() == [1, 1]

    def test_memoize_distances_same_answer(self, social_graph, social_truth):
        plain = IFECC(social_graph, num_references=4).run()
        memo = IFECC(
            social_graph, num_references=4, memoize_distances=True
        ).run()
        np.testing.assert_array_equal(plain.eccentricities, social_truth)
        np.testing.assert_array_equal(memo.eccentricities, social_truth)
        assert memo.num_bfs <= plain.num_bfs

    def test_alternative_strategies_exact(self, social_graph, social_truth):
        for strategy in ("degree", "random", "center"):
            result = compute_eccentricities(
                social_graph, strategy=strategy, seed=5
            )
            np.testing.assert_array_equal(
                result.eccentricities, social_truth
            )


class TestEfficiency:
    def test_far_fewer_bfs_than_naive(self, social_graph):
        result = compute_eccentricities(social_graph)
        assert result.num_bfs < social_graph.num_vertices / 4

    def test_figure6_bfs_count_on_example(self, example_graph):
        # Figure 6: IFECC with one reference node needs 4 + 1 = 5 BFS.
        result = compute_eccentricities(example_graph, num_references=1)
        assert result.num_bfs == 5

    def test_single_reference_not_slower_in_bfs(self, example_graph):
        # Example 4.7: r=1 needs fewer BFS than r=2 on the example.
        one = compute_eccentricities(example_graph, num_references=1)
        two = compute_eccentricities(example_graph, num_references=2)
        assert one.num_bfs < two.num_bfs

    def test_f1_upper_bounds_bfs_count(self, social_graph):
        # Theorem 5.5: |F1| (+1 reference) BFS always suffice.
        from repro.core.stratify import stratify

        strat = stratify(social_graph)
        result = compute_eccentricities(social_graph)
        assert result.num_bfs <= len(strat.f1) + 1


class TestResultMetadata:
    def test_marked_exact(self, social_graph):
        assert compute_eccentricities(social_graph).exact

    def test_algorithm_tag(self, social_graph):
        assert (
            compute_eccentricities(social_graph, num_references=2).algorithm
            == "IFECC-2"
        )

    def test_reference_nodes_recorded(self, example_graph):
        result = compute_eccentricities(example_graph, num_references=2)
        assert result.reference_nodes.tolist() == [12, 6]

    def test_radius_diameter(self, example_graph):
        result = compute_eccentricities(example_graph)
        assert result.radius == 3
        assert result.diameter == 5

    def test_bounds_equal_when_exact(self, social_graph):
        result = compute_eccentricities(social_graph)
        np.testing.assert_array_equal(result.lower, result.upper)


class TestAnytimeProtocol:
    def test_snapshots_progress(self, social_graph):
        engine = IFECC(social_graph)
        resolved = [s.resolved for s in engine.steps()]
        assert resolved == sorted(resolved)
        assert resolved[-1] == social_graph.num_vertices

    def test_budgeted_run_sound(self, social_graph, social_truth):
        engine = IFECC(social_graph)
        result = engine.run_budgeted(max_bfs=3)
        assert np.all(result.lower <= social_truth)
        assert np.all(
            result.upper.astype(np.int64) >= social_truth.astype(np.int64)
        )

    def test_budget_zero(self, social_graph):
        result = IFECC(social_graph).run_budgeted(max_bfs=0)
        assert result.num_bfs <= 1

    def test_negative_budget_rejected(self, social_graph):
        with pytest.raises(InvalidParameterError):
            IFECC(social_graph).run_budgeted(max_bfs=-1)

    def test_large_budget_reaches_exact(self, social_graph, social_truth):
        result = IFECC(social_graph).run_budgeted(max_bfs=10**6)
        assert result.exact
        np.testing.assert_array_equal(result.eccentricities, social_truth)


class TestValidation:
    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            compute_eccentricities(g)

    def test_zero_references_rejected(self, example_graph):
        with pytest.raises(InvalidParameterError):
            IFECC(example_graph, num_references=0)

    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidParameterError):
            IFECC(Graph.from_edges([], num_vertices=0))

    def test_references_clamped_to_n(self):
        g = path_graph(3)
        result = compute_eccentricities(g, num_references=50)
        assert result.exact


class TestPerComponent:
    def test_two_components(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)])
        result = eccentricities_per_component(g)
        truth = exact_eccentricities(g, require_connected=False)
        np.testing.assert_array_equal(result.eccentricities, truth)
        assert result.eccentricities.tolist() == [2, 1, 2, 1, 1]

    def test_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        result = eccentricities_per_component(g)
        assert result.eccentricities[2] == 0
        assert result.eccentricities[3] == 0

    def test_connected_graph_matches_plain(self, social_graph, social_truth):
        result = eccentricities_per_component(social_graph)
        np.testing.assert_array_equal(result.eccentricities, social_truth)
