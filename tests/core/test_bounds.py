"""Unit tests for eccentricity bound maintenance (Lemmas 3.1 / 3.3)."""

import numpy as np
import pytest

from repro.core.bounds import (
    INFINITE_ECC,
    BoundState,
    lemma31_lower,
    lemma31_upper,
)
from repro.errors import InvalidParameterError
from repro.graph.generators import path_graph
from repro.graph.properties import exact_eccentricities
from repro.graph.traversal import bfs_distances


class TestInitialState:
    def test_initial_bounds(self):
        state = BoundState(4)
        assert np.all(state.lower == 0)
        assert np.all(state.upper == INFINITE_ECC)

    def test_nothing_resolved_initially(self):
        assert BoundState(3).num_resolved() == 0

    def test_zero_vertices(self):
        state = BoundState(0)
        assert state.all_resolved()
        assert state.eccentricities().tolist() == []

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoundState(-1)


class TestLemma31Helpers:
    def test_lower_formula(self):
        dist = np.array([0, 1, 2, 3], dtype=np.int32)
        np.testing.assert_array_equal(
            lemma31_lower(dist, 3), [3, 2, 2, 3]
        )

    def test_upper_formula(self):
        dist = np.array([0, 1, 2], dtype=np.int32)
        np.testing.assert_array_equal(lemma31_upper(dist, 4), [4, 5, 6])


class TestApplyLemma31:
    def test_bounds_sandwich_truth(self):
        g = path_graph(6)
        truth = exact_eccentricities(g)
        state = BoundState(6)
        for t in (0, 3, 5):
            dist = bfs_distances(g, t)
            state.apply_lemma31(dist, int(truth[t]))
            assert np.all(state.lower <= truth)
            assert np.all(state.upper >= truth)

    def test_resolves_after_informative_sources(self):
        g = path_graph(5)
        truth = exact_eccentricities(g)
        state = BoundState(5)
        for t in range(5):
            state.apply_lemma31(bfs_distances(g, t), int(truth[t]))
            state.set_exact(t, int(truth[t]))
        assert state.all_resolved()
        np.testing.assert_array_equal(state.eccentricities(), truth)

    def test_unreachable_entries_untouched(self):
        state = BoundState(3)
        dist = np.array([0, 1, -1], dtype=np.int32)
        state.apply_lemma31(dist, 1)
        assert state.upper[2] == INFINITE_ECC
        assert state.lower[2] == 0

    def test_updates_monotone(self):
        g = path_graph(6)
        truth = exact_eccentricities(g)
        state = BoundState(6)
        prev_lower = state.lower.copy()
        prev_upper = state.upper.copy()
        for t in (2, 0, 4):
            state.apply_lemma31(bfs_distances(g, t), int(truth[t]))
            assert np.all(state.lower >= prev_lower)
            assert np.all(state.upper <= prev_upper)
            prev_lower = state.lower.copy()
            prev_upper = state.upper.copy()

    def test_inconsistent_distances_detected(self):
        state = BoundState(2)
        state.apply_lemma31(np.array([0, 1], dtype=np.int32), 1)
        # feeding an absurd ecc for the same source must trip the check
        with pytest.raises(InvalidParameterError):
            state.apply_lemma31(np.array([0, 1], dtype=np.int32), 100)


class TestApplyLowerOnly:
    def test_raises_lower(self):
        state = BoundState(3)
        state.apply_lower_only(np.array([0, 2, 5], dtype=np.int32))
        assert state.lower.tolist() == [0, 2, 5]

    def test_never_decreases(self):
        state = BoundState(2)
        state.apply_lower_only(np.array([4, 4], dtype=np.int32))
        state.apply_lower_only(np.array([1, 1], dtype=np.int32))
        assert state.lower.tolist() == [4, 4]


class TestLemma33Tail:
    def test_caps_upper(self):
        state = BoundState(3)
        dist_z = np.array([0, 1, 2], dtype=np.int32)
        state.apply_lemma33_tail(dist_z, tail_radius=2)
        assert state.upper.tolist() == [2, 3, 4]

    def test_never_below_lower(self):
        state = BoundState(2)
        # reprolint: disable=R2 (forcing internal state for the error path)
        state.lower = np.array([5, 5], dtype=np.int32)
        state.apply_lemma33_tail(
            np.array([0, 0], dtype=np.int32), tail_radius=1
        )
        assert np.all(state.upper >= state.lower)

    def test_subset_restriction(self):
        state = BoundState(4)
        dist_z = np.array([0, 1, 2, 3], dtype=np.int32)
        state.apply_lemma33_tail(
            dist_z, tail_radius=1, subset=np.array([1, 3])
        )
        assert state.upper[0] == INFINITE_ECC
        assert state.upper[2] == INFINITE_ECC
        assert state.upper[1] == 2
        assert state.upper[3] == 4


class TestSetExact:
    def test_pins_value(self):
        state = BoundState(2)
        state.set_exact(1, 7)
        assert state.lower[1] == state.upper[1] == 7

    def test_out_of_bounds_value_rejected(self):
        state = BoundState(2)
        # reprolint: disable=R2 (forcing internal state for the error path)
        state.lower[0] = 5
        with pytest.raises(InvalidParameterError):
            state.set_exact(0, 3)

    def test_gap(self):
        state = BoundState(2)
        state.set_exact(0, 4)
        gap = state.gap()
        assert gap[0] == 0
        assert gap[1] > 0

    def test_eccentricities_requires_resolution(self):
        state = BoundState(2)
        state.set_exact(0, 1)
        with pytest.raises(InvalidParameterError):
            state.eccentricities()

    def test_repr(self):
        assert "resolved=0" in repr(BoundState(3))
