"""Unit tests for result objects."""

import numpy as np
import pytest

from repro.core.result import EccentricityResult, ProgressSnapshot


def make_result(ecc, exact=True, algorithm="TEST"):
    ecc = np.asarray(ecc, dtype=np.int32)
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=exact,
        algorithm=algorithm,
        num_bfs=3,
        elapsed_seconds=0.5,
    )


class TestEccentricityResult:
    def test_radius_diameter(self):
        result = make_result([3, 4, 5])
        assert result.radius == 3
        assert result.diameter == 5

    def test_empty(self):
        result = make_result([])
        assert result.radius == 0
        assert result.diameter == 0
        assert result.num_vertices == 0

    def test_accuracy_perfect(self):
        result = make_result([2, 2, 3])
        assert result.accuracy_against(np.array([2, 2, 3])) == 100.0

    def test_accuracy_partial(self):
        result = make_result([2, 2, 3, 3])
        assert result.accuracy_against(np.array([2, 2, 4, 4])) == 50.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_result([1, 2]).accuracy_against(np.array([1]))

    def test_accuracy_empty_is_hundred(self):
        assert make_result([]).accuracy_against(np.array([])) == 100.0

    def test_repr_mentions_algorithm(self):
        assert "TEST" in repr(make_result([1], algorithm="TEST"))

    def test_repr_marks_approx(self):
        assert "approx" in repr(make_result([1], exact=False))


class TestProgressSnapshot:
    def test_fraction(self):
        snap = ProgressSnapshot(
            bfs_runs=2, source=0, resolved=5, num_vertices=10
        )
        assert snap.fraction_resolved == 0.5

    def test_fraction_empty_graph(self):
        snap = ProgressSnapshot(
            bfs_runs=0, source=0, resolved=0, num_vertices=0
        )
        assert snap.fraction_resolved == 1.0
