"""Unit tests for kIFECC (Algorithm 3) — the anytime adaptation."""

import numpy as np
import pytest

from repro.core.kifecc import approximate_eccentricities, kifecc_sweep
from repro.core.stratify import stratify
from repro.errors import InvalidParameterError


class TestEstimates:
    def test_estimate_is_lower_bound(self, social_graph, social_truth):
        result = approximate_eccentricities(social_graph, k=4)
        assert np.all(result.eccentricities <= social_truth)

    def test_accuracy_grows_with_k(self, social_graph, social_truth):
        previous = -1.0
        for k in (1, 4, 16, 64):
            result = approximate_eccentricities(social_graph, k=k)
            acc = result.accuracy_against(social_truth)
            assert acc >= previous
            previous = acc

    def test_converges_to_exact(self, social_graph, social_truth):
        result = approximate_eccentricities(
            social_graph, k=social_graph.num_vertices
        )
        assert result.exact
        np.testing.assert_array_equal(result.eccentricities, social_truth)

    def test_k_zero_reference_only(self, social_graph):
        result = approximate_eccentricities(social_graph, k=0)
        assert result.num_bfs == 1  # only the reference's own BFS

    def test_f2_budget_usually_exact(self, social_graph, social_truth):
        # Section 7.4: |F2| BFS runs computed all eccentricities exactly
        # on 19 of 20 real graphs; our core-periphery stand-in behaves
        # the same way.
        strat = stratify(social_graph)
        result = approximate_eccentricities(
            social_graph, k=max(1, len(strat.f2))
        )
        accuracy = result.accuracy_against(social_truth)
        assert accuracy >= 99.0

    def test_algorithm_tag(self, social_graph):
        assert (
            approximate_eccentricities(social_graph, k=3).algorithm
            == "kIFECC(k=3)"
        )

    def test_negative_k_rejected(self, social_graph):
        with pytest.raises(InvalidParameterError):
            approximate_eccentricities(social_graph, k=-1)

    def test_bounds_sandwich_truth(self, web_graph, web_truth):
        result = approximate_eccentricities(web_graph, k=5)
        assert np.all(result.lower <= web_truth)
        assert np.all(
            result.upper.astype(np.int64) >= web_truth.astype(np.int64)
        )


class TestSweep:
    def test_accuracies_monotone(self, social_graph, social_truth):
        entries = kifecc_sweep(
            social_graph, [2, 4, 8, 16, 32], truth=social_truth
        )
        accs = [e["accuracy"] for e in entries]
        assert accs == sorted(accs)

    def test_sweep_matches_individual_runs(self, web_graph, web_truth):
        sweep = kifecc_sweep(web_graph, [3, 9], truth=web_truth)
        for entry in sweep:
            separate = approximate_eccentricities(web_graph, k=entry["k"])
            np.testing.assert_array_equal(
                entry["result"].eccentricities, separate.eccentricities
            )

    def test_sweep_single_engine_cost(self, social_graph):
        entries = kifecc_sweep(social_graph, [2, 4, 8])
        # Total BFS cost is the largest budget, not the sum.
        assert entries[-1]["result"].num_bfs <= 8 + 1

    def test_sweep_sorts_and_dedupes(self, social_graph):
        entries = kifecc_sweep(social_graph, [8, 2, 8])
        assert [e["k"] for e in entries] == [2, 8]

    def test_negative_sizes_rejected(self, social_graph):
        with pytest.raises(InvalidParameterError):
            kifecc_sweep(social_graph, [4, -2])

    def test_without_truth_no_accuracy_key(self, social_graph):
        entries = kifecc_sweep(social_graph, [2])
        assert "accuracy" not in entries[0]


class TestEstimatorVariants:
    def test_upper_estimator_is_upper_bound(self, social_graph, social_truth):
        result = approximate_eccentricities(
            social_graph, k=4, estimator="upper"
        )
        assert np.all(result.eccentricities >= social_truth)

    def test_midpoint_between_bounds(self, social_graph):
        result = approximate_eccentricities(
            social_graph, k=4, estimator="midpoint"
        )
        assert np.all(result.eccentricities >= result.lower)
        assert np.all(
            result.eccentricities.astype(np.int64)
            <= result.upper.astype(np.int64)
        )

    def test_midpoint_tighter_worst_case(self, social_graph, social_truth):
        lower = approximate_eccentricities(social_graph, k=2)
        mid = approximate_eccentricities(
            social_graph, k=2, estimator="midpoint"
        )
        err_lower = np.abs(
            lower.eccentricities.astype(np.int64) - social_truth
        ).max()
        err_mid = np.abs(
            mid.eccentricities.astype(np.int64) - social_truth
        ).max()
        assert err_mid <= err_lower

    def test_estimators_agree_when_exact(self, social_graph, social_truth):
        for estimator in ("lower", "upper", "midpoint"):
            result = approximate_eccentricities(
                social_graph,
                k=social_graph.num_vertices,
                estimator=estimator,
            )
            np.testing.assert_array_equal(
                result.eccentricities, social_truth
            )

    def test_tag_carries_estimator(self, social_graph):
        result = approximate_eccentricities(
            social_graph, k=2, estimator="midpoint"
        )
        assert result.algorithm == "kIFECC(k=2, midpoint)"

    def test_unknown_estimator_rejected(self, social_graph):
        with pytest.raises(InvalidParameterError):
            approximate_eccentricities(social_graph, k=2, estimator="magic")
