"""Unit tests for probe numbers (Definition 4.1, Lemma 4.3, Table 2)."""

import numpy as np
import pytest

from repro.core.probes import probe_numbers
from repro.errors import InvalidParameterError
from repro.graph.generators import path_graph, star_graph


class TestLemma43Monotonicity:
    def test_paper_example(self, example_graph):
        profiles = probe_numbers(example_graph, [12, 6])  # v13, v7
        for profile in profiles:
            assert profile.is_monotone()

    def test_social_graph(self, social_graph):
        references = social_graph.top_degree_vertices(2)
        for profile in probe_numbers(social_graph, references):
            assert profile.is_monotone()

    def test_front_loaded(self, example_graph):
        # nodes at the tail of the FFO are never probed (Example 4.4)
        profiles = probe_numbers(example_graph, [12, 6])
        for profile in profiles:
            tail = profile.counts[len(profile.counts) // 2:]
            assert tail.sum() <= profile.counts[: 2].sum()


class TestProbeSemantics:
    def test_first_entry_bounded_by_territory(self, example_graph):
        # PN(v_1) counts at most one probe per territory member.
        profiles = probe_numbers(example_graph, [12, 6])
        for profile in profiles:
            assert profile.counts[0] <= profile.territory_size

    def test_territory_sizes_partition(self, example_graph):
        profiles = probe_numbers(example_graph, [12, 6])
        total = sum(p.territory_size for p in profiles)
        assert total == example_graph.num_vertices - 2

    def test_territories_match_example_46(self, example_graph):
        # V^{v13} has 8 members, V^{v7} has 3 (Example 4.6).
        profiles = probe_numbers(example_graph, [12, 6])
        assert profiles[0].territory_size == 8
        assert profiles[1].territory_size == 3

    def test_single_reference_probes_all_territory(self, example_graph):
        profiles = probe_numbers(example_graph, [12])
        assert profiles[0].territory_size == 12

    def test_star_no_probing_needed(self):
        # On a star with hub reference, Lemma 3.1 alone resolves leaves:
        # lb = max(1, 1-1) = 1, ub = 1+1 = 2 -> probing needed though.
        profiles = probe_numbers(star_graph(6), [0])
        assert profiles[0].is_monotone()

    def test_path_reference_end(self):
        profiles = probe_numbers(path_graph(6), [0])
        assert profiles[0].is_monotone()

    def test_as_table_row(self, example_graph):
        profile = probe_numbers(example_graph, [12])[0]
        row = profile.as_table_row()
        assert set(row) == set(range(13)) - set()
        assert all(v >= 0 for v in row.values())

    def test_empty_references_rejected(self, example_graph):
        with pytest.raises(InvalidParameterError):
            probe_numbers(example_graph, [])
