"""Unit tests for reference-node selection strategies."""

import numpy as np
import pytest

from repro.core.reference import (
    STRATEGIES,
    get_strategy,
    highest_degree,
    random_vertices,
    two_sweep_pseudo_center,
)
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import path_graph, star_graph


class TestHighestDegree:
    def test_star_hub_selected(self):
        assert highest_degree(star_graph(6), 1).tolist() == [0]

    def test_paper_example(self, example_graph):
        # Example 3.2: Z = {v13, v7}
        assert highest_degree(example_graph, 2).tolist() == [12, 6]

    def test_count_clamped(self):
        assert len(highest_degree(path_graph(3), 10)) == 3

    def test_deterministic(self, social_graph):
        a = highest_degree(social_graph, 4)
        b = highest_degree(social_graph, 4, seed=99)
        np.testing.assert_array_equal(a, b)

    def test_zero_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            highest_degree(path_graph(3), 0)


class TestRandomVertices:
    def test_distinct(self, social_graph):
        picks = random_vertices(social_graph, 10, seed=1)
        assert len(set(picks.tolist())) == 10

    def test_seeded(self, social_graph):
        a = random_vertices(social_graph, 5, seed=3)
        b = random_vertices(social_graph, 5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_in_range(self, social_graph):
        picks = random_vertices(social_graph, 8, seed=2)
        assert picks.min() >= 0
        assert picks.max() < social_graph.num_vertices


class TestTwoSweepCenter:
    def test_path_center(self):
        # the center of a path is its midpoint
        picks = two_sweep_pseudo_center(path_graph(9), 1)
        assert picks.tolist() == [4]

    def test_star_center(self):
        assert two_sweep_pseudo_center(star_graph(7), 1).tolist() == [0]

    def test_center_has_small_eccentricity(self, social_graph, social_truth):
        center = int(two_sweep_pseudo_center(social_graph, 1)[0])
        # pseudo-center should be well inside the radius neighborhood
        assert social_truth[center] <= social_truth.min() + 2

    def test_multiple_references(self, social_graph):
        picks = two_sweep_pseudo_center(social_graph, 3)
        assert len(picks) == 3
        assert len(set(picks.tolist())) == 3


class TestRegistry:
    def test_lookup(self):
        assert get_strategy("degree") is highest_degree
        assert get_strategy("random") is random_vertices
        assert get_strategy("center") is two_sweep_pseudo_center

    def test_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_strategy("mystery")

    def test_all_strategies_return_valid_vertices(self, social_graph):
        for name, strategy in STRATEGIES.items():
            picks = strategy(social_graph, 2, 0)
            assert len(picks) == 2, name
            assert picks.min() >= 0
            assert picks.max() < social_graph.num_vertices
