"""Unit tests for farthest-first node orders."""

import numpy as np
import pytest

from repro.core.ffo import compute_ffo, farthest_first_order
from repro.graph.csr import Graph
from repro.graph.generators import path_graph, star_graph
from repro.graph.traversal import bfs_distances


class TestOrdering:
    def test_distances_non_increasing(self, social_graph):
        ffo = compute_ffo(social_graph, 0)
        dist = ffo.distances[ffo.order]
        assert np.all(np.diff(dist) <= 0)

    def test_source_is_last(self):
        ffo = compute_ffo(path_graph(6), 2)
        assert ffo.order[-1] == 2

    def test_first_is_farthest(self):
        ffo = compute_ffo(path_graph(6), 1)
        assert ffo.order[0] == 5
        assert ffo.eccentricity == 4

    def test_ties_broken_by_id(self):
        ffo = compute_ffo(star_graph(5), 0)
        # all leaves at distance 1; ids ascending
        assert ffo.order.tolist() == [1, 2, 3, 4, 0]

    def test_covers_all_reachable(self, social_graph):
        ffo = compute_ffo(social_graph, 3)
        assert len(ffo) == social_graph.num_vertices
        assert sorted(ffo.order.tolist()) == list(
            range(social_graph.num_vertices)
        )

    def test_unreachable_excluded(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        ffo = compute_ffo(g, 0)
        assert sorted(ffo.order.tolist()) == [0, 1]


class TestPaperFigure2:
    """The running example's FFOs as listed in Figure 2."""

    def test_ffo_of_v13(self, example_graph):
        ffo = compute_ffo(example_graph, 12)  # v13
        assert ffo.eccentricity == 4
        # L^{v13} = <v1, v2, v3, ..., v13>: ids ascending because the
        # tie-break inside each layer is by id.
        assert ffo.order.tolist() == list(range(13))

    def test_ffo_of_v7(self, example_graph):
        ffo = compute_ffo(example_graph, 6)  # v7
        expected = [0, 1, 2, 7, 8, 9, 10, 11, 3, 4, 5, 12, 6]
        # = <v1, v2, v3, v8, v9, v10, v11, v12, v4, v5, v6, v13, v7>
        assert ffo.order.tolist() == expected


class TestRankHelpers:
    def test_distance_of_rank(self):
        ffo = compute_ffo(path_graph(4), 0)
        assert ffo.distance_of_rank(0) == 3
        assert ffo.distance_of_rank(3) == 0

    def test_distance_past_end_is_zero(self):
        ffo = compute_ffo(path_graph(3), 0)
        assert ffo.distance_of_rank(99) == 0

    def test_prefix(self):
        ffo = compute_ffo(path_graph(5), 0)
        assert ffo.prefix(2).tolist() == [4, 3]

    def test_len(self):
        assert len(compute_ffo(path_graph(5), 0)) == 5


class TestFromDistances:
    def test_matches_compute(self, social_graph):
        dist = bfs_distances(social_graph, 7)
        built = farthest_first_order(dist, 7)
        computed = compute_ffo(social_graph, 7)
        np.testing.assert_array_equal(built.order, computed.order)
        assert built.eccentricity == computed.eccentricity
