"""End-to-end replay of every worked example in the paper (Sections 2-5).

Each test cites the example it reproduces; together they pin the running
example's semantics so that a regression in any algorithm shows up as a
broken paper trace.
"""

import numpy as np
import pytest

from repro.core.ffo import compute_ffo
from repro.core.ifecc import IFECC, compute_eccentricities
from repro.core.stratify import stratify
from repro.graph.properties import exact_eccentricities
from repro.graph.traversal import bfs_distances, multi_source_bfs


class TestSection2:
    def test_example_21_graph_size(self, example_graph):
        """Figure 1: 13 nodes and 15 edges."""
        assert example_graph.num_vertices == 13
        assert example_graph.num_edges == 15

    def test_example_21_degree(self, example_graph):
        """deg(v10) = 2."""
        assert example_graph.degree(9) == 2

    def test_example_21_distance(self, example_graph):
        """dist(v10, v12) = 2."""
        assert bfs_distances(example_graph, 9)[11] == 2

    def test_example_23_ecc_v10(self, example_graph):
        """ecc(v10) = 4 with farthest node v1."""
        dist = bfs_distances(example_graph, 9)
        assert dist.max() == 4
        assert dist[0] == 4

    def test_example_23_radius_diameter(self, example_eccentricities):
        """rad = 3 and dia = 5."""
        assert example_eccentricities.min() == 3
        assert example_eccentricities.max() == 5


class TestSection3:
    def test_example_32_reference_nodes(self, example_graph):
        """Z = {v13, v7}, the two highest-degree nodes."""
        assert example_graph.top_degree_vertices(2).tolist() == [12, 6]

    def test_example_32_ffo_v13(self, example_graph):
        """L^{v13} lists all nodes by non-increasing distance to v13."""
        ffo = compute_ffo(example_graph, 12)
        dists = ffo.distances[ffo.order]
        assert list(dists) == sorted(dists, reverse=True)
        assert ffo.order[0] == 0  # v1 farthest

    def test_example_34_bound_trace(self, example_graph):
        """The probe trace for ecc(v9): bounds 3/5 -> 3/4 -> 3/3."""
        ffo = compute_ffo(example_graph, 12)  # z = v13
        v = 8  # v9
        dist_v = bfs_distances(example_graph, v)
        dist_vz = int(ffo.distances[v])
        assert dist_vz == 1
        assert ffo.eccentricity == 4
        lower = max(dist_vz, ffo.eccentricity - dist_vz)
        upper = dist_vz + ffo.eccentricity
        assert (lower, upper) == (3, 5)
        trace = []
        for i, node in enumerate(ffo.order):
            lower = max(lower, int(dist_v[node]))
            tail = ffo.distance_of_rank(i + 1)
            upper = min(upper, max(lower, tail + dist_vz))
            trace.append((lower, upper))
            if lower == upper:
                break
        assert trace == [(3, 4), (3, 3)]
        assert lower == 3  # ecc(v9) = 3


class TestSection4:
    def test_example_46_territories(self, example_graph):
        """V^{v13} = {v1, v2, v3, v8..v12}, V^{v7} = {v4, v5, v6}."""
        dist, owner = multi_source_bfs(example_graph, [12, 6])
        v13_territory = sorted(
            int(v) for v in range(13) if owner[v] == 12 and v != 12
        )
        v7_territory = sorted(
            int(v) for v in range(13) if owner[v] == 6 and v != 6
        )
        assert v13_territory == [0, 1, 2, 7, 8, 9, 10, 11]
        assert v7_territory == [3, 4, 5]

    def test_example_47_figure6_bfs_counts(self, example_graph):
        """Figure 6: one reference node needs 4 + 1 = 5 BFS; Figure 4's
        two-reference run needs more."""
        one = compute_eccentricities(example_graph, num_references=1)
        two = compute_eccentricities(example_graph, num_references=2)
        assert one.num_bfs == 5
        assert two.num_bfs > one.num_bfs

    def test_ifecc_matches_oracle(self, example_graph, example_eccentricities):
        result = compute_eccentricities(example_graph)
        np.testing.assert_array_equal(
            result.eccentricities, example_eccentricities
        )


class TestSection5:
    def test_example_52_layers(self, example_graph):
        """Five layers of z = v13 with ecc(z) = 4."""
        strat = stratify(example_graph, reference=12)
        sizes = strat.layer_sizes().tolist()
        assert sizes == [1, 6, 4, 1, 1]

    def test_example_54_f_sets(self, example_graph):
        """F1 = {v1..v6} (last 3 layers), F2 = {v1, v2}."""
        strat = stratify(example_graph, reference=12)
        assert strat.f1.tolist() == [0, 1, 2, 3, 4, 5]
        assert strat.f2.tolist() == [0, 1]
