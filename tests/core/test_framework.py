"""Unit tests for the abstract BFS-framework and its source selectors."""

import numpy as np
import pytest

from repro.core.bounds import BoundState
from repro.core.framework import (
    AlternatingBoundSelector,
    BFSFramework,
    DegreeSelector,
    FFOSelector,
    LargestGapSelector,
    RandomSelector,
)
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import path_graph, star_graph
from repro.graph.properties import exact_eccentricities

ALL_SELECTORS = [
    LargestGapSelector,
    AlternatingBoundSelector,
    lambda: RandomSelector(seed=0),
    DegreeSelector,
    FFOSelector,
]
SELECTOR_IDS = ["gap", "alternating", "random", "degree", "ffo"]


class TestFrameworkExactness:
    @pytest.mark.parametrize(
        "selector_factory", ALL_SELECTORS, ids=SELECTOR_IDS
    )
    def test_all_selectors_exact_on_example(
        self, selector_factory, example_graph, example_eccentricities
    ):
        framework = BFSFramework(example_graph, selector_factory())
        result = framework.run()
        assert result.exact
        np.testing.assert_array_equal(
            result.eccentricities, example_eccentricities
        )

    @pytest.mark.parametrize(
        "selector_factory", ALL_SELECTORS, ids=SELECTOR_IDS
    )
    def test_all_selectors_exact_on_social(
        self, selector_factory, social_graph, social_truth
    ):
        result = BFSFramework(social_graph, selector_factory()).run()
        np.testing.assert_array_equal(result.eccentricities, social_truth)

    def test_framework_beats_naive_bfs_count(self, social_graph):
        result = BFSFramework(social_graph, AlternatingBoundSelector()).run()
        assert result.num_bfs < social_graph.num_vertices

    def test_lemma33_cap_is_load_bearing(self, social_graph):
        # The FFO order alone (plugged into the plain framework, which
        # only applies Lemma 3.1) is NOT enough — IFECC's efficiency
        # comes from combining the order with Lemma 3.3's tail cap.
        from repro.core.ifecc import compute_eccentricities

        without_cap = BFSFramework(social_graph, FFOSelector()).run()
        with_cap = compute_eccentricities(social_graph)
        assert with_cap.num_bfs < without_cap.num_bfs / 2


class TestBudget:
    def test_budget_stops_early(self, social_graph):
        framework = BFSFramework(social_graph, DegreeSelector())
        result = framework.run(max_bfs=2)
        assert result.num_bfs == 2
        assert not result.exact

    def test_budget_result_is_sound(self, social_graph, social_truth):
        framework = BFSFramework(social_graph, DegreeSelector())
        result = framework.run(max_bfs=3)
        assert np.all(result.lower <= social_truth)
        assert np.all(
            result.upper.astype(np.int64) >= social_truth.astype(np.int64)
        )


class TestSelectors:
    def _seeded_state(self, graph):
        state = BoundState(graph.num_vertices)
        return state

    def test_selectors_return_unresolved(self, social_graph):
        for factory, name in zip(ALL_SELECTORS, SELECTOR_IDS):
            state = self._seeded_state(social_graph)
            v = factory().select(social_graph, state)
            assert v is not None, name
            assert state.lower[v] != state.upper[v], name

    def test_selectors_return_none_when_done(self, social_graph):
        truth = exact_eccentricities(social_graph)
        state = BoundState(social_graph.num_vertices)
        # reprolint: disable=R2 (test oracle pins bounds to the truth)
        state.lower = truth.copy()
        # reprolint: disable=R2 (test oracle pins bounds to the truth)
        state.upper = truth.copy()
        for factory, name in zip(ALL_SELECTORS, SELECTOR_IDS):
            assert factory().select(social_graph, state) is None, name

    def test_degree_selector_prefers_hub(self):
        g = star_graph(5)
        assert DegreeSelector().select(g, BoundState(5)) == 0

    def test_alternating_switches_phase(self, social_graph):
        selector = AlternatingBoundSelector()
        state = BoundState(social_graph.num_vertices)
        first = selector.select(social_graph, state)
        # resolve nothing; second pick targets largest upper bound instead
        second = selector.select(social_graph, state)
        assert first is not None and second is not None

    def test_random_selector_seeded(self, social_graph):
        state = BoundState(social_graph.num_vertices)
        a = RandomSelector(seed=5).select(social_graph, state)
        b = RandomSelector(seed=5).select(social_graph, state)
        assert a == b

    def test_ffo_selector_starts_at_max_degree(self, example_graph):
        selector = FFOSelector()
        state = BoundState(example_graph.num_vertices)
        assert selector.select(example_graph, state) == 12  # v13

    def test_ffo_selector_then_farthest(self, example_graph):
        selector = FFOSelector()
        state = BoundState(example_graph.num_vertices)
        first = selector.select(example_graph, state)
        state.set_exact(first, 4)
        second = selector.select(example_graph, state)
        assert second == 0  # v1, the FFO front of v13


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidParameterError):
            BFSFramework(
                Graph.from_edges([], num_vertices=0), DegreeSelector()
            )

    def test_single_vertex(self):
        result = BFSFramework(
            Graph.from_edges([], num_vertices=1), DegreeSelector()
        ).run()
        assert result.eccentricities.tolist() == [0]
