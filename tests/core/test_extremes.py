"""Unit tests for radius/diameter-only computation with early stop."""

import numpy as np
import pytest

from repro.core.extremes import radius_and_diameter
from repro.core.ifecc import compute_eccentricities
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.properties import exact_eccentricities
from helpers import random_connected_graph


class TestCorrectness:
    def test_paper_example(self, example_graph):
        result = radius_and_diameter(example_graph)
        assert result.radius == 3
        assert result.diameter == 5

    @pytest.mark.parametrize(
        "factory,radius,diameter",
        [
            (lambda: path_graph(9), 4, 8),
            (lambda: cycle_graph(10), 5, 5),
            (lambda: star_graph(6), 1, 2),
            (lambda: complete_graph(5), 1, 1),
            (lambda: grid_graph(3, 5), 3, 6),
        ],
        ids=["path", "cycle", "star", "complete", "grid"],
    )
    def test_structured(self, factory, radius, diameter):
        result = radius_and_diameter(factory())
        assert result.radius == radius
        assert result.diameter == diameter

    def test_random_graphs(self):
        for seed in range(10):
            g = random_connected_graph(60, 45, seed)
            truth = exact_eccentricities(g)
            result = radius_and_diameter(g)
            assert result.radius == truth.min()
            assert result.diameter == truth.max()

    def test_witness_vertices(self, social_graph, social_truth):
        result = radius_and_diameter(social_graph)
        assert social_truth[result.center_vertex] == result.radius
        assert social_truth[result.peripheral_vertex] == result.diameter

    def test_single_vertex(self):
        result = radius_and_diameter(Graph.from_edges([], num_vertices=1))
        assert result.radius == 0
        assert result.diameter == 0


class TestEfficiency:
    def test_cheaper_than_full_ed(self, social_graph):
        extremes = radius_and_diameter(social_graph)
        full = compute_eccentricities(social_graph)
        assert extremes.num_bfs <= full.num_bfs

    def test_far_below_n(self, social_graph):
        result = radius_and_diameter(social_graph)
        assert result.num_bfs < social_graph.num_vertices / 5

    def test_counter_consistent(self, web_graph):
        from repro.graph.traversal import TraversalCounter

        counter = TraversalCounter()
        result = radius_and_diameter(web_graph, counter=counter)
        assert counter.bfs_runs == result.num_bfs


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            radius_and_diameter(Graph.from_edges([], num_vertices=0))

    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            radius_and_diameter(g)
