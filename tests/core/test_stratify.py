"""Unit tests for stratification and the F1/F2 sets (Section 5)."""

import numpy as np
import pytest

from repro.core.stratify import stratify
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import (
    core_periphery,
    cycle_graph,
    path_graph,
    star_graph,
)


class TestLayers:
    def test_example_52_layers(self, example_graph):
        # Example 5.2: layers of z = v13.
        strat = stratify(example_graph, reference=12)
        assert strat.eccentricity == 4
        assert strat.layer(0).tolist() == [12]                    # {v13}
        assert strat.layer(1).tolist() == [6, 7, 8, 9, 10, 11]    # v7..v12
        assert strat.layer(2).tolist() == [2, 3, 4, 5]            # v3..v6
        assert strat.layer(3).tolist() == [1]                     # {v2}
        assert strat.layer(4).tolist() == [0]                     # {v1}

    def test_layer_sizes_sum_to_n(self, social_graph):
        strat = stratify(social_graph)
        assert strat.layer_sizes().sum() == social_graph.num_vertices

    def test_layers_partition(self, web_graph):
        strat = stratify(web_graph)
        seen = np.concatenate(
            [strat.layer(i) for i in range(strat.eccentricity + 1)]
        )
        assert sorted(seen.tolist()) == list(range(web_graph.num_vertices))

    def test_empty_layer_beyond_ecc(self, example_graph):
        strat = stratify(example_graph, reference=12)
        assert len(strat.layer(5)) == 0


class TestFarthestSets:
    def test_example_54(self, example_graph):
        # Example 5.4: F1 = {v1..v6}, F2 = {v1, v2} for z = v13.
        strat = stratify(example_graph, reference=12)
        assert strat.f1.tolist() == [0, 1, 2, 3, 4, 5]
        assert strat.f2.tolist() == [0, 1]

    def test_f2_subset_of_f1(self, social_graph):
        strat = stratify(social_graph)
        assert set(strat.f2.tolist()) <= set(strat.f1.tolist())

    def test_reference_not_in_f1(self, social_graph):
        strat = stratify(social_graph)
        assert strat.reference not in strat.f1.tolist()

    def test_thresholds_integer_exact(self):
        # path of length 6 from reference 0: ecc = 6, F1 = dist > 2,
        # F2 = dist > 4.
        strat = stratify(path_graph(7), reference=0)
        assert strat.f1.tolist() == [3, 4, 5, 6]
        assert strat.f2.tolist() == [5, 6]

    def test_core_periphery_f2_small(self):
        g = core_periphery(60, 40, seed=1)
        strat = stratify(g)
        # The motivating structure: F2 is a small fraction of n.
        assert len(strat.f2) < 0.3 * g.num_vertices

    def test_sizes_dict(self, social_graph):
        strat = stratify(social_graph)
        sizes = strat.sizes()
        assert sizes["n"] == social_graph.num_vertices
        assert sizes["F1"] == len(strat.f1)
        assert sizes["F2"] == len(strat.f2)


class TestStratifyDriver:
    def test_default_reference_is_highest_degree(self, example_graph):
        strat = stratify(example_graph)
        assert strat.reference == 12  # v13

    def test_explicit_reference(self, example_graph):
        assert stratify(example_graph, reference=6).reference == 6

    def test_uniform_cycle(self):
        strat = stratify(cycle_graph(10), reference=0)
        assert strat.eccentricity == 5
        assert len(strat.f1) > 0

    def test_star_degenerate(self):
        strat = stratify(star_graph(5), reference=0)
        assert strat.eccentricity == 1
        # every leaf is in F1 (dist 1 > 1/3) and in F2 (dist 1 > 2/3)
        assert strat.f1.tolist() == [1, 2, 3, 4]
        assert strat.f2.tolist() == [1, 2, 3, 4]

    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            stratify(g)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            stratify(Graph.from_edges([], num_vertices=0))

    def test_single_vertex(self):
        strat = stratify(Graph.from_edges([], num_vertices=1))
        assert strat.eccentricity == 0
        assert len(strat.f1) == 0
        assert len(strat.f2) == 0
