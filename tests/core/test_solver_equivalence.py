"""Bit-identical equivalence of the generic solver on the unweighted path.

The metric-generic :class:`repro.core.solver.EccentricitySolver` replaced
the hand-written IFECC loop; the acceptance bar for that refactor is that
the unweighted instantiation is *bit-identical* to the pre-unification
implementation — same eccentricities, same BFS counts, same edge-scan
totals, same anytime snapshot stream, same kIFECC estimates, same
extremes certificates.

``tests/data/golden_ifecc.json`` was captured from the seed
implementation (commit 060a72f) on a fixed generator corpus.  These
tests replay the corpus through the current implementation and demand an
exact match.  If an intentional algorithmic change ever breaks this,
regenerate the golden file with ``python -m tests.core.test_solver_equivalence``
and justify the diff in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.core.extremes import radius_and_diameter
from repro.core.ifecc import IFECC
from repro.core.kifecc import approximate_eccentricities
from repro.counters import TraversalCounter
from repro.graph.components import split_components
from repro.graph.csr import Graph
from repro.graph.generators import (
    attach_handles,
    balanced_tree,
    barabasi_albert,
    core_periphery,
    grid_graph,
    paper_example_graph,
    watts_strogatz,
)

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_ifecc.json"


def _largest_component(graph: Graph) -> Graph:
    parts = split_components(graph)
    return max(parts, key=lambda item: item[0].num_vertices)[0]


def build_corpus() -> Dict[str, Graph]:
    """The fixed generator corpus the golden file was captured on."""
    return {
        "paper": paper_example_graph(),
        "ba150": barabasi_albert(150, 3, seed=5),
        "ws120": watts_strogatz(120, 6, 0.1, seed=3),
        "grid9x13": grid_graph(9, 13),
        "tree2x6": balanced_tree(2, 6),
        "coreper": _largest_component(
            attach_handles(core_periphery(120, 30, seed=11), 5, 9, seed=12)
        ),
    }


def capture(graph: Graph) -> Dict[str, object]:
    """Record every observable of the solver on one graph."""
    record: Dict[str, object] = {}
    for refs in (1, 3):
        for memo in (False, True):
            counter = TraversalCounter()
            engine = IFECC(
                graph,
                num_references=refs,
                memoize_distances=memo,
                counter=counter,
            )
            snapshots = [
                [s.bfs_runs, s.source, s.resolved] for s in engine.steps()
            ]
            record[f"r{refs}_memo{int(memo)}"] = {
                "ecc": engine.bounds.eccentricities().tolist(),
                "num_bfs": counter.bfs_runs,
                "edges_scanned": counter.edges_scanned,
                "snapshots": snapshots,
            }
    k_result = approximate_eccentricities(graph, k=5)
    record["kifecc_k5"] = {
        "est": k_result.eccentricities.tolist(),
        "lower": k_result.lower.tolist(),
        "upper": k_result.upper.tolist(),
        "num_bfs": k_result.num_bfs,
        "exact": bool(k_result.exact),
    }
    counter = TraversalCounter()
    extremes = radius_and_diameter(graph, counter=counter)
    record["extremes"] = {
        "radius": extremes.radius,
        "diameter": extremes.diameter,
        "center": int(extremes.center_vertex),
        "periphery": int(extremes.peripheral_vertex),
        "num_bfs": counter.bfs_runs,
    }
    return record


@pytest.fixture(scope="module")
def golden() -> Dict[str, Dict[str, object]]:
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(build_corpus()))
def test_bit_identical_to_seed(name: str, golden) -> None:
    graph = build_corpus()[name]
    got = capture(graph)
    want = golden[name]
    assert sorted(got) == sorted(want)
    for key in want:
        assert got[key] == want[key], f"{name}/{key} diverged from seed"


if __name__ == "__main__":
    payload = {
        name: capture(graph) for name, graph in sorted(build_corpus().items())
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {GOLDEN_PATH}")
