"""Tests of Theorems 5.5 and 5.6: the F1-exact and F2-approximate
algorithms, on structured and random graphs."""

import numpy as np
import pytest

from repro.core.stratify import approximate_via_f2, exact_via_f1, stratify
from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    core_periphery,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.properties import exact_eccentricities
from helpers import random_connected_graph


class TestTheorem55:
    """BFS from F1 computes the exact eccentricity distribution."""

    def test_paper_example(self, example_graph, example_eccentricities):
        result = exact_via_f1(example_graph)
        np.testing.assert_array_equal(
            result.eccentricities, example_eccentricities
        )

    def test_social_graph(self, social_graph, social_truth):
        result = exact_via_f1(social_graph)
        np.testing.assert_array_equal(result.eccentricities, social_truth)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(11),
            lambda: cycle_graph(9),
            lambda: star_graph(8),
            lambda: complete_graph(6),
            lambda: grid_graph(4, 5),
            lambda: core_periphery(30, 20, seed=3),
        ],
        ids=["path", "cycle", "star", "complete", "grid", "core-periphery"],
    )
    def test_structured(self, factory):
        g = factory()
        np.testing.assert_array_equal(
            exact_via_f1(g).eccentricities, exact_eccentricities(g)
        )

    def test_random_graphs(self):
        for seed in range(10):
            g = random_connected_graph(70, 50, seed)
            np.testing.assert_array_equal(
                exact_via_f1(g).eccentricities, exact_eccentricities(g)
            )

    def test_arbitrary_reference(self, web_graph, web_truth):
        # Theorem 5.5 holds for ANY reference node, not just max-degree.
        rng = np.random.default_rng(0)
        for z in rng.choice(web_graph.num_vertices, size=5, replace=False):
            result = exact_via_f1(web_graph, reference=int(z))
            np.testing.assert_array_equal(result.eccentricities, web_truth)

    def test_bfs_budget_is_f1_plus_reference(self, social_graph):
        strat = stratify(social_graph)
        result = exact_via_f1(social_graph)
        assert result.num_bfs == len(strat.f1) + 1

    def test_single_vertex(self):
        g = Graph.from_edges([], num_vertices=1)
        assert exact_via_f1(g).eccentricities.tolist() == [0]


class TestTheorem56:
    """BFS from F2 yields a [7/12, 3/2] approximation."""

    def _check_band(self, graph, truth, reference=None):
        result = approximate_via_f2(graph, reference=reference)
        est = result.eccentricities.astype(np.float64)
        positive = truth > 0
        ratio = est[positive] / truth[positive]
        # floor() rounding can dip the estimate at most 1 below the
        # real-valued theorem bound.
        assert np.all((est + 1)[positive] / truth[positive] > 7.0 / 12.0)
        assert np.all(ratio <= 1.5 + 1e-12)
        return result

    def test_paper_example(self, example_graph, example_eccentricities):
        self._check_band(example_graph, example_eccentricities)

    def test_social_graph(self, social_graph, social_truth):
        self._check_band(social_graph, social_truth)

    def test_lattice_graph(self, lattice_graph, lattice_truth):
        self._check_band(lattice_graph, lattice_truth)

    def test_random_graphs(self):
        for seed in range(10):
            g = random_connected_graph(60, 40, seed)
            self._check_band(g, exact_eccentricities(g))

    def test_arbitrary_reference(self, web_graph, web_truth):
        rng = np.random.default_rng(1)
        for z in rng.choice(web_graph.num_vertices, size=4, replace=False):
            self._check_band(web_graph, web_truth, reference=int(z))

    def test_exact_inside_f2(self, social_graph, social_truth):
        strat = stratify(social_graph)
        result = approximate_via_f2(social_graph)
        for v in strat.f2:
            assert result.eccentricities[v] == social_truth[v]

    def test_bfs_budget_is_f2_plus_reference(self, social_graph):
        strat = stratify(social_graph)
        result = approximate_via_f2(social_graph)
        assert result.num_bfs == len(strat.f2) + 1

    def test_f2_much_cheaper_than_f1(self, social_graph):
        strat = stratify(social_graph)
        assert len(strat.f2) <= len(strat.f1)

    def test_small_world_f2_high_accuracy(self, social_graph, social_truth):
        # Section 7.4: in practice F2 computes nearly every vertex exactly.
        result = approximate_via_f2(social_graph)
        accuracy = (
            100.0
            * np.count_nonzero(result.eccentricities == social_truth)
            / len(social_truth)
        )
        assert accuracy >= 95.0

    def test_marked_not_exact(self, social_graph):
        assert not approximate_via_f2(social_graph).exact
