"""Robustness grab-bag: degenerate inputs across the whole API surface."""

import numpy as np
import pytest

from repro.analysis.memory import MemoryFootprint
from repro.core.kifecc import kifecc_sweep
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.graph.generators import path_graph
from repro.pll.index import build_pll_index
from repro.weighted.graph import WeightedGraph


class TestDegenerateGraphs:
    def test_pll_on_empty_graph(self):
        index = build_pll_index(Graph.from_edges([], num_vertices=0))
        assert index.num_vertices == 0
        assert index.num_label_entries() == 0

    def test_pll_on_isolated_vertices(self):
        g = Graph.from_edges([], num_vertices=3)
        index = build_pll_index(g)
        assert index.query(0, 0) == 0
        assert index.query(0, 2) == -1

    def test_builder_accepts_numpy_pairs(self):
        b = GraphBuilder()
        b.add_edges(np.array([[0, 1], [1, 2]]))
        assert b.build().num_edges == 2

    def test_from_adjacency_unsorted_input(self):
        g = Graph.from_adjacency([[2, 1], [0], [0]])
        assert g.neighbors(0).tolist() == [1, 2]

    def test_weighted_empty(self):
        g = WeightedGraph.from_edges([])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_weighted_zero_weight_edge(self):
        from repro.weighted.dijkstra import dijkstra_distances

        g = WeightedGraph.from_edges([(0, 1, 0.0), (1, 2, 1.0)])
        np.testing.assert_array_equal(
            dijkstra_distances(g, 0), [0.0, 0.0, 1.0]
        )


class TestDegenerateBudgets:
    def test_kifecc_sweep_k_zero(self, example_graph):
        entries = kifecc_sweep(example_graph, [0])
        assert entries[0]["k"] == 0
        assert entries[0]["result"].num_bfs <= 1

    def test_memory_ratio_to_zero(self):
        a = MemoryFootprint("a", 10, 0, 0)
        zero = MemoryFootprint("z", 0, 0, 0)
        assert a.ratio_to(zero) == float("inf")

    def test_snapshot_counter_attached(self, example_graph):
        import repro

        result = repro.compute_eccentricities(example_graph)
        assert result.counter is not None
        assert result.counter.bfs_runs == result.num_bfs


class TestIdempotence:
    def test_repeat_runs_identical(self, social_graph):
        import repro

        a = repro.compute_eccentricities(social_graph)
        b = repro.compute_eccentricities(social_graph)
        np.testing.assert_array_equal(a.eccentricities, b.eccentricities)
        assert a.num_bfs == b.num_bfs

    def test_engine_not_reusable_side_effects(self, example_graph):
        from repro.core.ifecc import IFECC

        engine = IFECC(example_graph)
        first = engine.run()
        # a second run() on a finished engine is a no-op that returns
        # the same (already exact) answer
        second = engine.run()
        np.testing.assert_array_equal(
            first.eccentricities, second.eccentricities
        )

    def test_path_graph_large(self):
        # long thin graphs exercise the deepest BFS loops
        import repro

        g = path_graph(3000)
        result = repro.compute_eccentricities(g)
        assert result.diameter == 2999
        assert result.radius == 1500
