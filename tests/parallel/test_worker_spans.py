"""Worker span propagation: cross-process telemetry merged into one record.

The acceptance scenario for the worker-telemetry merge: a ``workers=2``
process-backend run, traced, must produce a *single* run record whose
stream contains the worker-originated spans — valid ``parent`` nesting
under the owning ``parallel.batch`` span, ``worker=`` tags on every
merged event — with metric counters bit-identical to the same batch run
serially.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.naive import naive_eccentricities
from repro.graph.engine import engine_for
from repro.graph.generators import barabasi_albert
from repro.obs.record import RunRecord
from repro.obs.trace import MemorySink, Tracer, deterministic_view, tracing
from repro.parallel.pool import shutdown_pools
from repro.parallel.shm import shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(300, 3, seed=21)


@pytest.fixture(scope="module")
def traced_process_run(graph):
    """One traced workers=2 process-backend run, packaged as a record."""
    sink = MemorySink()
    with tracing(sink) as tracer:
        result = naive_eccentricities(graph, backend="process", workers=2)
        metrics = tracer.metrics.snapshot()
    record = RunRecord.from_run(
        result,
        graph,
        sink.events,
        config={"command": "naive", "backend": "process", "workers": 2},
        metrics=metrics,
    )
    yield result, record, metrics
    shutdown_pools()


def _events_by_seq(record):
    return {
        event["seq"]: event
        for event in record.events
        if isinstance(event.get("seq"), int)
    }


class TestWorkerSpanMerge:
    def test_single_record_contains_worker_spans(self, traced_process_run):
        _result, record, _metrics = traced_process_run
        tasks = [
            e for e in record.events if e.get("name") == "parallel.task"
        ]
        assert tasks, "no worker-originated parallel.task spans merged"
        engine_events = [
            e
            for e in record.events
            if e.get("name") in ("bfs.run", "msbfs.run")
        ]
        assert engine_events, "no worker-originated engine events merged"

    def test_worker_tag_on_every_merged_event(self, traced_process_run):
        _result, record, _metrics = traced_process_run
        batches = record.batch_events()
        assert len(batches) == 1
        workers_seen = set()
        for event in record.events:
            if event.get("name") in ("parallel.task", "msbfs.run", "bfs.run"):
                assert isinstance(event.get("worker"), int)
                workers_seen.add(event["worker"])
        assert workers_seen <= {0, 1}

    def test_parent_nesting_is_valid(self, traced_process_run):
        _result, record, _metrics = traced_process_run
        by_seq = _events_by_seq(record)
        batch_seq = record.batch_events()[0]["seq"]
        for event in record.events:
            parent = event.get("parent")
            if parent is None:
                continue
            # Every parent reference resolves, and the repo's
            # seq-at-creation convention survives the remap: a child's
            # seq is strictly greater than its parent's.
            assert parent in by_seq
            assert event["seq"] > parent
            if event.get("name") == "parallel.task":
                assert parent == batch_seq
            if event.get("name") == "msbfs.run":
                assert by_seq[parent]["name"] == "parallel.task"

    def test_counters_bit_identical_to_serial(self, graph, traced_process_run):
        _result, _record, process_metrics = traced_process_run
        serial_sink = MemorySink()
        with tracing(serial_sink) as tracer:
            engine_for(graph).ecc_batch(
                np.arange(graph.num_vertices, dtype=np.int64)
            )
            serial_metrics = tracer.metrics.snapshot()
        serial_counters = {
            name: data["value"]
            for name, data in serial_metrics.items()
            if data["type"] == "counter"
        }
        process_counters = {
            name: data["value"]
            for name, data in process_metrics.items()
            if data["type"] == "counter"
        }
        assert serial_counters, "serial run produced no counters"
        for name, value in serial_counters.items():
            assert process_counters.get(name) == value, name

    def test_eccentricities_match_serial(self, graph, traced_process_run):
        result, _record, _metrics = traced_process_run
        want = engine_for(graph).ecc_batch(
            np.arange(graph.num_vertices, dtype=np.int64)
        )
        assert np.array_equal(result.eccentricities, want)

    def test_record_round_trips_with_worker_events(
        self, traced_process_run, tmp_path
    ):
        _result, record, _metrics = traced_process_run
        path = str(tmp_path / "process_run.jsonl")
        record.write_jsonl(path)
        back = RunRecord.read_jsonl(path)
        assert deterministic_view(back.events) == deterministic_view(
            record.events
        )

    def test_summarize_batch_section(self, traced_process_run):
        _result, record, _metrics = traced_process_run
        text = record.summarize()
        assert "batch work:" in text
        assert "pool dispatches=1" in text
        assert "worker tasks:" in text


class TestEmitForeignUnit:
    """emit_foreign remap semantics on a hand-built worker buffer."""

    def _worker_buffer(self):
        # Simulate a worker stream: span events land in completion
        # order, so the child's event appears *before* the parent span
        # event it references.
        return [
            {"kind": "event", "seq": 2, "parent": 1, "name": "bfs.run",
             "source": 5},
            {"kind": "span", "seq": 1, "parent": None,
             "name": "parallel.task", "task": 0},
        ]

    def test_roots_reparent_and_children_follow(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("parallel.batch") as batch:
            tracer.emit_foreign(
                self._worker_buffer(), parent=batch.seq, worker=1
            )
        events = {e["name"]: e for e in sink.events}
        task = events["parallel.task"]
        child = events["bfs.run"]
        assert task["parent"] == batch.seq
        assert child["parent"] == task["seq"]
        assert task["worker"] == 1 and child["worker"] == 1

    def test_creation_order_seq_allocation(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.emit_foreign(self._worker_buffer(), parent=None, worker=0)
        events = {e["name"]: e for e in sink.events}
        # Old seq 1 (the task span, created first) must map to a lower
        # new seq than old seq 2, whatever order the buffer replays in.
        assert events["parallel.task"]["seq"] < events["bfs.run"]["seq"]

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer()
        assert tracer.emit_foreign(self._worker_buffer(), parent=None) == []
