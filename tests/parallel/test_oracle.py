"""ParallelBFSOracle: golden-corpus equivalence and backend plumbing.

The golden file captured from the seed implementation
(``tests/data/golden_ifecc.json``) pins IFECC's observable behaviour;
running the same corpus with ``backend="process"`` must reproduce it
bit for bit — the backend changes where batches execute, never answers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from core.test_solver_equivalence import GOLDEN_PATH, build_corpus
from repro.core.ifecc import IFECC
from repro.core.kifecc import approximate_eccentricities
from repro.core.oracles import BFSOracle
from repro.counters import TraversalCounter
from repro.errors import InvalidParameterError
from repro.parallel import ParallelBFSOracle, shutdown_pools
from repro.parallel.shm import shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


@pytest.mark.parametrize("name", sorted(build_corpus()))
def test_ifecc_golden_with_process_backend(name, golden):
    graph = build_corpus()[name]
    counter = TraversalCounter()
    engine = IFECC(
        graph, num_references=1, counter=counter,
        backend="process", workers=2,
    )
    for _ in engine.steps():
        pass
    want = golden[name]["r1_memo0"]
    assert engine.bounds.eccentricities().tolist() == want["ecc"]
    assert counter.bfs_runs == want["num_bfs"]
    assert counter.edges_scanned == want["edges_scanned"]


@pytest.mark.parametrize("name", sorted(build_corpus()))
def test_kifecc_golden_with_process_backend(name, golden):
    graph = build_corpus()[name]
    result = approximate_eccentricities(
        graph, k=5, backend="process", workers=2
    )
    want = golden[name]["kifecc_k5"]
    assert result.eccentricities.tolist() == want["est"]
    assert result.num_bfs == want["num_bfs"]
    assert bool(result.exact) == want["exact"]


class TestBatchedEntryPoints:
    def test_ecc_all_matches_numpy_backend(self):
        graph = build_corpus()["ba150"]
        numpy_oracle = BFSOracle(graph)
        process_oracle = ParallelBFSOracle(graph, workers=2)
        assert np.array_equal(
            process_oracle.ecc_all(), numpy_oracle.ecc_all()
        )

    def test_distance_rows_match_numpy_backend(self):
        graph = build_corpus()["ws120"]
        numpy_oracle = BFSOracle(graph)
        process_oracle = ParallelBFSOracle(graph, workers=2)
        sources = [0, 7, 101]
        assert np.array_equal(
            process_oracle.distance_rows(sources),
            numpy_oracle.distance_rows(sources),
        )

    def test_single_probes_stay_sequential(self):
        # source/sweep probes must not touch the pool at all.
        graph = build_corpus()["paper"]
        oracle = ParallelBFSOracle(graph, workers=2)
        ecc, dist, rdist = oracle.source_probe(0)
        sweep_ecc, _sweep = oracle.sweep_probe(0)
        assert ecc == sweep_ecc
        assert dist is rdist
        assert oracle._pool is None  # never built

    def test_close_then_reuse_rebuilds_pool(self):
        graph = build_corpus()["paper"]
        oracle = ParallelBFSOracle(graph, workers=1)
        first = oracle.ecc_all()
        oracle.close()
        assert np.array_equal(oracle.ecc_all(), first)
        oracle.close()


class TestBackendFlag:
    def test_unknown_backend_rejected(self):
        graph = build_corpus()["paper"]
        with pytest.raises(InvalidParameterError, match="backend"):
            BFSOracle(graph, backend="gpu")

    def test_pool_property_requires_process_backend(self):
        graph = build_corpus()["paper"]
        with pytest.raises(InvalidParameterError):
            BFSOracle(graph).pool

    def test_numpy_backend_never_imports_parallel_pool(self):
        graph = build_corpus()["paper"]
        oracle = BFSOracle(graph)
        assert oracle.backend == "numpy"
        assert np.array_equal(
            oracle.ecc_all([0, 1]),
            oracle.engine.ecc_batch(np.asarray([0, 1], dtype=np.int64)),
        )
