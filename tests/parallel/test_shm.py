"""Shared-memory graph publication (repro.parallel.shm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParallelBackendError
from repro.graph.generators import barabasi_albert, paper_example_graph
from repro.parallel.shm import (
    _ALIGN,
    ArraySpec,
    SharedGraph,
    SharedGraphSpec,
    attach,
    attach_array,
    create_segment,
    publish_graph,
    shared_memory_available,
)
from repro.store.format import open_store, read_info, save_store

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


class TestRoundTrip:
    def test_graph_round_trip_is_bitwise(self):
        graph = barabasi_albert(200, 3, seed=9)
        with SharedGraph.publish(graph) as share:
            rebuilt, segment = attach(share.spec)
            try:
                assert np.array_equal(rebuilt.indptr, graph.indptr)
                assert np.array_equal(rebuilt.indices, graph.indices)
                assert np.array_equal(rebuilt.degrees, graph.degrees)
                assert rebuilt.num_vertices == graph.num_vertices
                assert rebuilt.indptr.dtype == np.int64
                assert rebuilt.indices.dtype == np.int32
            finally:
                segment.close()

    def test_attached_views_are_frozen(self):
        graph = paper_example_graph()
        with SharedGraph.publish(graph) as share:
            rebuilt, segment = attach(share.spec)
            try:
                for array in (
                    rebuilt.indptr, rebuilt.indices, rebuilt.degrees
                ):
                    assert not array.flags.writeable
                    with pytest.raises(ValueError):
                        array[0] = 99
            finally:
                segment.close()

    def test_attached_views_are_zero_copy(self):
        graph = paper_example_graph()
        with SharedGraph.publish(graph) as share:
            rebuilt, segment = attach(share.spec)
            try:
                # The views alias the mapped buffer, not fresh arrays.
                assert rebuilt.indptr.base is not None
            finally:
                segment.close()

    def test_weighted_round_trip(self):
        from repro.weighted.graph import WeightedGraph

        graph = WeightedGraph.from_edges(
            [(0, 1, 1.5), (1, 2, 0.25), (2, 3, 2.0), (3, 0, 1.0)]
        )
        with SharedGraph.publish_weighted(graph) as share:
            rebuilt, segment = attach(share.spec)
            try:
                assert np.array_equal(rebuilt.indptr, graph.indptr)
                assert np.array_equal(rebuilt.indices, graph.indices)
                assert np.array_equal(rebuilt.weights, graph.weights)
            finally:
                segment.close()

    def test_directed_round_trip(self):
        from repro.directed.graph import DirectedGraph

        graph = DirectedGraph.from_arcs([(0, 1), (1, 2), (2, 3), (3, 0)])
        with SharedGraph.publish_directed(graph) as share:
            rebuilt, segment = attach(share.spec)
            try:
                for got, want in zip(
                    rebuilt.forward_view() + rebuilt.backward_view(),
                    graph.forward_view() + graph.backward_view(),
                ):
                    assert np.array_equal(got, want)
            finally:
                segment.close()


class TestLayout:
    def test_offsets_are_aligned(self):
        graph = barabasi_albert(150, 2, seed=4)
        with SharedGraph.publish(graph) as share:
            for spec in share.spec.arrays:
                assert spec.offset % _ALIGN == 0

    def test_spec_is_picklable(self):
        import pickle

        graph = paper_example_graph()
        with SharedGraph.publish(graph) as share:
            clone = pickle.loads(pickle.dumps(share.spec))
            assert clone == share.spec


class TestFileBacked:
    """Publication of store-resident graphs: the spec carries the file
    path and workers memmap it instead of copying CSR into a segment."""

    def test_publish_store_round_trip(self, tmp_path):
        graph = barabasi_albert(200, 3, seed=9)
        info = save_store(graph, tmp_path / "g.rcsr")
        with SharedGraph.publish_store(info) as share:
            assert share.spec.path == str(info.path)
            assert share.spec.segment == ""
            rebuilt, mapping = attach(share.spec)
            try:
                assert np.array_equal(rebuilt.indptr, graph.indptr)
                assert np.array_equal(rebuilt.indices, graph.indices)
                assert np.array_equal(rebuilt.degrees, graph.degrees)
            finally:
                mapping.close()

    def test_file_backed_views_are_frozen_memmaps(self, tmp_path):
        info = save_store(paper_example_graph(), tmp_path / "g.rcsr")
        with SharedGraph.publish_store(info) as share:
            rebuilt, mapping = attach(share.spec)
            try:
                for array in (rebuilt.indptr, rebuilt.indices):
                    assert not array.flags.writeable
                    with pytest.raises(ValueError):
                        array[0] = 99
            finally:
                mapping.close()

    def test_unlink_leaves_the_store_file(self, tmp_path):
        info = save_store(paper_example_graph(), tmp_path / "g.rcsr")
        share = SharedGraph.publish_store(info)
        share.unlink()
        share.unlink()  # idempotent, and the file survives
        assert (tmp_path / "g.rcsr").exists()
        assert open_store(info.path).num_vertices == 13

    def test_attach_vanished_file_raises(self, tmp_path):
        info = save_store(paper_example_graph(), tmp_path / "g.rcsr")
        share = SharedGraph.publish_store(info)
        (tmp_path / "g.rcsr").unlink()
        with pytest.raises(ParallelBackendError, match="vanished"):
            attach(share.spec)

    def test_spec_with_path_pickles(self, tmp_path):
        import pickle

        info = save_store(paper_example_graph(), tmp_path / "g.rcsr")
        with SharedGraph.publish_store(info) as share:
            clone = pickle.loads(pickle.dumps(share.spec))
            assert clone == share.spec
            assert clone.path == str(info.path)

    def test_publish_graph_prefers_the_store_file(self, tmp_path):
        info = save_store(paper_example_graph(), tmp_path / "g.rcsr")
        opened = open_store(info.path)
        with publish_graph(opened) as share:
            assert share.spec.path == str(info.path)

    def test_publish_graph_falls_back_to_segment(self):
        graph = paper_example_graph()
        with publish_graph(graph) as share:
            assert share.spec.path is None
            assert share.spec.segment != ""
            rebuilt, segment = attach(share.spec)
            try:
                assert np.array_equal(rebuilt.indptr, graph.indptr)
            finally:
                segment.close()

    def test_publish_directed_store(self, tmp_path):
        from repro.directed.graph import DirectedGraph

        graph = DirectedGraph.from_arcs([(0, 1), (1, 2), (2, 3), (3, 0)])
        info = save_store(graph, tmp_path / "d.rcsr")
        with SharedGraph.publish_store(read_info(info.path)) as share:
            rebuilt, mapping = attach(share.spec)
            try:
                for got, want in zip(
                    rebuilt.forward_view() + rebuilt.backward_view(),
                    graph.forward_view() + graph.backward_view(),
                ):
                    assert np.array_equal(got, want)
            finally:
                mapping.close()


class TestLifecycle:
    def test_unlink_is_idempotent(self):
        share = SharedGraph.publish(paper_example_graph())
        share.unlink()
        share.unlink()

    def test_attach_after_unlink_raises(self):
        share = SharedGraph.publish(paper_example_graph())
        spec = share.spec
        share.unlink()
        with pytest.raises(ParallelBackendError, match="vanished"):
            attach(spec)

    def test_unknown_kind_raises(self):
        spec = SharedGraphSpec(
            segment="nope", kind="hypergraph", num_vertices=1, arrays=()
        )
        with pytest.raises(ParallelBackendError, match="unknown"):
            attach(spec)

    def test_attach_array_round_trips_values(self):
        segment = create_segment(4 * 16)
        try:
            spec = ArraySpec(
                key="x", offset=0, shape=(16,), dtype="int32"
            )
            view = attach_array(segment, spec)
            view[:] = np.arange(16, dtype=np.int32)
            again = attach_array(segment, spec)
            assert np.array_equal(again, np.arange(16))
        finally:
            segment.close()
            segment.unlink()
