"""TraversalPool dispatch, equivalence, lifecycle, and leak-freedom."""

from __future__ import annotations

import gc
import os
import time

import numpy as np
import pytest

from repro.counters import TraversalCounter
from repro.errors import (
    InvalidParameterError,
    InvalidVertexError,
    ParallelBackendError,
)
from repro.graph.engine import engine_for
from repro.graph.generators import barabasi_albert
from repro.graph.msbfs import msbfs_eccentricities, multi_source_distances
from repro.obs.trace import deterministic_view, tracing, MemorySink
from repro.parallel.pool import (
    TraversalPool,
    pool_for,
    resolve_workers,
    shutdown_pools,
)
from repro.parallel.shm import shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(300, 3, seed=21)


@pytest.fixture(scope="module")
def pool(graph):
    pool = TraversalPool(graph, workers=2)
    yield pool
    pool.close()


class TestEquivalence:
    def test_eccentricities_match_engine(self, graph, pool):
        want = engine_for(graph).ecc_batch(
            np.arange(graph.num_vertices, dtype=np.int64)
        )
        got = pool.eccentricities()
        assert np.array_equal(got, want)
        assert got.dtype == np.int32

    def test_subset_sources_preserve_order(self, graph, pool):
        sources = np.asarray([17, 3, 250, 3, 0], dtype=np.int64)
        engine = engine_for(graph)
        want = engine.ecc_batch(sources)
        assert np.array_equal(pool.eccentricities(sources), want)

    def test_distance_rows_match_engine(self, graph, pool):
        sources = [5, 99, 0]
        engine = engine_for(graph)
        want = np.stack(
            [engine.run(s).copy() for s in sources]
        )
        assert np.array_equal(pool.distance_rows(sources), want)

    def test_distance_rows_into_preallocated_out(self, graph, pool):
        sources = [1, 2]
        out = np.zeros((2, graph.num_vertices), dtype=np.int32)
        returned = pool.distance_rows(sources, out=out)
        assert returned is out
        assert np.array_equal(out[0], engine_for(graph).run(1).copy())

    def test_msbfs_rows_match_inprocess(self, graph, pool):
        sources = np.arange(150, dtype=np.int64)
        want = multi_source_distances(graph, sources)
        assert np.array_equal(pool.msbfs_distance_rows(sources), want)

    def test_msbfs_eccentricities_match_inprocess(self, graph, pool):
        want = msbfs_eccentricities(graph)
        assert np.array_equal(pool.msbfs_eccentricities(), want)

    def test_counter_totals_match_serial(self, graph, pool):
        serial = TraversalCounter()
        engine_for(graph).ecc_batch(
            np.arange(graph.num_vertices, dtype=np.int64), counter=serial
        )
        merged = TraversalCounter()
        pool.eccentricities(counter=merged)
        assert merged.bfs_runs == serial.bfs_runs
        assert merged.edges_scanned == serial.edges_scanned
        assert merged.edges_inspected == serial.edges_inspected

    def test_empty_sources(self, pool):
        assert pool.eccentricities([]).shape == (0,)
        assert pool.distance_rows([]).shape == (0, pool.num_vertices)


class TestValidation:
    def test_invalid_vertex_raises_in_parent(self, pool):
        with pytest.raises(InvalidVertexError):
            pool.eccentricities([0, pool.num_vertices])

    def test_unknown_kind_propagates_worker_error(self, pool):
        with pytest.raises(ParallelBackendError, match="bogus"):
            pool._dispatch(
                "bogus", np.arange(3, dtype=np.int64), (), "int32", None
            )

    def test_pool_survives_worker_error(self, graph, pool):
        # After a failed dispatch the workers are still serving.
        with pytest.raises(ParallelBackendError):
            pool._dispatch(
                "bogus", np.arange(3, dtype=np.int64), (), "int32", None
            )
        want = engine_for(graph).ecc_batch(np.asarray([1, 2], dtype=np.int64))
        assert np.array_equal(pool.eccentricities([1, 2]), want)

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(InvalidParameterError):
            resolve_workers(0)


class TestObservability:
    def test_batch_span_emitted(self, graph, pool):
        sink = MemorySink()
        with tracing(sink):
            pool.eccentricities([0, 1, 2, 3, 4])
        spans = [
            e for e in sink.events if e.get("name") == "parallel.batch"
        ]
        assert len(spans) == 1
        span = spans[0]
        assert span["kind"] == "ecc"
        assert span["backend"] == "process"
        assert span["workers"] == 2
        assert span["num_sources"] == 5
        assert sum(span["chunks"]) == 5
        assert span["tasks"] == len(span["chunks"])
        assert span["traversals"] == 5
        assert isinstance(span["worker_seconds"], dict)

    def test_worker_seconds_stripped_from_deterministic_view(
        self, graph, pool
    ):
        sink = MemorySink()
        with tracing(sink):
            pool.eccentricities([0, 1])
        view = deterministic_view(sink.events)
        for event in view:
            assert "worker_seconds" not in event
            assert "dur" not in event


class TestLifecycle:
    def test_close_is_idempotent(self, graph):
        pool = TraversalPool(graph, workers=1)
        pool.close()
        pool.close()
        assert pool.closed

    def test_dispatch_after_close_raises(self, graph):
        pool = TraversalPool(graph, workers=1)
        pool.close()
        with pytest.raises(ParallelBackendError, match="closed"):
            pool.eccentricities([0])

    def test_no_leaked_segments_or_workers_after_gc(self, graph):
        from multiprocessing import shared_memory

        pool = TraversalPool(graph, workers=2)
        pool.eccentricities([0, 1, 2])  # materialise the out segment too
        resources = pool._resources
        graph_segment = resources.graph_share.name
        out_segment = resources.out_segment.name
        pids = [proc.pid for proc in resources.processes]
        del pool, resources
        gc.collect()
        for name in (graph_segment, out_segment):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(_pid_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert not any(_pid_alive(pid) for pid in pids)

    def test_pool_for_caches_per_graph(self, graph):
        first = pool_for(graph, workers=1)
        try:
            assert pool_for(graph) is first
            assert pool_for(graph, workers=1) is first
            replaced = pool_for(graph, workers=2)
            assert replaced is not first
            assert first.closed
        finally:
            shutdown_pools()

    def test_shutdown_pools_closes_registry(self, graph):
        pool = pool_for(graph, workers=1)
        shutdown_pools()
        assert pool.closed

    def test_context_manager(self, graph):
        with TraversalPool(graph, workers=1) as pool:
            assert pool.eccentricities([0]).shape == (1,)
        assert pool.closed


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    # Reap a zombie child if the pool's join missed it.
    try:
        done, _status = os.waitpid(pid, os.WNOHANG)
        return done == 0
    except ChildProcessError:
        return True
