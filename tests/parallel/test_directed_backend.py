"""Directed process backend ≡ numpy backend, bit for bit.

PR 2's contract extended to digraphs: the worker pool publishes both
CSR directions over shared memory, so forward/backward traversals,
probe pairs, and full directed-eccentricity sweeps must agree exactly
with the in-process oracle — including counter totals, which pin the
width-shipped chunk grouping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.counters import TraversalCounter
from repro.directed.eccentricity import (
    directed_eccentricities,
    directed_ifecc_eccentricities,
    naive_directed_eccentricities,
)
from repro.directed.graph import DirectedGraph
from repro.directed.traversal import DirectedBFSOracle, backward_bfs, forward_bfs
from repro.errors import (
    DisconnectedGraphError,
    InvalidParameterError,
    ParallelBackendError,
)
from repro.parallel.pool import TraversalPool, shutdown_pools
from repro.parallel.shm import shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)

_N = 150


def _strongly_connected_graph(n=_N, chords=220, seed=5):
    """Directed ring (guarantees strong connectivity) + random chords."""
    rng = np.random.default_rng(seed)
    arcs = [(i, (i + 1) % n) for i in range(n)]
    arcs += [
        (int(a), int(b))
        for a, b in rng.integers(0, n, size=(chords, 2))
        if a != b
    ]
    return DirectedGraph.from_arcs(arcs, num_vertices=n)


@pytest.fixture(scope="module")
def graph():
    return _strongly_connected_graph()


@pytest.fixture(scope="module")
def pool(graph):
    pool = TraversalPool(graph, workers=2)
    yield pool
    pool.close()


@pytest.fixture(autouse=True, scope="module")
def _teardown_module_pools():
    yield
    shutdown_pools()


class TestPoolDirectedEntryPoints:
    def test_directed_eccentricities_match_serial(self, graph, pool):
        serial = np.asarray(
            [int(forward_bfs(graph, v).max()) for v in range(_N)],
            dtype=np.int32,
        )
        assert np.array_equal(pool.directed_eccentricities(), serial)

    def test_distance_rows_both_directions(self, graph, pool):
        src = [3, 77, 0, 149, 77]
        fwd = pool.directed_distance_rows(src, direction="forward")
        bwd = pool.directed_distance_rows(src, direction="backward")
        for i, s in enumerate(src):
            assert np.array_equal(fwd[i], forward_bfs(graph, s))
            assert np.array_equal(bwd[i], backward_bfs(graph, s))

    def test_bad_direction_rejected(self, pool):
        with pytest.raises(InvalidParameterError):
            pool.directed_distance_rows([0], direction="sideways")

    def test_probe_pair(self, graph, pool):
        rows = pool.directed_probe_pair(42)
        assert rows.shape == (2, _N)
        assert np.array_equal(rows[0], forward_bfs(graph, 42))
        assert np.array_equal(rows[1], backward_bfs(graph, 42))

    def test_counter_totals_match_serial(self, graph, pool):
        serial = TraversalCounter()
        for v in range(_N):
            forward_bfs(graph, v, counter=serial)
        pooled = TraversalCounter()
        pool.directed_eccentricities(counter=pooled)
        assert pooled.bfs_runs == serial.bfs_runs
        assert pooled.edges_scanned == serial.edges_scanned

    def test_undirected_pool_rejects_directed_entry_points(self):
        from helpers import random_connected_graph

        undirected = TraversalPool(
            random_connected_graph(30, extra_edges=10, seed=1), workers=1
        )
        try:
            with pytest.raises(ParallelBackendError):
                undirected.directed_eccentricities()
        finally:
            undirected.close()


class TestOracleBackend:
    def test_backend_validated(self, graph):
        with pytest.raises(InvalidParameterError):
            DirectedBFSOracle(graph, backend="quantum")

    def test_ecc_all_matches_numpy(self, graph):
        numpy_ecc = DirectedBFSOracle(graph).ecc_all()
        oracle = DirectedBFSOracle(graph, backend="process", workers=2)
        try:
            assert np.array_equal(oracle.ecc_all(), numpy_ecc)
        finally:
            oracle.pool.close()

    def test_source_probe_matches_numpy(self, graph):
        base = DirectedBFSOracle(graph)
        oracle = DirectedBFSOracle(graph, backend="process", workers=2)
        try:
            for source in (0, 9, 148):
                ecc_n, fwd_n, bwd_n = base.source_probe(source)
                ecc_p, fwd_p, bwd_p = oracle.source_probe(source)
                assert ecc_n == ecc_p
                assert np.array_equal(fwd_n, fwd_p)
                assert np.array_equal(bwd_n, bwd_p)
        finally:
            oracle.pool.close()

    def test_ecc_all_raises_on_weakly_connected(self):
        # A one-way path is weakly but not strongly connected: the
        # -1 sentinel from the workers must surface as the same error
        # the numpy path raises.
        graph = DirectedGraph.from_arcs([(0, 1), (1, 2)], num_vertices=3)
        with pytest.raises(DisconnectedGraphError):
            DirectedBFSOracle(graph).ecc_all()
        oracle = DirectedBFSOracle(graph, backend="process", workers=1)
        try:
            with pytest.raises(DisconnectedGraphError):
                oracle.ecc_all()
        finally:
            oracle.pool.close()


class TestAlgorithmsAcrossBackends:
    def test_naive_matches(self, graph):
        assert np.array_equal(
            naive_directed_eccentricities(graph),
            naive_directed_eccentricities(
                graph, backend="process", workers=2
            ),
        )

    def test_bound_propagation_matches_and_tags(self, graph):
        serial = directed_eccentricities(graph)
        pooled = directed_eccentricities(graph, backend="process", workers=2)
        assert np.array_equal(
            serial.eccentricities, pooled.eccentricities
        )
        assert serial.algorithm == "DirectedECC"
        assert pooled.algorithm == "DirectedECC(process x2)"
        assert serial.num_bfs == pooled.num_bfs

    def test_ifecc_matches_and_tags(self, graph):
        serial = directed_ifecc_eccentricities(graph)
        pooled = directed_ifecc_eccentricities(
            graph, backend="process", workers=2
        )
        assert np.array_equal(
            serial.eccentricities, pooled.eccentricities
        )
        assert pooled.algorithm == "DirectedIFECC(process x2)"
        assert serial.num_bfs == pooled.num_bfs
