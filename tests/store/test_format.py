"""The binary graph store container (repro.store.format)."""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np
import pytest

from repro.core.ifecc import compute_eccentricities
from repro.errors import StoreFormatError
from repro.graph.generators import barabasi_albert, paper_example_graph
from repro.store.format import (
    ALIGN,
    HEADER_SIZE,
    MAGIC,
    STORE_VERSION,
    StoreInfo,
    graph_from_arrays,
    map_store_arrays,
    open_store,
    read_info,
    save_store,
    source_of,
    verify_store,
)

GOLDEN = Path(__file__).parent.parent / "data" / "golden_store_v1.rcsr"


class TestRoundTrip:
    def test_graph_round_trip_is_bitwise(self, tmp_path):
        graph = barabasi_albert(200, 3, seed=9)
        info = save_store(graph, tmp_path / "g.rcsr")
        assert info.kind == "graph"
        reopened = open_store(info.path)
        assert np.array_equal(reopened.indptr, graph.indptr)
        assert np.array_equal(reopened.indices, graph.indices)
        assert np.array_equal(reopened.degrees, graph.degrees)
        assert reopened.num_vertices == graph.num_vertices
        assert reopened.indptr.dtype == np.int64
        assert reopened.indices.dtype == np.int32

    def test_weighted_round_trip(self, tmp_path):
        from repro.weighted.graph import WeightedGraph

        graph = WeightedGraph.from_edges(
            [(0, 1, 1.5), (1, 2, 0.25), (2, 3, 2.0), (3, 0, 1.0)]
        )
        info = save_store(graph, tmp_path / "w.rcsr")
        assert info.kind == "weighted"
        reopened = open_store(info.path)
        assert np.array_equal(reopened.indptr, graph.indptr)
        assert np.array_equal(reopened.indices, graph.indices)
        assert np.array_equal(reopened.weights, graph.weights)

    def test_directed_round_trip(self, tmp_path):
        from repro.directed.graph import DirectedGraph

        graph = DirectedGraph.from_arcs([(0, 1), (1, 2), (2, 3), (3, 0)])
        info = save_store(graph, tmp_path / "d.rcsr")
        assert info.kind == "directed"
        reopened = open_store(info.path)
        for got, want in zip(
            reopened.forward_view() + reopened.backward_view(),
            graph.forward_view() + graph.backward_view(),
        ):
            assert np.array_equal(got, want)

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        save_store(paper_example_graph(), tmp_path / "g.rcsr")
        assert [p.name for p in tmp_path.iterdir()] == ["g.rcsr"]


class TestZeroCopy:
    def test_open_shares_memory_with_the_mmap(self, tmp_path):
        """The tentpole claim: no copy of indptr/indices on open."""
        graph = barabasi_albert(500, 3, seed=2)
        info = save_store(graph, tmp_path / "g.rcsr")
        views = map_store_arrays(read_info(info.path))
        opened = graph_from_arrays(read_info(info.path), views)
        assert np.shares_memory(opened.indptr, views["indptr"])
        assert np.shares_memory(opened.indices, views["indices"])
        assert isinstance(views["indptr"], np.memmap)

    def test_opened_arrays_are_frozen(self, tmp_path):
        info = save_store(paper_example_graph(), tmp_path / "g.rcsr")
        opened = open_store(info.path)
        for array in (opened.indptr, opened.indices, opened.degrees):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 99

    def test_open_registers_source(self, tmp_path):
        info = save_store(paper_example_graph(), tmp_path / "g.rcsr")
        opened = open_store(info.path)
        backing = source_of(opened)
        assert backing is not None
        assert backing.path == info.path
        assert backing.digest == info.digest
        assert source_of(paper_example_graph()) is None

    def test_offsets_are_aligned(self, tmp_path):
        info = save_store(barabasi_albert(150, 2, seed=4), tmp_path / "g.rcsr")
        for entry in info.arrays:
            assert entry.offset % ALIGN == 0


class TestValidation:
    def _saved(self, tmp_path) -> StoreInfo:
        return save_store(paper_example_graph(), tmp_path / "g.rcsr")

    def test_bad_magic_rejected(self, tmp_path):
        info = self._saved(tmp_path)
        with open(info.path, "r+b") as handle:
            handle.write(b"NOTAGRPH")
        with pytest.raises(StoreFormatError, match="magic"):
            open_store(info.path)

    def test_truncated_header_rejected(self, tmp_path):
        info = self._saved(tmp_path)
        raw = Path(info.path).read_bytes()
        Path(info.path).write_bytes(raw[: HEADER_SIZE // 2])
        with pytest.raises(StoreFormatError, match="truncated"):
            open_store(info.path)

    def test_truncated_payload_rejected(self, tmp_path):
        info = self._saved(tmp_path)
        raw = Path(info.path).read_bytes()
        Path(info.path).write_bytes(raw[:-8])
        with pytest.raises(StoreFormatError, match="past end of file"):
            open_store(info.path)

    def test_newer_version_rejected(self, tmp_path):
        info = self._saved(tmp_path)
        with open(info.path, "r+b") as handle:
            handle.seek(8)
            handle.write(struct.pack("<H", STORE_VERSION + 1))
        with pytest.raises(StoreFormatError, match="newer"):
            open_store(info.path)

    def test_unknown_kind_rejected(self, tmp_path):
        info = self._saved(tmp_path)
        with open(info.path, "r+b") as handle:
            handle.seek(12)
            handle.write(b"\x09")
        with pytest.raises(StoreFormatError, match="kind"):
            open_store(info.path)

    def test_non_monotone_indptr_rejected(self, tmp_path):
        info = self._saved(tmp_path)
        indptr_entry = info.array("indptr")
        with open(info.path, "r+b") as handle:
            handle.seek(indptr_entry.offset + 8)
            handle.write(struct.pack("<q", 2**40))
        with pytest.raises(StoreFormatError, match="monotone"):
            open_store(info.path)

    def test_fingerprint_mismatch_detected_by_verify(self, tmp_path):
        """A flipped payload byte passes the O(1) open but fails
        verification (and open_store(verify=True))."""
        info = self._saved(tmp_path)
        indices_entry = info.array("indices")
        with open(info.path, "r+b") as handle:
            handle.seek(indices_entry.offset)
            first = handle.read(4)
            value = int.from_bytes(first, "little")
            handle.seek(indices_entry.offset)
            handle.write(
                ((value + 1) % len(paper_example_graph().degrees)).to_bytes(
                    4, "little"
                )
            )
        open_store(info.path)  # structural checks still pass
        with pytest.raises(StoreFormatError, match="fingerprint mismatch"):
            verify_store(info.path)
        with pytest.raises(StoreFormatError, match="fingerprint mismatch"):
            open_store(info.path, verify=True)

    def test_verify_store_accepts_intact_file(self, tmp_path):
        info = self._saved(tmp_path)
        assert verify_store(info.path).digest == info.digest

    def test_missing_file_raises_store_error(self, tmp_path):
        with pytest.raises(StoreFormatError, match="cannot read"):
            read_info(tmp_path / "absent.rcsr")


class TestGoldenFixture:
    def test_v1_byte_layout_is_pinned(self, tmp_path):
        """Saving the paper example reproduces the committed fixture
        byte for byte — any layout change must bump STORE_VERSION."""
        path = tmp_path / "fresh.rcsr"
        save_store(paper_example_graph(), path)
        assert path.read_bytes() == GOLDEN.read_bytes()

    def test_fixture_header_fields(self):
        info = read_info(GOLDEN)
        assert info.version == 1
        assert info.kind == "graph"
        assert info.num_vertices == 13
        assert info.num_entries == 30
        assert GOLDEN.read_bytes()[:8] == MAGIC

    def test_fixture_opens_to_the_paper_example(self):
        graph = paper_example_graph()
        opened = open_store(GOLDEN)
        assert np.array_equal(opened.indptr, graph.indptr)
        assert np.array_equal(opened.indices, graph.indices)


class TestSolverEquivalence:
    def test_ifecc_bit_identical_on_memmap_graph(self, tmp_path):
        """IFECC on the memmap-backed graph reproduces the in-memory
        run exactly — same eccentricities AND same probe count."""
        graph = barabasi_albert(400, 3, seed=5)
        info = save_store(graph, tmp_path / "g.rcsr")
        mapped = open_store(info.path)
        in_memory = compute_eccentricities(graph)
        on_store = compute_eccentricities(mapped)
        assert np.array_equal(
            in_memory.eccentricities, on_store.eccentricities
        )
        assert in_memory.num_bfs == on_store.num_bfs
        assert in_memory.radius == on_store.radius
        assert in_memory.diameter == on_store.diameter


class TestIoWrappers:
    def test_io_save_load_store(self, tmp_path):
        from repro.graph.io import load_store, save_store as io_save_store

        graph = paper_example_graph()
        path = tmp_path / "g.rcsr"
        io_save_store(graph, path)
        reopened = load_store(path)
        assert np.array_equal(reopened.indptr, graph.indptr)
        assert np.array_equal(reopened.indices, graph.indices)
