"""Materialized dataset collections (repro.datasets.collection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import collection as collection_mod
from repro.datasets.collection import (
    GraphCollection,
    default_collection,
    default_store_root,
    reset_default_collection,
)
from repro.datasets.loader import build_standin, load_dataset
from repro.errors import DatasetNotFoundError
from repro.store.format import source_of


class TestMaterialize:
    def test_open_matches_loader(self, tmp_path):
        collection = GraphCollection(tmp_path)
        opened = collection.open("DBLP")
        built = load_dataset("DBLP")
        assert np.array_equal(opened.indptr, built.indptr)
        assert np.array_equal(opened.indices, built.indices)

    def test_materialize_is_cached(self, tmp_path, monkeypatch):
        """The stand-in is generated exactly once; later opens hit the
        container file."""
        calls = []
        real_build = collection_mod.build_standin

        def counting_build(spec):
            calls.append(spec.name)
            return real_build(spec)

        monkeypatch.setattr(
            collection_mod, "build_standin", counting_build
        )
        collection = GraphCollection(tmp_path)
        first = collection.open("DBLP")
        second = collection.open("DBLP")
        assert calls == ["DBLP"]
        assert np.array_equal(first.indptr, second.indptr)

    def test_force_rebuilds(self, tmp_path, monkeypatch):
        calls = []
        real_build = collection_mod.build_standin
        monkeypatch.setattr(
            collection_mod,
            "build_standin",
            lambda spec: (calls.append(spec.name), real_build(spec))[1],
        )
        collection = GraphCollection(tmp_path)
        collection.materialize("DBLP")
        collection.materialize("DBLP")
        assert calls == ["DBLP"]
        collection.materialize("DBLP", force=True)
        assert calls == ["DBLP", "DBLP"]

    def test_scaled_variants_are_separate_files(self, tmp_path):
        collection = GraphCollection(tmp_path)
        collection.materialize("DBLP", scale=0.25)
        collection.materialize("DBLP")
        assert collection.path_for("DBLP") != collection.path_for(
            "DBLP", scale=0.25
        )
        assert sorted(collection.names()) == ["dblp", "dblp_x0.25"]

    def test_opened_graph_knows_its_source(self, tmp_path):
        collection = GraphCollection(tmp_path)
        opened = collection.open("DBLP")
        info = source_of(opened)
        assert info is not None
        assert info.path == str(collection.path_for("DBLP"))

    def test_unknown_dataset_rejected_before_touching_disk(self, tmp_path):
        collection = GraphCollection(tmp_path)
        with pytest.raises(DatasetNotFoundError):
            collection.open("NOPE")
        assert list(tmp_path.iterdir()) == []

    def test_info_none_until_materialized(self, tmp_path):
        collection = GraphCollection(tmp_path)
        assert collection.info("DBLP") is None
        collection.materialize("DBLP")
        info = collection.info("DBLP")
        assert info is not None and info.kind == "graph"


class TestDefaultCollection:
    def test_env_root_is_honoured(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "stores"))
        reset_default_collection()
        try:
            assert default_store_root() == tmp_path / "stores"
            assert default_collection().root == tmp_path / "stores"
        finally:
            reset_default_collection()

    def test_rebinds_when_env_changes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "a"))
        reset_default_collection()
        try:
            first = default_collection()
            monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "b"))
            second = default_collection()
            assert first.root != second.root
            assert second.root == tmp_path / "b"
        finally:
            reset_default_collection()

    def test_fallback_root_is_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        root = default_store_root()
        assert root.name == "repro"
        assert root.parent.name == ".cache"
