"""Shared graph-building helpers importable from any test module."""

from __future__ import annotations

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph


def random_connected_graph(n: int, extra_edges: int, seed: int) -> Graph:
    """A random connected graph: random spanning tree + extra edges.

    The tree guarantees connectivity; the extra edges add cycles.  Used
    by unit tests and hypothesis strategies alike.
    """
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_vertices=n)
    for v in range(1, n):
        builder.add_edge(v, int(rng.integers(0, v)))
    for _ in range(extra_edges):
        u = int(rng.integers(0, n))
        w = int(rng.integers(0, n))
        if u != w:
            builder.add_edge(u, w)
    return builder.build()
