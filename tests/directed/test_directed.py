"""Tests for the directed-graph extension."""

import numpy as np
import pytest

from repro.directed.eccentricity import (
    directed_eccentricities,
    directed_radius_and_diameter,
    directed_solver,
    naive_directed_eccentricities,
)
from repro.directed.graph import DirectedGraph
from repro.directed.traversal import (
    backward_bfs,
    forward_bfs,
    is_strongly_connected,
)
from repro.errors import (
    DisconnectedGraphError,
    GraphConstructionError,
    InvalidVertexError,
)
from repro.graph.generators import cycle_graph
from helpers import random_connected_graph


def directed_cycle(n):
    return DirectedGraph.from_arcs((i, (i + 1) % n) for i in range(n))


def random_strongly_connected(n, extra, seed):
    """A directed cycle over all vertices plus random extra arcs."""
    rng = np.random.default_rng(seed)
    arcs = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(extra):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            arcs.append((int(u), int(v)))
    return DirectedGraph.from_arcs(arcs, num_vertices=n)


class TestDirectedGraph:
    def test_from_arcs(self):
        g = DirectedGraph.from_arcs([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_arcs == 2

    def test_direction_matters(self):
        g = DirectedGraph.from_arcs([(0, 1)])
        assert g.out_neighbors(0).tolist() == [1]
        assert g.out_neighbors(1).tolist() == []
        assert g.in_neighbors(1).tolist() == [0]

    def test_duplicates_and_loops_dropped(self):
        g = DirectedGraph.from_arcs([(0, 1), (0, 1), (1, 1)])
        assert g.num_arcs == 1

    def test_out_in_degrees(self):
        g = directed_cycle(4)
        assert g.out_degrees().tolist() == [1, 1, 1, 1]
        assert g.in_degrees().tolist() == [1, 1, 1, 1]

    def test_from_undirected(self):
        g = DirectedGraph.from_undirected(cycle_graph(5))
        assert g.num_arcs == 10  # each edge = two arcs

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphConstructionError):
            DirectedGraph.from_arcs([(0, 7)], num_vertices=3)

    def test_invalid_vertex(self):
        with pytest.raises(InvalidVertexError):
            directed_cycle(3).out_neighbors(5)


class TestTraversal:
    def test_forward_respects_direction(self):
        g = directed_cycle(5)
        assert forward_bfs(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_backward_is_reverse(self):
        g = directed_cycle(5)
        assert backward_bfs(g, 0).tolist() == [0, 4, 3, 2, 1]

    def test_forward_backward_duality(self):
        g = random_strongly_connected(30, 40, seed=1)
        for s in (0, 10, 29):
            fwd = forward_bfs(g, s)
            for t in (0, 15, 29):
                assert fwd[t] == backward_bfs(g, t)[s]

    def test_unreachable(self):
        g = DirectedGraph.from_arcs([(0, 1)], num_vertices=3)
        assert forward_bfs(g, 1)[0] == -1
        assert forward_bfs(g, 0)[2] == -1

    def test_strong_connectivity(self):
        assert is_strongly_connected(directed_cycle(6))
        assert not is_strongly_connected(
            DirectedGraph.from_arcs([(0, 1), (1, 2)])
        )

    def test_single_vertex_strongly_connected(self):
        assert is_strongly_connected(
            DirectedGraph.from_arcs([], num_vertices=1)
        )


class TestDirectedEccentricities:
    def test_cycle(self):
        result = directed_eccentricities(directed_cycle(7))
        # every vertex's farthest is its predecessor: distance 6
        assert np.all(result.eccentricities == 6)

    def test_matches_oracle_on_random_digraphs(self):
        for seed in range(6):
            g = random_strongly_connected(40, 60, seed)
            truth = naive_directed_eccentricities(g)
            result = directed_eccentricities(g)
            np.testing.assert_array_equal(result.eccentricities, truth)

    def test_undirected_lift_matches_undirected(self):
        from repro.graph.properties import exact_eccentricities

        base = random_connected_graph(40, 30, seed=3)
        lifted = DirectedGraph.from_undirected(base)
        result = directed_eccentricities(lifted)
        np.testing.assert_array_equal(
            result.eccentricities, exact_eccentricities(base)
        )

    def test_fewer_sources_than_naive(self):
        g = random_strongly_connected(150, 400, seed=5)
        result = directed_eccentricities(g)
        # Each processed source costs 2 BFS (forward + backward); the
        # number of *sources* must undercut the naive n.
        assert result.num_bfs / 2 < g.num_vertices

    def test_efficient_on_small_world_structure(self, social_graph):
        # On a core-periphery graph the bounds close fast, directed or
        # not: far fewer traversals than 2n.
        lifted = DirectedGraph.from_undirected(social_graph)
        result = directed_eccentricities(lifted)
        assert result.num_bfs < social_graph.num_vertices

    def test_not_strongly_connected_rejected(self):
        g = DirectedGraph.from_arcs([(0, 1), (1, 2)])
        with pytest.raises(DisconnectedGraphError):
            directed_eccentricities(g)

    def test_asymmetric_eccentricities(self):
        # a cycle with a chord: forward ecc differs from what the
        # undirected view would give
        g = DirectedGraph.from_arcs(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        )
        truth = naive_directed_eccentricities(g)
        result = directed_eccentricities(g)
        np.testing.assert_array_equal(result.eccentricities, truth)
        assert truth[0] != truth[1] or truth[2] != truth[3]


class TestDirectedIFECC:
    def test_matches_oracle_on_random_digraphs(self):
        from repro.directed.eccentricity import directed_ifecc_eccentricities

        for seed in range(6):
            g = random_strongly_connected(40, 60, seed)
            truth = naive_directed_eccentricities(g)
            result = directed_ifecc_eccentricities(g)
            np.testing.assert_array_equal(result.eccentricities, truth)

    def test_cycle(self):
        from repro.directed.eccentricity import directed_ifecc_eccentricities

        result = directed_ifecc_eccentricities(directed_cycle(9))
        assert np.all(result.eccentricities == 8)

    def test_undirected_lift_matches(self):
        from repro.directed.eccentricity import directed_ifecc_eccentricities
        from repro.graph.properties import exact_eccentricities

        base = random_connected_graph(50, 40, seed=8)
        result = directed_ifecc_eccentricities(
            DirectedGraph.from_undirected(base)
        )
        np.testing.assert_array_equal(
            result.eccentricities, exact_eccentricities(base)
        )

    def test_beats_bound_propagation_on_handles(self, social_graph):
        from repro.directed.eccentricity import directed_ifecc_eccentricities

        lifted = DirectedGraph.from_undirected(social_graph)
        ifecc = directed_ifecc_eccentricities(lifted)
        bound = directed_eccentricities(lifted)
        np.testing.assert_array_equal(
            ifecc.eccentricities, bound.eccentricities
        )
        assert ifecc.num_bfs < bound.num_bfs

    def test_not_strongly_connected_rejected(self):
        from repro.directed.eccentricity import directed_ifecc_eccentricities
        from repro.errors import DisconnectedGraphError

        g = DirectedGraph.from_arcs([(0, 1), (1, 2)])
        with pytest.raises(DisconnectedGraphError):
            directed_ifecc_eccentricities(g)

    def test_single_vertex(self):
        from repro.directed.eccentricity import directed_ifecc_eccentricities

        g = DirectedGraph.from_arcs([], num_vertices=1)
        assert directed_ifecc_eccentricities(g).eccentricities.tolist() == [0]


class TestDirectedAnytime:
    def test_steps_snapshots_sandwich_truth(self):
        g = random_strongly_connected(60, 90, seed=2)
        truth = naive_directed_eccentricities(g)
        solver = directed_solver(g)
        resolved_trace = []
        for snapshot in solver.steps():
            resolved_trace.append(snapshot.resolved)
            assert np.all(solver.bounds.lower <= truth)
            assert np.all(solver.bounds.upper >= truth)
        assert resolved_trace == sorted(resolved_trace)
        assert resolved_trace[-1] == g.num_vertices
        np.testing.assert_array_equal(solver.bounds.lower, truth)


class TestDirectedExtremes:
    def test_radius_and_diameter(self):
        for seed in range(4):
            g = random_strongly_connected(45, 70, seed)
            truth = naive_directed_eccentricities(g)
            extremes = directed_radius_and_diameter(g)
            assert extremes.radius == truth.min()
            assert extremes.diameter == truth.max()
            assert truth[extremes.center_vertex] == truth.min()
            assert truth[extremes.peripheral_vertex] == truth.max()

    def test_cycle(self):
        extremes = directed_radius_and_diameter(directed_cycle(8))
        assert extremes.radius == extremes.diameter == 7

    def test_early_stop_beats_full_sweep(self):
        g = random_strongly_connected(150, 400, seed=5)
        extremes = directed_radius_and_diameter(g)
        full = directed_eccentricities(g)
        # Each directed probe costs a forward + backward pair; the
        # extremes run must still undercut the full eccentricity solve.
        assert extremes.num_bfs < full.num_bfs

    def test_not_strongly_connected_rejected(self):
        g = DirectedGraph.from_arcs([(0, 1), (1, 2)])
        with pytest.raises(DisconnectedGraphError):
            directed_radius_and_diameter(g)
