"""Integration tests: all exact algorithms agree on realistic stand-ins,
and the approximate algorithms relate to the exact ones as the paper
describes."""

import numpy as np
import pytest

from repro.baselines.boundecc import boundecc_eccentricities
from repro.baselines.kbfs import kbfs_eccentricities
from repro.baselines.naive import naive_eccentricities
from repro.baselines.pllecc import pllecc_eccentricities
from repro.core.ifecc import compute_eccentricities
from repro.core.kifecc import approximate_eccentricities
from repro.core.stratify import exact_via_f1
from repro.datasets.loader import load_dataset


@pytest.fixture(scope="module")
def dblp():
    return load_dataset("DBLP")


@pytest.fixture(scope="module")
def dblp_truth(dblp):
    return naive_eccentricities(dblp).eccentricities


class TestExactConsensus:
    """Five independent exact implementations, one answer."""

    def test_ifecc1(self, dblp, dblp_truth):
        result = compute_eccentricities(dblp, num_references=1)
        np.testing.assert_array_equal(result.eccentricities, dblp_truth)

    def test_ifecc16(self, dblp, dblp_truth):
        result = compute_eccentricities(dblp, num_references=16)
        np.testing.assert_array_equal(result.eccentricities, dblp_truth)

    def test_boundecc(self, dblp, dblp_truth):
        result = boundecc_eccentricities(dblp)
        np.testing.assert_array_equal(result.eccentricities, dblp_truth)

    def test_pllecc(self, dblp, dblp_truth):
        report = pllecc_eccentricities(dblp, num_references=16)
        np.testing.assert_array_equal(
            report.result.eccentricities, dblp_truth
        )

    def test_f1_theorem(self, dblp, dblp_truth):
        result = exact_via_f1(dblp)
        np.testing.assert_array_equal(result.eccentricities, dblp_truth)


class TestPaperOrderings:
    """The relationships Figures 8-11 report, at stand-in scale."""

    def test_bfs_count_ordering(self, dblp):
        ifecc = compute_eccentricities(dblp, num_references=1)
        bound = boundecc_eccentricities(dblp)
        naive_count = dblp.num_vertices
        assert ifecc.num_bfs < bound.num_bfs < naive_count

    def test_ifecc1_cheaper_than_ifecc16(self, dblp):
        one = compute_eccentricities(dblp, num_references=1)
        sixteen = compute_eccentricities(dblp, num_references=16)
        assert one.num_bfs <= sixteen.num_bfs

    def test_pllecc_pll_stage_dominates(self, dblp):
        report = pllecc_eccentricities(dblp, num_references=16)
        assert report.pll_seconds > report.ecc_seconds

    def test_kifecc_more_stable_than_kbfs(self, dblp, dblp_truth):
        # kIFECC accuracy is monotone in k; kBFS is not guaranteed to be.
        accs = [
            approximate_eccentricities(dblp, k=k).accuracy_against(
                dblp_truth
            )
            for k in (2, 8, 32)
        ]
        assert accs == sorted(accs)

    def test_kifecc_beats_kbfs_at_matched_budget(self, dblp, dblp_truth):
        # Averaged over seeds at a modest budget, kIFECC's FFO-guided
        # sampling beats uniform sampling.
        k = 16
        kifecc_acc = approximate_eccentricities(dblp, k=k).accuracy_against(
            dblp_truth
        )
        kbfs_accs = [
            kbfs_eccentricities(dblp, k=k, seed=s).accuracy_against(
                dblp_truth
            )
            for s in range(5)
        ]
        assert kifecc_acc >= np.mean(kbfs_accs)
