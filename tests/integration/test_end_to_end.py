"""End-to-end flows: file in, answers out, across the public API."""

import numpy as np
import pytest

import repro
from repro.analysis.distribution import distribution_from_eccentricities
from repro.baselines.snap_diameter import snap_estimate_diameter
from repro.datasets.loader import load_dataset
from repro.graph.generators import paper_example_graph
from repro.graph.io import read_edge_list, save_npz, load_npz, write_edge_list


class TestFileToAnswer:
    def test_edge_list_round_trip_to_ecc(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "g.txt"
        write_edge_list(graph, path, header="paper example")
        loaded = read_edge_list(path)
        result = repro.compute_eccentricities(loaded)
        assert result.radius == 3
        assert result.diameter == 5

    def test_npz_cache_flow(self, tmp_path):
        graph = load_dataset("DBLP")
        path = tmp_path / "dblp.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        a = repro.compute_eccentricities(graph)
        b = repro.compute_eccentricities(loaded)
        np.testing.assert_array_equal(a.eccentricities, b.eccentricities)


class TestTopLevelApi:
    def test_package_exports(self):
        assert callable(repro.compute_eccentricities)
        assert callable(repro.approximate_eccentricities)
        assert callable(repro.stratify)
        assert repro.__version__

    def test_quickstart_docstring_flow(self):
        graph = repro.generators.paper_example_graph()
        result = repro.compute_eccentricities(graph)
        assert (result.radius, result.diameter) == (3, 5)

    def test_distribution_flow(self):
        graph = load_dataset("HUDO")
        result = repro.compute_eccentricities(graph)
        dist = distribution_from_eccentricities(result.eccentricities)
        assert dist.radius == result.radius
        assert dist.diameter == result.diameter
        assert dist.num_vertices == graph.num_vertices
        # small-world: the diameter tail is thin (Exp-3)
        assert dist.diameter_vertex_fraction() < 0.05

    def test_snap_case_study_flow(self):
        graph = load_dataset("TPD")
        exact = repro.compute_eccentricities(graph)
        estimate = snap_estimate_diameter(graph, sample_size=20, seed=3)
        assert estimate.diameter <= exact.diameter
        assert 0 < estimate.accuracy_against(exact.diameter) <= 100.0

    def test_per_component_on_dataset_with_noise(self):
        from repro.graph.builder import GraphBuilder

        base = load_dataset("DBLP")
        builder = GraphBuilder()
        src = np.repeat(
            np.arange(base.num_vertices, dtype=np.int64), base.degrees
        )
        builder.add_edge_arrays(src, base.indices.astype(np.int64))
        # add a detached triangle
        n = base.num_vertices
        builder.add_edges([(n, n + 1), (n + 1, n + 2), (n, n + 2)])
        noisy = builder.build()
        result = repro.eccentricities_per_component(noisy)
        assert result.exact
        assert result.eccentricities[n] == 1
