"""Edge-case matrix: every exact algorithm x every tiny graph.

Small graphs are where off-by-one errors in bound logic hide (empty
territories, FFO orders of length 1, reference == only vertex...).
This module runs the full algorithm roster over a systematic set of
graphs with n = 1..6 and asserts unanimous agreement with the oracle.
"""

import numpy as np
import pytest

from repro.baselines.boundecc import boundecc_eccentricities
from repro.baselines.naive import naive_eccentricities
from repro.baselines.pllecc import pllecc_eccentricities
from repro.core.extremes import radius_and_diameter
from repro.core.ifecc import compute_eccentricities
from repro.core.stratify import exact_via_f1
from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.msbfs import msbfs_eccentricities

TINY_GRAPHS = {
    "single": Graph.from_edges([], num_vertices=1),
    "edge": path_graph(2),
    "path3": path_graph(3),
    "path4": path_graph(4),
    "triangle": complete_graph(3),
    "cycle4": cycle_graph(4),
    "cycle5": cycle_graph(5),
    "star4": star_graph(4),
    "k4": complete_graph(4),
    "paw": Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]),
    "bull": Graph.from_edges(
        [(0, 1), (1, 2), (0, 2), (1, 3), (2, 4)]
    ),
    "butterfly": Graph.from_edges(
        [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
    ),
    "k23": Graph.from_edges(
        [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]
    ),
    "diamond": Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]),
}


@pytest.fixture(params=sorted(TINY_GRAPHS), ids=sorted(TINY_GRAPHS))
def tiny(request):
    graph = TINY_GRAPHS[request.param]
    return graph, naive_eccentricities(graph).eccentricities


class TestTinyMatrix:
    def test_ifecc1(self, tiny):
        graph, truth = tiny
        np.testing.assert_array_equal(
            compute_eccentricities(graph).eccentricities, truth
        )

    def test_ifecc3(self, tiny):
        graph, truth = tiny
        np.testing.assert_array_equal(
            compute_eccentricities(graph, num_references=3).eccentricities,
            truth,
        )

    def test_boundecc(self, tiny):
        graph, truth = tiny
        np.testing.assert_array_equal(
            boundecc_eccentricities(graph).eccentricities, truth
        )

    def test_pllecc(self, tiny):
        graph, truth = tiny
        report = pllecc_eccentricities(graph, num_references=2)
        np.testing.assert_array_equal(
            report.result.eccentricities, truth
        )

    def test_f1_theorem(self, tiny):
        graph, truth = tiny
        np.testing.assert_array_equal(
            exact_via_f1(graph).eccentricities, truth
        )

    def test_msbfs(self, tiny):
        graph, truth = tiny
        np.testing.assert_array_equal(msbfs_eccentricities(graph), truth)

    def test_extremes(self, tiny):
        graph, truth = tiny
        result = radius_and_diameter(graph)
        assert result.radius == int(truth.min())
        assert result.diameter == int(truth.max())

    def test_weighted_unit_lift(self, tiny):
        from repro.weighted.eccentricity import weighted_eccentricities
        from repro.weighted.graph import WeightedGraph

        graph, truth = tiny
        result = weighted_eccentricities(
            WeightedGraph.from_unweighted(graph)
        )
        np.testing.assert_allclose(
            result.eccentricities, truth.astype(float)
        )

    def test_directed_lift(self, tiny):
        from repro.directed.eccentricity import directed_eccentricities
        from repro.directed.graph import DirectedGraph

        graph, truth = tiny
        result = directed_eccentricities(
            DirectedGraph.from_undirected(graph)
        )
        np.testing.assert_array_equal(result.eccentricities, truth)
