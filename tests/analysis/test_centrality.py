"""Unit tests for the centrality measures, cross-checked vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eccentricity_centrality,
)
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from helpers import random_connected_graph


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g


class TestDegreeCentrality:
    def test_star_hub(self):
        c = degree_centrality(star_graph(5))
        assert c[0] == 1.0
        assert np.allclose(c[1:], 0.25)

    def test_matches_networkx(self):
        g = random_connected_graph(40, 30, seed=1)
        ours = degree_centrality(g)
        theirs = nx.degree_centrality(to_networkx(g))
        np.testing.assert_allclose(
            ours, [theirs[v] for v in range(40)]
        )

    def test_single_vertex(self):
        assert degree_centrality(
            Graph.from_edges([], num_vertices=1)
        ).tolist() == [0.0]


class TestClosenessCentrality:
    def test_star_hub_highest(self):
        c = closeness_centrality(star_graph(6))
        assert c[0] == c.max()

    def test_matches_networkx(self):
        for seed in range(3):
            g = random_connected_graph(45, 35, seed)
            ours = closeness_centrality(g)
            theirs = nx.closeness_centrality(to_networkx(g))
            np.testing.assert_allclose(
                ours, [theirs[v] for v in range(45)], rtol=1e-10
            )

    def test_disconnected_correction(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        ours = closeness_centrality(g)
        theirs = nx.closeness_centrality(to_networkx(g))
        np.testing.assert_allclose(
            ours, [theirs[v] for v in range(5)], rtol=1e-10
        )

    def test_path_center_highest(self):
        c = closeness_centrality(path_graph(9))
        assert int(np.argmax(c)) == 4


class TestBetweennessCentrality:
    def test_path_center_highest(self):
        c = betweenness_centrality(path_graph(7))
        assert int(np.argmax(c)) == 3
        assert c[0] == 0.0

    def test_star_hub_is_one(self):
        c = betweenness_centrality(star_graph(6))
        assert c[0] == pytest.approx(1.0)
        assert np.allclose(c[1:], 0.0)

    def test_cycle_uniform(self):
        c = betweenness_centrality(cycle_graph(8))
        assert np.allclose(c, c[0])

    def test_matches_networkx(self):
        for seed in range(3):
            g = random_connected_graph(35, 30, seed)
            ours = betweenness_centrality(g)
            theirs = nx.betweenness_centrality(to_networkx(g))
            np.testing.assert_allclose(
                ours, [theirs[v] for v in range(35)], atol=1e-10
            )

    def test_unnormalized_matches_networkx(self):
        g = grid_graph(4, 4)
        ours = betweenness_centrality(g, normalized=False)
        theirs = nx.betweenness_centrality(to_networkx(g), normalized=False)
        np.testing.assert_allclose(
            ours, [theirs[v] for v in range(16)], atol=1e-10
        )


class TestEccentricityCentrality:
    def test_inverse(self):
        c = eccentricity_centrality(np.array([2, 4, 0]))
        np.testing.assert_allclose(c, [0.5, 0.25, 0.0])

    def test_center_highest(self, social_graph, social_truth):
        c = eccentricity_centrality(social_truth)
        assert int(np.argmax(c)) == int(np.argmin(social_truth))

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            eccentricity_centrality(np.array([-1]))


class TestCrossMeasure:
    def test_high_degree_near_eccentricity_center(
        self, social_graph, social_truth
    ):
        # Section 7.4's intuition: the highest-degree vertex is close to
        # the eccentricity center.
        hub = social_graph.max_degree_vertex()
        assert social_truth[hub] <= social_truth.min() + 2

    def test_rankings_correlate(self, social_graph, social_truth):
        # closeness and eccentricity centralities agree broadly (top-10%
        # overlap is substantial)
        closeness = closeness_centrality(social_graph)
        ecc_rank = set(
            np.argsort(social_truth)[: len(social_truth) // 10].tolist()
        )
        close_rank = set(
            np.argsort(-closeness)[: len(social_truth) // 10].tolist()
        )
        overlap = len(ecc_rank & close_rank) / max(1, len(ecc_rank))
        assert overlap > 0.2
