"""Unit tests for the one-call analysis report."""

import numpy as np
import pytest

from repro.analysis.report import analyze
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import paper_example_graph, star_graph


class TestAnalyze:
    def test_paper_example(self):
        report = analyze(paper_example_graph())
        assert report.radius == 3
        assert report.diameter == 5
        assert report.num_vertices == 13
        assert report.num_edges == 15

    def test_center_and_periphery(self, social_graph, social_truth):
        report = analyze(social_graph)
        assert np.all(social_truth[report.center_vertices] == report.radius)
        assert np.all(
            social_truth[report.peripheral_vertices] == report.diameter
        )

    def test_diameter_witness_length(self, social_graph):
        report = analyze(social_graph)
        assert len(report.diameter_witness) - 1 == report.diameter

    def test_with_closeness(self):
        report = analyze(star_graph(8), with_closeness=True)
        assert report.top_closeness is not None
        assert report.top_closeness[0][0] == 0  # hub leads

    def test_top_degree_sorted(self, web_graph):
        report = analyze(web_graph, top=4)
        values = [c for _v, c in report.top_degree]
        assert values == sorted(values, reverse=True)
        assert len(report.top_degree) == 4

    def test_f_sizes_consistent(self, social_graph):
        from repro.core.stratify import stratify

        report = analyze(social_graph)
        strat = stratify(social_graph)
        assert report.f1_size == len(strat.f1)
        assert report.f2_size == len(strat.f2)

    def test_single_vertex(self):
        report = analyze(Graph.from_edges([], num_vertices=1))
        assert report.radius == 0
        assert report.diameter == 0
        assert report.diameter_witness == [0]

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            analyze(Graph.from_edges([], num_vertices=0))


class TestRender:
    def test_render_sections(self, social_graph):
        text = analyze(social_graph, with_closeness=True).render()
        for needle in (
            "radius",
            "diameter",
            "center:",
            "eccentricity distribution:",
            "top-degree vertices:",
            "top-closeness vertices:",
            "|F1|",
        ):
            assert needle in text

    def test_render_without_closeness(self, web_graph):
        text = analyze(web_graph).render()
        assert "top-closeness" not in text

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "radius 3, diameter 5" in out
