"""Unit tests for accuracy metrics."""

import numpy as np
import pytest

from repro.analysis.accuracy import accuracy, evaluate_estimate
from repro.errors import InvalidParameterError


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 100.0

    def test_half(self):
        assert accuracy(np.array([1, 2]), np.array([1, 3])) == 50.0

    def test_none_correct(self):
        assert accuracy(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 100.0

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestEvaluateEstimate:
    def test_report_fields(self):
        report = evaluate_estimate(
            np.array([2, 3, 4]), np.array([2, 4, 4])
        )
        assert report.accuracy_percent == pytest.approx(200 / 3)
        assert report.mean_absolute_error == pytest.approx(1 / 3)
        assert report.max_absolute_error == 1
        assert 0 < report.max_relative_error < 1

    def test_band_fraction(self):
        # 3/6 = 0.5 is below 7/12, out of band; 6/6 in band.
        report = evaluate_estimate(np.array([3, 6]), np.array([6, 6]))
        assert report.within_theorem_band == 0.5

    def test_zero_truth_handled(self):
        report = evaluate_estimate(np.array([0]), np.array([0]))
        assert report.accuracy_percent == 100.0
        assert report.within_theorem_band == 1.0

    def test_str_rendering(self):
        text = str(evaluate_estimate(np.array([1]), np.array([1])))
        assert "accuracy=100.0%" in text

    def test_empty(self):
        report = evaluate_estimate(np.array([]), np.array([]))
        assert report.accuracy_percent == 100.0
