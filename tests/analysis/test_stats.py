"""Unit tests for the Figure 5 / Figure 12 statistics."""

import pytest

from repro.analysis.stats import (
    farthest_set_statistics,
    repetition_curve,
    repetition_ratio,
)
from repro.errors import InvalidParameterError
from repro.graph.generators import core_periphery, star_graph


class TestRepetitionRatio:
    def test_ratio_in_unit_interval(self, social_graph):
        point = repetition_ratio(social_graph, num=10, num_references=4)
        assert 0.0 <= point.ratio <= 1.0

    def test_common_subset_of_union(self, social_graph):
        point = repetition_ratio(social_graph, num=10, num_references=4)
        assert point.common <= point.union

    def test_high_overlap_behind_deep_trap(self):
        # The Figure 5 observation: FFO fronts of different references
        # share most nodes (>94.5% on the paper's graphs).  The driver
        # is a deep periphery region behind a cut vertex.
        from repro.graph.generators import attach_deep_trap, barabasi_albert

        g = attach_deep_trap(barabasi_albert(300, 3, seed=5), depth=18)
        point = repetition_ratio(g, num=10, num_references=4)
        assert point.ratio >= 0.9

    def test_star_fronts_identical(self):
        # On a star every reference sees the same far leaves.
        point = repetition_ratio(star_graph(20), num=5, num_references=2)
        assert point.ratio <= 1.0

    def test_num_validation(self, social_graph):
        with pytest.raises(InvalidParameterError):
            repetition_ratio(social_graph, num=0)


class TestRepetitionCurve:
    def test_default_xs(self, social_graph):
        points = repetition_curve(social_graph, num_references=4)
        assert [p.num for p in points] == [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]

    def test_custom_xs(self, social_graph):
        points = repetition_curve(social_graph, nums=(3, 6), num_references=2)
        assert [p.num for p in points] == [3, 6]

    def test_validation(self, social_graph):
        with pytest.raises(InvalidParameterError):
            repetition_curve(social_graph, nums=(0,))

    def test_matches_pointwise(self, social_graph):
        curve = repetition_curve(social_graph, nums=(7,), num_references=3)
        point = repetition_ratio(social_graph, num=7, num_references=3)
        assert curve[0].common == point.common
        assert curve[0].union == point.union


class TestFarthestSetStatistics:
    def test_fields(self, social_graph):
        stats = farthest_set_statistics(social_graph)
        assert stats.num_vertices == social_graph.num_vertices
        assert 0 <= stats.f2_size <= stats.f1_size <= stats.num_vertices

    def test_fractions(self, social_graph):
        stats = farthest_set_statistics(social_graph)
        assert stats.f1_fraction == stats.f1_size / stats.num_vertices
        assert stats.f2_fraction == stats.f2_size / stats.num_vertices

    def test_figure12_shape(self, social_graph):
        # |F1| ~ 0.1 n and |F2| << |F1| on small-world graphs.
        stats = farthest_set_statistics(social_graph)
        assert stats.f1_fraction < 0.5
        assert stats.f2_fraction < stats.f1_fraction

    def test_as_dict(self, social_graph):
        d = farthest_set_statistics(social_graph).as_dict()
        assert set(d) == {"n", "|F1|", "|F2|", "|F1|/n", "|F2|/n"}

    def test_explicit_reference(self, example_graph):
        stats = farthest_set_statistics(example_graph, reference=12)
        assert stats.f1_size == 6
        assert stats.f2_size == 2
