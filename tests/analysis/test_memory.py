"""Unit tests for the Figure 10 memory accounting."""

import pytest

from repro.analysis.memory import ifecc_footprint, pllecc_footprint
from repro.pll.index import build_pll_index


class TestFootprints:
    def test_ifecc_linear_in_graph(self, social_graph):
        fp = ifecc_footprint(social_graph)
        assert fp.index_bytes == 0
        assert fp.graph_bytes == social_graph.memory_bytes()
        assert fp.total_bytes < 10 * social_graph.memory_bytes()

    def test_pllecc_includes_index(self, social_graph):
        index = build_pll_index(social_graph)
        fp = pllecc_footprint(social_graph, index)
        assert fp.index_bytes == index.size_bytes()
        assert fp.total_bytes > fp.graph_bytes

    def test_pllecc_larger_than_ifecc(self, social_graph):
        # Figure 10's headline: PLLECC needs far more memory.
        index = build_pll_index(social_graph)
        ratio = pllecc_footprint(social_graph, index).ratio_to(
            ifecc_footprint(social_graph)
        )
        assert ratio > 1.0

    def test_more_references_more_working_memory(self, social_graph):
        one = ifecc_footprint(social_graph, num_references=1)
        sixteen = ifecc_footprint(social_graph, num_references=16)
        assert sixteen.working_bytes > one.working_bytes

    def test_str(self, social_graph):
        assert "MiB" in str(ifecc_footprint(social_graph))
