"""Unit tests for anytime-convergence tracking."""

import numpy as np
import pytest

from repro.analysis.convergence import ConvergenceCurve, track_convergence
from repro.errors import InvalidParameterError


class TestTrajectory:
    def test_runs_to_exact(self, social_graph, social_truth):
        curve = track_convergence(social_graph, truth=social_truth)
        assert curve.final.resolved_fraction == 1.0
        assert curve.final.accuracy_percent == 100.0
        assert curve.final.total_gap == 0

    def test_monotone(self, social_graph, social_truth):
        curve = track_convergence(social_graph, truth=social_truth)
        assert curve.is_monotone()

    def test_budget_truncates(self, social_graph):
        curve = track_convergence(social_graph, max_bfs=3)
        assert curve.final.bfs_runs <= 3
        assert len(curve) <= 3

    def test_no_truth_no_accuracy(self, web_graph):
        curve = track_convergence(web_graph, max_bfs=4)
        assert all(p.accuracy_percent is None for p in curve.points)

    def test_length_matches_bfs(self, web_graph):
        curve = track_convergence(web_graph)
        assert len(curve) == curve.final.bfs_runs

    def test_gap_shrinks(self, lattice_graph):
        curve = track_convergence(lattice_graph)
        gaps = [p.total_gap for p in curve.points]
        assert gaps[0] >= gaps[-1]
        assert gaps[-1] == 0


class TestQueries:
    def test_bfs_to_fraction(self, social_graph):
        curve = track_convergence(social_graph)
        half = curve.bfs_to_fraction(0.5)
        full = curve.bfs_to_fraction(1.0)
        assert half is not None and full is not None
        assert half <= full

    def test_bfs_to_accuracy(self, social_graph, social_truth):
        curve = track_convergence(social_graph, truth=social_truth)
        assert curve.bfs_to_accuracy(90.0) <= curve.bfs_to_accuracy(100.0)

    def test_unreached_fraction_none(self, social_graph):
        curve = track_convergence(social_graph, max_bfs=1)
        assert curve.bfs_to_fraction(1.0) is None

    def test_as_rows(self, web_graph, web_truth):
        curve = track_convergence(web_graph, truth=web_truth, max_bfs=3)
        rows = curve.as_rows()
        assert len(rows) == len(curve)
        bfs, resolved, accuracy, gap = rows[0]
        assert bfs >= 1 and 0 <= resolved <= 100

    def test_empty_curve_final_raises(self):
        with pytest.raises(InvalidParameterError):
            ConvergenceCurve().final
