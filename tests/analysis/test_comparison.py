"""Unit tests for the algorithm-comparison harness."""

import pytest

from repro.analysis.comparison import compare_algorithms
from repro.errors import InvalidParameterError


class TestCompareAlgorithms:
    def test_all_finish_on_small_graph(self, example_graph):
        table = compare_algorithms(example_graph, include_naive=True)
        names = [row.name for row in table.rows]
        assert names == [
            "IFECC-1", "IFECC-16", "BoundECC", "PLLECC", "Naive",
        ]
        assert all(row.finished for row in table.rows)

    def test_consensus_radius_diameter(self, example_graph):
        table = compare_algorithms(example_graph)
        for row in table.rows:
            if row.finished:
                assert row.radius == 3
                assert row.diameter == 5

    def test_pllecc_budget_dnf(self, social_graph):
        table = compare_algorithms(social_graph, pllecc_budget=1e-4)
        assert not table.row("PLLECC").finished

    def test_boundecc_budget_dnf(self, social_graph):
        table = compare_algorithms(social_graph, boundecc_max_bfs=1)
        assert not table.row("BoundECC").finished

    def test_fastest(self, example_graph):
        table = compare_algorithms(example_graph)
        assert table.fastest().finished

    def test_unknown_row(self, example_graph):
        table = compare_algorithms(example_graph)
        with pytest.raises(InvalidParameterError):
            table.row("Mystery")

    def test_render_table(self, example_graph):
        text = compare_algorithms(example_graph).render()
        assert "IFECC-1" in text and "n=13" in text

    def test_render_marks_dnf(self, social_graph):
        text = compare_algorithms(
            social_graph, pllecc_budget=1e-4
        ).render()
        assert "DNF" in text
