"""Unit tests for eccentricity-distribution analytics (Figure 15)."""

import numpy as np
import pytest

from repro.analysis.distribution import distribution_from_eccentricities
from repro.errors import InvalidParameterError


class TestHistogram:
    def test_basic(self):
        dist = distribution_from_eccentricities(np.array([3, 3, 4, 5, 5, 5]))
        assert dist.values.tolist() == [3, 4, 5]
        assert dist.counts.tolist() == [2, 1, 3]

    def test_radius_diameter(self):
        dist = distribution_from_eccentricities(np.array([2, 4, 3]))
        assert dist.radius == 2
        assert dist.diameter == 4

    def test_counts_sum_to_n(self, social_truth):
        dist = distribution_from_eccentricities(social_truth)
        assert dist.num_vertices == len(social_truth)

    def test_diameter_tail(self):
        dist = distribution_from_eccentricities(np.array([1, 1, 1, 9]))
        assert dist.diameter_vertex_count() == 1
        assert dist.diameter_vertex_fraction() == 0.25

    def test_center_count(self):
        dist = distribution_from_eccentricities(np.array([2, 2, 3]))
        assert dist.center_vertex_count() == 2

    def test_mean(self):
        dist = distribution_from_eccentricities(np.array([2, 4]))
        assert dist.mean() == 3.0

    def test_as_series_and_dict(self):
        dist = distribution_from_eccentricities(np.array([1, 2, 2]))
        assert dist.as_series() == [(1, 1), (2, 2)]
        assert dist.as_dict() == {1: 1, 2: 2}

    def test_ascii_plot(self):
        dist = distribution_from_eccentricities(np.array([1, 2, 2]))
        plot = dist.ascii_plot(width=10)
        assert "ecc=  1" in plot and "#" in plot

    def test_empty(self):
        dist = distribution_from_eccentricities(np.array([], dtype=np.int32))
        assert dist.num_vertices == 0
        assert dist.ascii_plot() == "(empty)"
        assert dist.mean() == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            distribution_from_eccentricities(np.array([[1, 2]]))
        with pytest.raises(InvalidParameterError):
            distribution_from_eccentricities(np.array([-1]))

    def test_diameter_tail_is_thin_on_small_world(self, social_truth):
        # The Exp-3 observation that motivates replacing SNAP sampling.
        dist = distribution_from_eccentricities(social_truth)
        assert dist.diameter_vertex_fraction() < 0.1
