"""Unit tests for connected-component utilities."""

import numpy as np
import pytest

from repro.graph.components import (
    connected_components,
    is_connected,
    largest_connected_component,
    split_components,
)
from repro.graph.csr import Graph
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.properties import exact_eccentricities


def two_components() -> Graph:
    # component A: path 0-1-2; component B: triangle 3-4-5.
    return Graph.from_edges([(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)])


class TestLabelling:
    def test_connected_graph_single_label(self):
        labelling = connected_components(cycle_graph(5))
        assert labelling.num_components == 1
        assert labelling.sizes.tolist() == [5]

    def test_two_components(self):
        labelling = connected_components(two_components())
        assert labelling.num_components == 2
        assert sorted(labelling.sizes.tolist()) == [3, 3]

    def test_labels_partition(self):
        labelling = connected_components(two_components())
        assert labelling.labels[0] == labelling.labels[1] == labelling.labels[2]
        assert labelling.labels[3] == labelling.labels[4] == labelling.labels[5]
        assert labelling.labels[0] != labelling.labels[3]

    def test_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        labelling = connected_components(g)
        assert labelling.num_components == 3

    def test_largest_id(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        labelling = connected_components(g)
        assert labelling.sizes[labelling.largest()] == 3


class TestIsConnected:
    def test_connected(self):
        assert is_connected(path_graph(4))

    def test_disconnected(self):
        assert not is_connected(two_components())

    def test_single_vertex(self):
        assert is_connected(Graph.from_edges([], num_vertices=1))

    def test_empty(self):
        assert is_connected(Graph.from_edges([], num_vertices=0))


class TestLargestComponent:
    def test_extracts_largest(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4), (2, 4)])
        sub, ids = largest_connected_component(g)
        assert sub.num_vertices == 3
        assert sorted(ids.tolist()) == [2, 3, 4]

    def test_subgraph_edges_preserved(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4), (2, 4)])
        sub, ids = largest_connected_component(g)
        # the triangle structure survives the remap
        assert sub.num_edges == 3
        assert all(sub.degree(v) == 2 for v in range(3))

    def test_already_connected_identity_shape(self):
        g = cycle_graph(6)
        sub, ids = largest_connected_component(g)
        assert sub == g
        assert ids.tolist() == list(range(6))

    def test_eccentricities_preserved_under_remap(self):
        g = Graph.from_edges([(5, 6), (6, 7), (0, 1)])
        sub, ids = largest_connected_component(g)
        ecc = exact_eccentricities(sub)
        assert sorted(ecc.tolist()) == [1, 2, 2]


class TestSplitComponents:
    def test_split_count(self):
        parts = split_components(two_components())
        assert len(parts) == 2

    def test_largest_first(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        parts = split_components(g)
        assert parts[0][0].num_vertices == 3
        assert parts[1][0].num_vertices == 2

    def test_ids_cover_all_vertices(self):
        parts = split_components(two_components())
        seen = np.concatenate([ids for _g, ids in parts])
        assert sorted(seen.tolist()) == list(range(6))

    def test_each_part_connected(self):
        parts = split_components(two_components())
        assert all(is_connected(g) for g, _ids in parts)


class TestInducedSubgraph:
    def test_basic(self):
        from repro.graph.components import induced_subgraph

        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub, ids = induced_subgraph(g, [0, 1, 2])
        assert ids.tolist() == [0, 1, 2]
        assert sub.num_edges == 2  # 0-1, 1-2 survive; 2-3, 3-0 dropped

    def test_dedup_and_sort(self):
        from repro.graph.components import induced_subgraph

        g = cycle_graph(6)
        sub, ids = induced_subgraph(g, [4, 2, 4, 0])
        assert ids.tolist() == [0, 2, 4]

    def test_preserves_internal_structure(self):
        from repro.graph.components import induced_subgraph
        from repro.graph.generators import complete_graph

        g = complete_graph(6)
        sub, _ids = induced_subgraph(g, [1, 3, 5])
        assert sub.num_edges == 3  # the triangle survives

    def test_empty_subset(self):
        from repro.graph.components import induced_subgraph

        sub, ids = induced_subgraph(cycle_graph(4), [])
        assert sub.num_vertices == 0
        assert len(ids) == 0

    def test_out_of_range_rejected(self):
        from repro.errors import InvalidVertexError
        from repro.graph.components import induced_subgraph

        with pytest.raises(InvalidVertexError):
            induced_subgraph(cycle_graph(4), [0, 9])

    def test_distances_preserved_on_closed_subset(self):
        from repro.graph.components import induced_subgraph
        from repro.graph.traversal import bfs_distances

        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)])
        sub, ids = induced_subgraph(g, [0, 1, 2])
        np.testing.assert_array_equal(
            bfs_distances(sub, 0), bfs_distances(g, 0)[ids]
        )
