"""Unit tests for the BFS engine, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.errors import InvalidVertexError
from repro.graph.csr import Graph
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.traversal import (
    UNREACHED,
    TraversalCounter,
    bfs_distances,
    bfs_distances_bounded,
    eccentricity,
    eccentricity_and_distances,
    multi_source_bfs,
)

from helpers import random_connected_graph


def scipy_distances(graph: Graph, source: int) -> np.ndarray:
    matrix = sp.csr_matrix(
        (
            np.ones(len(graph.indices), dtype=np.int8),
            graph.indices,
            graph.indptr,
        ),
        shape=(graph.num_vertices, graph.num_vertices),
    )
    dist = csgraph.shortest_path(
        matrix, method="D", unweighted=True, indices=source
    )
    out = np.where(np.isinf(dist), -1, dist).astype(np.int32)
    return out


class TestBFSDistances:
    def test_path_graph(self):
        g = path_graph(6)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4, 5]

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 2, 1]

    def test_star_center_and_leaf(self):
        g = star_graph(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 1, 1, 1]
        leaf = bfs_distances(g, 1)
        assert leaf[0] == 1 and all(leaf[i] == 2 for i in range(2, 5))

    def test_unreachable_marked(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        dist = bfs_distances(g, 0)
        assert dist[2] == UNREACHED

    def test_source_distance_zero(self):
        g = grid_graph(3, 3)
        for s in range(9):
            assert bfs_distances(g, s)[s] == 0

    def test_matches_scipy_on_random_graphs(self):
        for seed in range(5):
            g = random_connected_graph(60, 40, seed)
            for source in (0, 17, 59):
                np.testing.assert_array_equal(
                    bfs_distances(g, source), scipy_distances(g, source)
                )

    def test_invalid_source(self):
        with pytest.raises(InvalidVertexError):
            bfs_distances(path_graph(3), 3)

    def test_single_vertex(self):
        g = Graph.from_edges([], num_vertices=1)
        assert bfs_distances(g, 0).tolist() == [0]


class TestBoundedBFS:
    def test_limit_truncates(self):
        g = path_graph(10)
        dist = bfs_distances_bounded(g, 0, limit=3)
        assert dist[3] == 3
        assert dist[4] == UNREACHED

    def test_limit_zero_only_source(self):
        g = path_graph(4)
        dist = bfs_distances_bounded(g, 1, limit=0)
        assert dist.tolist() == [-1, 0, -1, -1]

    def test_no_limit_full(self):
        g = grid_graph(4, 4)
        np.testing.assert_array_equal(
            bfs_distances_bounded(g, 5, limit=None), bfs_distances(g, 5)
        )


class TestEccentricity:
    def test_path_ends(self):
        g = path_graph(7)
        assert eccentricity(g, 0) == 6
        assert eccentricity(g, 3) == 3

    def test_cycle_uniform(self):
        g = cycle_graph(8)
        assert all(eccentricity(g, v) == 4 for v in range(8))

    def test_returns_distances_too(self):
        g = star_graph(4)
        ecc, dist = eccentricity_and_distances(g, 0)
        assert ecc == 1
        assert dist.tolist() == [0, 1, 1, 1]

    def test_within_component_only(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert eccentricity(g, 0) == 1


class TestMultiSourceBFS:
    def test_single_source_matches_bfs(self):
        g = grid_graph(4, 4)
        dist, owner = multi_source_bfs(g, [5])
        np.testing.assert_array_equal(dist, bfs_distances(g, 5))
        assert np.all(owner == 5)

    def test_nearest_source_distance(self):
        g = path_graph(10)
        dist, owner = multi_source_bfs(g, [0, 9])
        expected = [min(v, 9 - v) for v in range(10)]
        assert dist.tolist() == expected

    def test_owner_assignment(self):
        g = path_graph(10)
        _dist, owner = multi_source_bfs(g, [0, 9])
        assert owner[1] == 0
        assert owner[8] == 9

    def test_tie_goes_to_earlier_source(self):
        g = path_graph(5)
        _dist, owner = multi_source_bfs(g, [0, 4])
        assert owner[2] == 0  # equidistant, first source wins
        _dist, owner = multi_source_bfs(g, [4, 0])
        assert owner[2] == 4

    def test_empty_sources(self):
        g = path_graph(3)
        dist, owner = multi_source_bfs(g, [])
        assert np.all(dist == UNREACHED)
        assert np.all(owner == -1)

    def test_invalid_source(self):
        with pytest.raises(InvalidVertexError):
            multi_source_bfs(path_graph(3), [0, 7])

    def test_matches_min_over_singles(self):
        g = random_connected_graph(50, 30, seed=3)
        sources = [0, 10, 20]
        dist, _owner = multi_source_bfs(g, sources)
        singles = np.stack([bfs_distances(g, s) for s in sources])
        np.testing.assert_array_equal(dist, singles.min(axis=0))


class TestTraversalCounter:
    def test_counts_runs(self):
        g = path_graph(5)
        counter = TraversalCounter()
        bfs_distances(g, 0, counter=counter)
        bfs_distances(g, 1, counter=counter)
        assert counter.bfs_runs == 2

    def test_counts_vertices(self):
        g = path_graph(5)
        counter = TraversalCounter()
        bfs_distances(g, 0, counter=counter)
        assert counter.vertices_visited == 5

    def test_merge(self):
        a, b = TraversalCounter(), TraversalCounter()
        bfs_distances(path_graph(3), 0, counter=a)
        bfs_distances(path_graph(3), 0, counter=b)
        a.merge(b)
        assert a.bfs_runs == 2

    def test_history_labels(self):
        counter = TraversalCounter()
        bfs_distances(path_graph(3), 2, counter=counter)
        assert counter.history == ["bfs:2"]


class TestBFSCounterDeprecation:
    """The old meter name survives as a warning-emitting alias."""

    def test_counters_alias_warns_and_resolves(self):
        import repro.counters as counters

        with pytest.warns(DeprecationWarning, match="TraversalCounter"):
            alias = counters.BFSCounter
        assert alias is TraversalCounter

    def test_graph_traversal_forwarder_warns(self):
        import repro.graph.traversal as traversal

        with pytest.warns(DeprecationWarning):
            alias = traversal.BFSCounter
        assert alias is TraversalCounter

    def test_graph_package_forwarder_warns(self):
        import repro.graph as graph_pkg

        with pytest.warns(DeprecationWarning):
            alias = graph_pkg.BFSCounter
        assert alias is TraversalCounter

    def test_new_name_is_silent(self, recwarn):
        counter = TraversalCounter()
        counter.record(edges=1, vertices=1)
        deprecations = [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
        assert deprecations == []

    def test_unknown_attribute_still_raises(self):
        import repro.counters as counters

        with pytest.raises(AttributeError):
            counters.NoSuchMeter


class TestAllPairs:
    def test_yields_every_vertex(self):
        from repro.graph.traversal import all_pairs_distances

        g = grid_graph(3, 3)
        rows = dict(all_pairs_distances(g))
        assert sorted(rows) == list(range(9))
        for v, dist in rows.items():
            np.testing.assert_array_equal(dist, bfs_distances(g, v))

    def test_counter_counts_n_runs(self):
        from repro.graph.traversal import all_pairs_distances

        g = path_graph(6)
        counter = TraversalCounter()
        list(all_pairs_distances(g, counter=counter))
        assert counter.bfs_runs == 6

    def test_lazy_generator(self):
        from repro.graph.traversal import all_pairs_distances

        g = path_graph(50)
        gen = all_pairs_distances(g)
        v, dist = next(gen)
        assert v == 0
        assert dist[49] == 49


class TestBoundedValidation:
    def test_negative_limit_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            bfs_distances_bounded(path_graph(4), 0, limit=-1)
