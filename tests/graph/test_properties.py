"""Unit tests for whole-graph property helpers."""

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError
from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.properties import (
    degree_statistics,
    exact_eccentricities,
    radius_and_diameter,
    summarize,
)


class TestExactEccentricities:
    def test_path(self):
        ecc = exact_eccentricities(path_graph(5))
        assert ecc.tolist() == [4, 3, 2, 3, 4]

    def test_cycle_uniform(self):
        ecc = exact_eccentricities(cycle_graph(9))
        assert np.all(ecc == 4)

    def test_star(self):
        ecc = exact_eccentricities(star_graph(5))
        assert ecc.tolist() == [1, 2, 2, 2, 2]

    def test_complete(self):
        assert np.all(exact_eccentricities(complete_graph(4)) == 1)

    def test_disconnected_raises(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            exact_eccentricities(g)

    def test_disconnected_per_component(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        ecc = exact_eccentricities(g, require_connected=False)
        assert ecc.tolist() == [1, 1, 2, 1, 2]


class TestRadiusDiameter:
    def test_path(self):
        ecc = exact_eccentricities(path_graph(7))
        assert radius_and_diameter(ecc) == (3, 6)

    def test_empty(self):
        assert radius_and_diameter(np.empty(0, dtype=np.int32)) == (0, 0)

    def test_radius_diameter_inequality(self):
        # diameter <= 2 * radius in any connected graph
        for n in (4, 7, 10):
            ecc = exact_eccentricities(path_graph(n))
            r, d = radius_and_diameter(ecc)
            assert r <= d <= 2 * r


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize(star_graph(6))
        assert summary.num_vertices == 6
        assert summary.num_edges == 5
        assert summary.radius == 1
        assert summary.diameter == 2
        assert summary.max_degree == 5
        assert summary.num_components == 1

    def test_summary_with_precomputed_ecc(self):
        g = path_graph(4)
        ecc = exact_eccentricities(g)
        summary = summarize(g, eccentricities=ecc)
        assert summary.diameter == 3

    def test_as_row_contains_stats(self):
        row = summarize(path_graph(4)).as_row("TOY")
        assert "TOY" in row and "r=2" in row and "d=3" in row


class TestDegreeStatistics:
    def test_star(self):
        stats = degree_statistics(star_graph(5))
        assert stats["max"] == 4
        assert stats["min"] == 1

    def test_empty(self):
        g = Graph.from_edges([], num_vertices=0)
        assert degree_statistics(g)["max"] == 0
