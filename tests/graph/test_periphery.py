"""Unit tests for the periphery constructions (handles, traps, branches)
that the dataset stand-ins are built from."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.components import is_connected
from repro.graph.generators import (
    attach_branches,
    attach_deep_trap,
    attach_handles,
    barabasi_albert,
    complete_graph,
)
from repro.graph.properties import exact_eccentricities
from repro.graph.traversal import bfs_distances


@pytest.fixture(scope="module")
def core():
    return barabasi_albert(150, 3, seed=2)


class TestAttachHandles:
    def test_connected(self, core):
        assert is_connected(attach_handles(core, 6, 10, seed=1))

    def test_adds_path_vertices(self, core):
        g = attach_handles(core, 4, 10, seed=1)
        added = g.num_vertices - core.num_vertices
        assert added >= 4 * 5  # at least the shortest jittered lengths

    def test_handle_interior_degree_two(self, core):
        g = attach_handles(core, 5, 8, seed=1)
        interior = g.degrees[core.num_vertices:]
        assert np.all(interior == 2)  # pure path vertices

    def test_no_cut_vertex_witnesses(self, core):
        # removing any single handle vertex keeps the graph connected
        # (handles are cycles through the core) — spot-check by
        # verifying each handle endpoint pair is 2-connected via the
        # handle: the handle interior reaches the core both ways.
        g = attach_handles(core, 3, 9, seed=1)
        interior_start = core.num_vertices
        dist = bfs_distances(g, interior_start)
        assert np.all(dist[: core.num_vertices] >= 1)

    def test_stretches_diameter(self, core):
        base_dia = int(exact_eccentricities(core).max())
        g = attach_handles(core, 5, 16, seed=1)
        assert int(exact_eccentricities(g).max()) > base_dia

    def test_validation(self, core):
        with pytest.raises(InvalidParameterError):
            attach_handles(core, -1, 10)
        with pytest.raises(InvalidParameterError):
            attach_handles(core, 2, 2)  # max_length < 3
        with pytest.raises(InvalidParameterError):
            attach_handles(complete_graph(4), 3, 10)  # too many handles

    def test_zero_handles_identity(self, core):
        assert attach_handles(core, 0, 10, seed=1) == core


class TestAttachDeepTrap:
    def test_connected(self, core):
        assert is_connected(attach_deep_trap(core, 12))

    def test_trap_sets_diameter(self, core):
        g = attach_deep_trap(core, depth=20, branch_length=3)
        ecc = exact_eccentricities(g)
        base_dia = int(exact_eccentricities(core).max())
        assert int(ecc.max()) >= 20  # the spine dominates

    def test_spine_depth(self, core):
        g = attach_deep_trap(core, depth=15, branch_length=0)
        # exactly 15 new vertices, forming a path
        assert g.num_vertices == core.num_vertices + 15
        tip = g.num_vertices - 1
        assert g.degree(tip) == 1

    def test_side_branches_on_lower_half(self, core):
        with_branches = attach_deep_trap(core, depth=10, branch_length=2)
        without = attach_deep_trap(core, depth=10, branch_length=0)
        extra = with_branches.num_vertices - without.num_vertices
        assert extra == (10 - 10 // 2) * 2

    def test_explicit_anchor(self, core):
        g = attach_deep_trap(core, depth=5, anchor=0)
        assert g.degree(0) == core.degree(0) + 1

    def test_validation(self, core):
        with pytest.raises(InvalidParameterError):
            attach_deep_trap(core, depth=0)
        with pytest.raises(InvalidParameterError):
            attach_deep_trap(core, depth=3, branch_length=-1)


class TestAttachBranches:
    def test_connected(self, core):
        assert is_connected(attach_branches(core, 10, 6, seed=3))

    def test_branch_count(self, core):
        g = attach_branches(core, 8, 5, seed=3)
        # each branch adds 3..5 vertices
        added = g.num_vertices - core.num_vertices
        assert 8 * 3 <= added <= 8 * 5

    def test_distinct_anchors(self, core):
        g = attach_branches(core, 12, 4, seed=3)
        # the 12 anchors each gained exactly one incident branch edge
        gained = g.degrees[: core.num_vertices] - core.degrees
        assert int(gained.sum()) == 12
        assert int(gained.max()) == 1

    def test_anchor_pool_restriction(self, core):
        trapped = attach_deep_trap(core, depth=8)
        g = attach_branches(
            trapped, 5, 4, seed=3, max_anchor_id=core.num_vertices
        )
        # no branch may hang off a trap vertex
        gained = (
            g.degrees[core.num_vertices: trapped.num_vertices]
            - trapped.degrees[core.num_vertices:]
        )
        assert int(gained.sum()) == 0

    def test_seeded(self, core):
        assert attach_branches(core, 5, 6, seed=4) == attach_branches(
            core, 5, 6, seed=4
        )

    def test_validation(self, core):
        with pytest.raises(InvalidParameterError):
            attach_branches(core, -1, 5)
        with pytest.raises(InvalidParameterError):
            attach_branches(core, 3, 2)
        with pytest.raises(InvalidParameterError):
            attach_branches(core, 4, 5, max_anchor_id=3)
