"""Unit tests for edge-list and npz graph I/O."""

import io

import pytest

from repro.errors import GraphConstructionError
from repro.graph.csr import Graph
from repro.graph.generators import grid_graph
from repro.graph.io import (
    load_npz,
    parse_edge_lines,
    read_edge_list,
    save_npz,
    write_edge_list,
)


class TestParseEdgeLines:
    def test_basic(self):
        assert list(parse_edge_lines(["0 1", "1 2"])) == [(0, 1), (1, 2)]

    def test_comments_skipped(self):
        lines = ["# snap header", "% konect", "// other", "0 1"]
        assert list(parse_edge_lines(lines)) == [(0, 1)]

    def test_blank_lines_skipped(self):
        assert list(parse_edge_lines(["", "  ", "0 1"])) == [(0, 1)]

    def test_tabs_and_commas(self):
        assert list(parse_edge_lines(["0\t1", "2,3"])) == [(0, 1), (2, 3)]

    def test_extra_columns_ignored(self):
        assert list(parse_edge_lines(["0 1 42 2019"])) == [(0, 1)]

    def test_single_column_rejected(self):
        with pytest.raises(GraphConstructionError):
            list(parse_edge_lines(["7"]))

    def test_non_integer_rejected(self):
        with pytest.raises(GraphConstructionError):
            list(parse_edge_lines(["a b"]))


class TestEdgeListRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = grid_graph(3, 4)
        path = tmp_path / "grid.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_header_written_as_comment(self, tmp_path):
        g = Graph.from_edges([(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, header="generated\nby test")
        text = path.read_text()
        assert text.startswith("# generated\n# by test\n")
        assert read_edge_list(path) == g

    def test_read_from_handle(self):
        handle = io.StringIO("0 1\n1 2\n")
        g = read_edge_list(handle)
        assert g.num_edges == 2

    def test_fixed_num_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_vertices=5)
        assert g.num_vertices == 5


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path):
        g = grid_graph(4, 4)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_bad_archive_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphConstructionError):
            load_npz(path)


class TestNpzHardening:
    """load_npz validates the archive instead of trusting it."""

    def _write(self, tmp_path, indptr, indices):
        import numpy as np

        path = tmp_path / "g.npz"
        np.savez(path, indptr=np.asarray(indptr), indices=np.asarray(indices))
        return path

    def test_float_dtype_rejected(self, tmp_path):
        path = self._write(tmp_path, [0.0, 1.0, 2.0], [1, 0])
        with pytest.raises(GraphConstructionError, match="dtype"):
            load_npz(path)

    def test_non_monotone_indptr_rejected(self, tmp_path):
        path = self._write(tmp_path, [0, 2, 1, 2], [1, 0])
        with pytest.raises(GraphConstructionError, match="monoton"):
            load_npz(path)

    def test_indptr_must_start_at_zero(self, tmp_path):
        path = self._write(tmp_path, [1, 2, 3], [1, 0])
        with pytest.raises(GraphConstructionError, match="indptr"):
            load_npz(path)

    def test_indptr_end_must_match_indices_length(self, tmp_path):
        path = self._write(tmp_path, [0, 1, 5], [1, 0])
        with pytest.raises(GraphConstructionError, match="indices"):
            load_npz(path)

    def test_out_of_range_indices_rejected(self, tmp_path):
        path = self._write(tmp_path, [0, 1, 2], [1, 7])
        with pytest.raises(GraphConstructionError, match="range"):
            load_npz(path)

    def test_negative_indices_rejected(self, tmp_path):
        path = self._write(tmp_path, [0, 1, 2], [1, -1])
        with pytest.raises(GraphConstructionError, match="range"):
            load_npz(path)

    def test_two_dimensional_arrays_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "g.npz"
        np.savez(
            path,
            indptr=np.zeros((2, 2), dtype=np.int64),
            indices=np.zeros(0, dtype=np.int32),
        )
        with pytest.raises(GraphConstructionError, match="one-dimensional"):
            load_npz(path)

    def test_error_message_names_the_file(self, tmp_path):
        path = self._write(tmp_path, [0, 2, 1, 2], [1, 0])
        with pytest.raises(GraphConstructionError, match=path.name):
            load_npz(path)


class TestMetis:
    def test_round_trip(self, tmp_path):
        from repro.graph.io import read_metis, write_metis

        g = grid_graph(4, 3)
        path = tmp_path / "g.metis"
        write_metis(g, path, comment="grid 4x3")
        assert read_metis(path) == g

    def test_header_and_ids_one_based(self, tmp_path):
        from repro.graph.io import write_metis

        g = Graph.from_edges([(0, 1), (1, 2)])
        path = tmp_path / "g.metis"
        write_metis(g, path)
        lines = [
            l for l in path.read_text().splitlines() if not l.startswith("%")
        ]
        assert lines[0] == "3 2"
        assert lines[1] == "2"        # neighbors of vertex 1: vertex 2
        assert lines[2] == "1 3"

    def test_comments_skipped(self, tmp_path):
        from repro.graph.io import read_metis

        path = tmp_path / "g.metis"
        path.write_text("% a comment\n3 2\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_isolated_tail_vertices(self, tmp_path):
        from repro.graph.io import read_metis

        path = tmp_path / "g.metis"
        path.write_text("4 1\n2\n1\n\n\n")
        g = read_metis(path)
        assert g.num_vertices == 4
        assert g.degree(3) == 0

    def test_bad_header(self, tmp_path):
        from repro.graph.io import read_metis

        path = tmp_path / "bad.metis"
        path.write_text("3\n")
        with pytest.raises(GraphConstructionError):
            read_metis(path)

    def test_weighted_format_rejected(self, tmp_path):
        from repro.graph.io import read_metis

        path = tmp_path / "w.metis"
        path.write_text("2 1 011\n2 5\n1 5\n")
        with pytest.raises(GraphConstructionError):
            read_metis(path)

    def test_edge_count_mismatch(self, tmp_path):
        from repro.graph.io import read_metis

        path = tmp_path / "m.metis"
        path.write_text("3 5\n2\n1 3\n2\n")
        with pytest.raises(GraphConstructionError):
            read_metis(path)

    def test_empty_file(self, tmp_path):
        from repro.graph.io import read_metis

        path = tmp_path / "e.metis"
        path.write_text("")
        with pytest.raises(GraphConstructionError):
            read_metis(path)
