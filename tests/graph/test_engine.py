"""Property-based equivalence suite for the direction-optimizing engine.

The engine must change *speed only, never answers*: hybrid (and both
forced directions) must agree bit-for-bit with the seed level-synchronous
kernel on every graph, under depth truncation, and across pooled-buffer
reuse.  The seed kernel is reproduced verbatim here as the oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, InvalidVertexError
from repro.graph.csr import Graph
from repro.graph.engine import BFSEngine, engine_for
from repro.graph.generators import (
    barabasi_albert,
    paper_example_graph,
    path_graph,
    star_graph,
)
from repro.graph.traversal import (
    UNREACHED,
    TraversalCounter,
    bfs_distances,
    bfs_distances_bounded,
    multi_source_bfs,
)

from helpers import random_connected_graph

MODES = ("hybrid", "top-down", "bottom-up")


# ----------------------------------------------------------------------
# Seed-kernel oracles (faithful copies of the pre-engine implementations)
# ----------------------------------------------------------------------
def seed_bfs_distances(graph, source, limit=None):
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(graph.num_vertices, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        if limit is not None and level >= limit:
            break
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        csum = np.cumsum(counts)
        offsets = np.repeat(starts - (csum - counts), counts)
        neighbors = indices[np.arange(total, dtype=np.int64) + offsets]
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    return dist


def seed_multi_source_bfs(graph, sources):
    n = graph.num_vertices
    src = np.asarray(list(sources), dtype=np.int64)
    if len(src) == 0:
        return (
            np.full(n, UNREACHED, dtype=np.int32),
            np.full(n, -1, dtype=np.int32),
        )
    dist = np.full(n, UNREACHED, dtype=np.int32)
    owner = np.full(n, -1, dtype=np.int32)
    priority = np.full(n, n, dtype=np.int64)
    for pos, s in enumerate(src):
        if priority[s] == n:
            priority[s] = pos
            dist[s] = 0
            owner[s] = s
    frontier = np.unique(src)
    indptr, indices = graph.indptr, graph.indices
    level = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = (indptr[frontier + 1] - starts).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            break
        csum = np.cumsum(counts)
        offsets = np.repeat(starts - (csum - counts), counts)
        neighbors = indices[np.arange(total, dtype=np.int64) + offsets]
        owners_expanded = np.repeat(owner[frontier], counts)
        unseen = dist[neighbors] == UNREACHED
        fresh = neighbors[unseen]
        fresh_owner = owners_expanded[unseen]
        if len(fresh) == 0:
            break
        level += 1
        rank = np.lexsort((priority[fresh_owner], fresh))
        uniq, first_idx = np.unique(fresh[rank], return_index=True)
        dist[uniq] = level
        owner[uniq] = fresh_owner[rank[first_idx]]
        frontier = uniq.astype(np.int64)
    return dist, owner


def random_graph(n, num_edges, seed):
    """Random graph, possibly disconnected (no spanning tree guarantee)."""
    rng = np.random.default_rng(seed)
    edges = [
        (int(rng.integers(0, n)), int(rng.integers(0, n)))
        for _ in range(num_edges)
    ]
    edges = [(u, v) for u, v in edges if u != v]
    return Graph.from_edges(edges, num_vertices=n)


def graph_corpus():
    """~50 graphs: random (connected and disconnected), star, path,
    single-vertex, and the structured generator families."""
    graphs = [
        Graph.from_edges([], num_vertices=1),  # single vertex
        Graph.from_edges([], num_vertices=7),  # only isolated vertices
        path_graph(1),
        path_graph(2),
        path_graph(60),
        star_graph(2),
        star_graph(100),
        paper_example_graph(),
        barabasi_albert(300, 3, seed=11),
    ]
    for seed in range(20):
        n = 5 + seed * 3
        graphs.append(random_graph(n, n + seed, seed))  # often disconnected
    for seed in range(20):
        n = 4 + seed * 4
        graphs.append(random_connected_graph(n, 2 * seed, seed))
    return graphs


CORPUS = graph_corpus()


class TestHybridEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_corpus_matches_seed_kernel(self, mode):
        for i, graph in enumerate(CORPUS):
            engine = BFSEngine(graph)
            n = graph.num_vertices
            for source in range(0, n, max(1, n // 5)):
                expected = seed_bfs_distances(graph, source)
                got = engine.run(source, mode=mode)
                assert np.array_equal(expected, got), (
                    f"graph #{i} (n={n}), source {source}, mode {mode}"
                )

    @pytest.mark.parametrize("mode", MODES)
    def test_limit_truncation_agrees(self, mode):
        for i, graph in enumerate(CORPUS[::3]):
            engine = BFSEngine(graph)
            n = graph.num_vertices
            for limit in (0, 1, 2, 5):
                expected = seed_bfs_distances(graph, 0, limit=limit)
                got = engine.run(0, limit=limit, mode=mode)
                assert np.array_equal(expected, got), (
                    f"graph #{3 * i} (n={n}), limit {limit}, mode {mode}"
                )

    def test_buffer_reuse_matches_fresh_engine(self):
        graph = barabasi_albert(400, 3, seed=5)
        shared = BFSEngine(graph)
        for source in (0, 7, 123, 7, 399):
            fresh = BFSEngine(graph).run(source).copy()
            again = shared.run(source)
            assert np.array_equal(fresh, again)
            # Back-to-back runs on one engine are self-consistent too.
            assert np.array_equal(again.copy(), shared.run(source))

    def test_wrapper_copies_out_of_pool(self):
        graph = path_graph(30)
        first = bfs_distances(graph, 0)
        second = bfs_distances(graph, 29)
        # If the wrapper leaked the pooled buffer these would alias.
        assert first[0] == 0 and second[29] == 0
        assert not np.shares_memory(first, second)

    def test_ecc_tracking(self):
        graph = paper_example_graph()
        engine = BFSEngine(graph)
        for source in range(graph.num_vertices):
            dist = engine.run(source)
            assert engine.last_ecc == int(dist.max())

    def test_stats_record_directions_and_edges(self):
        graph = star_graph(2000)
        engine = BFSEngine(graph)
        engine.run(3)  # leaf: level 2 is the dense one
        stats = engine.last_stats
        assert stats.levels == 2
        assert "bu" in stats.directions
        assert stats.edges_inspected >= stats.edges_scanned
        assert stats.frontier_sizes == [1, 1998]

    def test_counter_inspected_accounting(self):
        graph = star_graph(500)
        counter = TraversalCounter()
        bfs_distances(graph, 1, counter=counter)
        assert counter.bfs_runs == 1
        assert counter.edges_inspected >= counter.edges_scanned
        merged = TraversalCounter()
        merged.merge(counter)
        assert merged.edges_inspected == counter.edges_inspected

    def test_invalid_inputs(self):
        graph = path_graph(4)
        engine = BFSEngine(graph)
        with pytest.raises(InvalidVertexError):
            engine.run(4)
        with pytest.raises(InvalidVertexError):
            engine.run(-1)
        with pytest.raises(InvalidParameterError):
            engine.run(0, limit=-1)
        with pytest.raises(InvalidParameterError):
            engine.run(0, mode="sideways")
        with pytest.raises(InvalidParameterError):
            BFSEngine(graph, alpha=0.0)
        with pytest.raises(InvalidParameterError):
            bfs_distances_bounded(graph, 0, limit=-2)

    def test_engine_cache_is_per_graph(self):
        g1 = path_graph(5)
        g2 = path_graph(5)
        assert engine_for(g1) is engine_for(g1)
        assert engine_for(g1) is not engine_for(g2)


class TestRunStatsInvariants:
    """BFSRunStats must stay internally consistent on every level mix.

    ``edges_inspected`` counts the top-down arcs *plus* whatever the
    bottom-up levels probed, so it can never fall below
    ``edges_scanned``; and the per-level audit lists must agree on how
    many levels the run had.
    """

    @pytest.mark.parametrize("mode", MODES)
    def test_inspected_dominates_scanned(self, mode):
        for i, graph in enumerate(CORPUS):
            engine = BFSEngine(graph)
            n = graph.num_vertices
            for source in range(0, n, max(1, n // 4)):
                engine.run(source, mode=mode)
                stats = engine.last_stats
                assert stats.edges_inspected >= stats.edges_scanned, (
                    f"graph #{i} (n={n}), source {source}, mode {mode}"
                )
                assert stats.edges_scanned >= 0

    @pytest.mark.parametrize("mode", MODES)
    def test_per_level_lists_agree(self, mode):
        for i, graph in enumerate(CORPUS):
            engine = BFSEngine(graph)
            engine.run(0, mode=mode)
            stats = engine.last_stats
            assert len(stats.directions) == len(stats.frontier_sizes), (
                f"graph #{i}, mode {mode}"
            )
            assert len(stats.directions) == stats.levels
            assert all(d in ("td", "bu") for d in stats.directions)
            assert all(f > 0 for f in stats.frontier_sizes)

    def test_forced_modes_are_pure(self):
        graph = star_graph(1000)
        engine = BFSEngine(graph)
        engine.run(0, mode="top-down")
        assert set(engine.last_stats.directions) <= {"td"}
        # a pure top-down run inspects exactly what it scans
        assert (
            engine.last_stats.edges_inspected
            == engine.last_stats.edges_scanned
        )
        engine.run(0, mode="bottom-up")
        assert set(engine.last_stats.directions) <= {"bu"}


class TestMultiSourceEquivalence:
    def test_corpus_matches_seed_kernel(self):
        rng = np.random.default_rng(99)
        for i, graph in enumerate(CORPUS):
            n = graph.num_vertices
            k = int(rng.integers(1, min(n, 6) + 1))
            sources = [int(rng.integers(0, n)) for _ in range(k)]
            sources += sources[:1]  # exercise duplicate sources
            exp_dist, exp_owner = seed_multi_source_bfs(graph, sources)
            got_dist, got_owner = multi_source_bfs(graph, sources)
            assert np.array_equal(exp_dist, got_dist), f"graph #{i}"
            assert np.array_equal(exp_owner, got_owner), f"graph #{i}"

    def test_empty_sources(self):
        graph = path_graph(5)
        dist, owner = multi_source_bfs(graph, [])
        assert (dist == UNREACHED).all()
        assert (owner == -1).all()

    def test_invalid_source_vectorised_check(self):
        graph = path_graph(5)
        with pytest.raises(InvalidVertexError):
            multi_source_bfs(graph, [0, 5])
        with pytest.raises(InvalidVertexError):
            multi_source_bfs(graph, [-1])


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    num_edges=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(MODES),
    data=st.data(),
)
def test_property_engine_equals_seed(n, num_edges, seed, mode, data):
    """Hypothesis: any random (possibly disconnected) graph, any source,
    any mode, with and without limit."""
    graph = random_graph(n, num_edges, seed)
    source = data.draw(st.integers(min_value=0, max_value=n - 1))
    limit = data.draw(st.one_of(st.none(), st.integers(0, 8)))
    engine = engine_for(graph)
    expected = seed_bfs_distances(graph, source, limit=limit)
    got = engine.run(source, limit=limit, mode=mode)
    assert np.array_equal(expected, got)
