"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.components import is_connected
from repro.graph.generators import (
    attach_periphery,
    balanced_tree,
    barabasi_albert,
    complete_graph,
    copying_model,
    core_periphery,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    paper_example_graph,
    path_graph,
    star_graph,
    watts_strogatz,
)
from repro.graph.properties import exact_eccentricities


class TestDeterministicToys:
    def test_path(self):
        g = path_graph(5)
        assert g.num_vertices == 5 and g.num_edges == 4

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in range(7))

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_vertices == 1 + 2 + 4 + 8
        assert g.num_edges == g.num_vertices - 1

    def test_balanced_tree_height_zero(self):
        assert balanced_tree(3, 0).num_vertices == 1

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            path_graph(0)
        with pytest.raises(InvalidParameterError):
            cycle_graph(2)
        with pytest.raises(InvalidParameterError):
            star_graph(1)
        with pytest.raises(InvalidParameterError):
            grid_graph(0, 3)


class TestRandomFamilies:
    def test_erdos_renyi_bounds(self):
        g = erdos_renyi(30, 0.2, seed=1)
        assert g.num_vertices == 30
        assert 0 < g.num_edges < 30 * 29 // 2

    def test_erdos_renyi_p_zero(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0

    def test_erdos_renyi_p_one(self):
        assert erdos_renyi(6, 1.0, seed=1).num_edges == 15

    def test_barabasi_albert_connected(self):
        g = barabasi_albert(100, 2, seed=0)
        assert is_connected(g)

    def test_barabasi_albert_edge_count(self):
        n, attach = 80, 3
        g = barabasi_albert(n, attach, seed=2)
        seed_edges = (attach + 1) * attach // 2
        assert g.num_edges == seed_edges + (n - attach - 1) * attach

    def test_barabasi_albert_heavy_tail(self):
        g = barabasi_albert(400, 2, seed=3)
        assert g.degrees.max() >= 5 * np.median(g.degrees)

    def test_watts_strogatz_degree(self):
        g = watts_strogatz(50, 4, 0.0, seed=1)
        assert all(g.degree(v) == 4 for v in range(50))

    def test_watts_strogatz_rewiring_shrinks_diameter(self):
        lattice = watts_strogatz(120, 4, 0.0, seed=1)
        rewired = watts_strogatz(120, 4, 0.3, seed=1)
        d_lattice = exact_eccentricities(lattice).max()
        d_rewired = exact_eccentricities(rewired, require_connected=False).max()
        assert d_rewired < d_lattice

    def test_copying_model_connected(self):
        g = copying_model(150, out_degree=3, seed=4)
        assert is_connected(g)

    def test_copying_model_heavy_tail(self):
        g = copying_model(400, out_degree=3, copy_probability=0.8, seed=5)
        assert g.degrees.max() >= 5 * np.median(g.degrees)

    def test_determinism(self):
        assert barabasi_albert(60, 2, seed=9) == barabasi_albert(60, 2, seed=9)
        assert copying_model(60, 2, seed=9) == copying_model(60, 2, seed=9)
        assert watts_strogatz(60, 4, 0.2, seed=9) == watts_strogatz(
            60, 4, 0.2, seed=9
        )

    def test_seed_changes_graph(self):
        assert barabasi_albert(60, 2, seed=1) != barabasi_albert(60, 2, seed=2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            barabasi_albert(5, 0)
        with pytest.raises(InvalidParameterError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(InvalidParameterError):
            copying_model(3, out_degree=4)
        with pytest.raises(InvalidParameterError):
            erdos_renyi(5, 1.5)


class TestCorePeriphery:
    def test_connected(self):
        g = core_periphery(20, 10, seed=1)
        assert is_connected(g)

    def test_core_denser_than_periphery(self):
        g = core_periphery(20, 10, core_probability=0.5, seed=1)
        core_deg = g.degrees[:20].mean()
        peri_deg = g.degrees[20:].mean()
        assert core_deg > peri_deg

    def test_periphery_stretches_diameter(self):
        tight = core_periphery(20, 0, seed=2)
        loose = core_periphery(20, 15, seed=2)
        assert exact_eccentricities(loose).max() > exact_eccentricities(
            tight
        ).max()


class TestAttachPeriphery:
    def test_adds_vertices(self):
        base = complete_graph(10)
        g = attach_periphery(base, 3, 4, seed=1)
        assert g.num_vertices > base.num_vertices

    def test_preserves_base_edges(self):
        base = complete_graph(6)
        g = attach_periphery(base, 2, 3, seed=1)
        for u in range(6):
            for v in range(u + 1, 6):
                assert g.has_edge(u, v)

    def test_stretches_diameter(self):
        base = complete_graph(10)
        g = attach_periphery(base, 4, 10, seed=1)
        assert exact_eccentricities(g).max() > 1

    def test_zero_tendrils_identity(self):
        base = cycle_graph(8)
        assert attach_periphery(base, 0, 3, seed=1) == base


class TestPaperExample:
    def test_thirteen_nodes_fifteen_edges(self):
        g = paper_example_graph()
        assert g.num_vertices == 13
        assert g.num_edges == 15

    def test_example_21_degree_and_distance(self):
        from repro.graph.traversal import bfs_distances

        g = paper_example_graph()
        assert g.degree(9) == 2  # deg(v10) = 2
        assert bfs_distances(g, 9)[11] == 2  # dist(v10, v12) = 2

    def test_example_23_radius_diameter(self):
        ecc = exact_eccentricities(paper_example_graph())
        assert ecc.min() == 3 and ecc.max() == 5

    def test_example_23_v10_farthest_node(self):
        from repro.graph.traversal import bfs_distances

        g = paper_example_graph()
        dist = bfs_distances(g, 9)  # from v10
        assert dist.max() == 4
        assert dist[0] == 4  # the farthest node is v1
