"""Unit tests for the direction-optimizing MS-BFS engine.

The engine's contract is the repo-wide one: lane packing and direction
choice change speed, never answers.  Every test therefore compares
against the single-source hybrid engine (itself pinned against the seed
kernel in test_engine.py) or the plain traversal reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_connected_graph
from repro.counters import TraversalCounter
from repro.errors import InvalidParameterError, InvalidVertexError
from repro.graph.builder import GraphBuilder
from repro.graph.engine import BFSEngine
from repro.graph.generators import paper_example_graph, star_graph
from repro.graph.msengine import (
    LANE_WORD_BITS,
    MAX_LANE_WORDS,
    MSBFSEngine,
    batch_distance_rows,
    msengine_for,
    plan_lane_width,
)
from repro.obs.trace import MemorySink, tracing
from repro.sentinels import UNREACHED


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(300, extra_edges=260, seed=11)


@pytest.fixture(scope="module")
def reference_rows(graph):
    engine = BFSEngine(graph)
    return np.stack(
        [engine.run(v).copy() for v in range(graph.num_vertices)]
    )


def _sources(graph, count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.choice(
        graph.num_vertices, size=count, replace=False
    ).astype(np.int64)


class TestRunBatch:
    @pytest.mark.parametrize("mode", ["hybrid", "top-down", "bottom-up"])
    def test_rows_match_single_source_engine(
        self, graph, reference_rows, mode
    ):
        src = _sources(graph, 64)
        rows = MSBFSEngine(graph).run_batch(src, mode=mode)
        assert rows.dtype == np.int32
        assert np.array_equal(rows, reference_rows[src])

    @pytest.mark.parametrize("count", [1, 7, 64, 65, 128, 129, 256])
    def test_every_lane_width(self, graph, reference_rows, count):
        src = _sources(graph, count, seed=count)
        rows = MSBFSEngine(graph).run_batch(src)
        assert np.array_equal(rows, reference_rows[src])

    def test_limit_truncates_like_the_serial_engine(self, graph):
        src = _sources(graph, 70, seed=3)
        engine = BFSEngine(graph)
        for limit in (0, 1, 2, 5):
            rows = MSBFSEngine(graph).run_batch(src, limit=limit)
            for i, s in enumerate(src):
                assert np.array_equal(
                    rows[i], engine.run(int(s), limit=limit)
                ), (limit, s)

    def test_disconnected_vertices_stay_unreached(self):
        builder = GraphBuilder(num_vertices=6)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        builder.add_edge(3, 4)  # second component; vertex 5 isolated
        graph = builder.build()
        rows = MSBFSEngine(graph).run_batch(np.arange(6))
        assert rows[0, 3] == UNREACHED and rows[0, 5] == UNREACHED
        assert rows[5, 5] == 0 and np.all(rows[5, :5] == UNREACHED)

    def test_empty_batch(self, graph):
        rows = MSBFSEngine(graph).run_batch(np.empty(0, dtype=np.int64))
        assert rows.shape == (0, graph.num_vertices)

    def test_counter_credits_k_runs_for_one_sweep(self, graph):
        src = _sources(graph, 40)
        counter = TraversalCounter()
        MSBFSEngine(graph).run_batch(src, counter=counter)
        assert counter.bfs_runs == 40


class TestEccBatch:
    @pytest.mark.parametrize("mode", ["hybrid", "top-down"])
    def test_matches_rows_reduction(self, graph, reference_rows, mode):
        src = _sources(graph, 130, seed=5)
        ecc = MSBFSEngine(graph).ecc_batch(src, mode=mode)
        expected = reference_rows[src].max(axis=1).astype(np.int32)
        assert np.array_equal(ecc, expected)

    def test_paper_example(self):
        graph = paper_example_graph()
        ecc = MSBFSEngine(graph).ecc_batch(
            np.arange(graph.num_vertices)
        )
        loop = BFSEngine(graph)
        for v in range(graph.num_vertices):
            loop.run(v)
            assert ecc[v] == loop.last_ecc


class TestValidation:
    def test_too_many_sources(self, graph):
        limit = MAX_LANE_WORDS * LANE_WORD_BITS
        with pytest.raises(InvalidParameterError, match=str(limit)):
            MSBFSEngine(graph).run_batch(
                np.zeros(limit + 1, dtype=np.int64)
            )

    def test_bad_mode(self, graph):
        with pytest.raises(InvalidParameterError, match="mode"):
            MSBFSEngine(graph).run_batch([0], mode="sideways")

    def test_negative_limit(self, graph):
        with pytest.raises(InvalidParameterError, match="limit"):
            MSBFSEngine(graph).run_batch([0], limit=-1)

    def test_bad_vertex(self, graph):
        with pytest.raises(InvalidVertexError):
            MSBFSEngine(graph).run_batch([0, graph.num_vertices])
        with pytest.raises(InvalidVertexError):
            MSBFSEngine(graph).run_batch([-1])

    def test_bad_alpha_beta(self, graph):
        with pytest.raises(InvalidParameterError):
            MSBFSEngine(graph, alpha=0.0)
        with pytest.raises(InvalidParameterError):
            MSBFSEngine(graph, beta=-1.0)


class TestPlanner:
    def test_small_batches_stay_serial(self):
        assert plan_lane_width(100_000, 400_000, 1) == 0
        assert plan_lane_width(100_000, 400_000, 7) == 0

    def test_edgeless_graphs_stay_serial(self):
        assert plan_lane_width(100, 0, 64) == 0

    def test_single_word_default(self):
        assert plan_lane_width(1_000, 4_000, 64) == 64
        # Wide batches on small graphs still stay at one word.
        assert plan_lane_width(1_000, 4_000, 256) == 64

    def test_multi_word_thresholds(self):
        assert plan_lane_width(2_048, 8_192, 128) == 128
        assert plan_lane_width(4_096, 16_384, 256) == 256
        # The 256 tier needs both the batch and the vertex floor.
        assert plan_lane_width(4_000, 16_000, 256) == 128
        assert plan_lane_width(4_096, 16_384, 255) == 128


class TestStatsAndObservability:
    def test_lane_retirement_on_star(self):
        # On a star every leaf lane saturates at level 2 but the sweep
        # runs while any lane lives; live_lanes must never grow.
        graph = star_graph(500)
        engine = MSBFSEngine(graph)
        engine.ecc_batch(np.arange(64, dtype=np.int64))
        stats = engine.last_stats
        assert stats.num_sources == 64
        assert stats.lane_words == 1
        assert stats.levels == len(stats.directions)
        assert all(
            a >= b
            for a, b in zip(stats.live_lanes, stats.live_lanes[1:])
        )
        assert stats.live_lanes[0] <= 64

    def test_hybrid_switches_direction_on_dense_graph(self, graph):
        engine = MSBFSEngine(graph)
        engine.ecc_batch(_sources(graph, 64))
        assert "bu" in engine.last_stats.directions
        assert (
            engine.last_stats.edges_inspected
            >= engine.last_stats.edges_scanned
        )

    def test_run_event_and_metrics(self, graph):
        sink = MemorySink()
        with tracing(sink) as tracer:
            MSBFSEngine(graph).run_batch(_sources(graph, 65))
            snapshot = tracer.metrics.snapshot()
        events = [
            e for e in sink.events if e.get("name") == "msbfs.run"
        ]
        assert len(events) == 1
        event = events[0]
        assert event["num_sources"] == 65
        assert event["lane_words"] == 2
        assert event["mode"] == "hybrid"
        assert event["levels"] == len(event["directions"])
        assert snapshot["msbfs.runs"]["value"] == 1
        assert snapshot["msbfs.sources"]["value"] == 65
        assert snapshot["msbfs.words_touched"]["value"] > 0


class TestBatchDistanceRows:
    def test_duplicates_share_one_sweep(self, graph, reference_rows):
        src = np.asarray([5, 17, 5, 42, 17, 5], dtype=np.int64)
        counter = TraversalCounter()
        rows = batch_distance_rows(graph, src, counter=counter)
        assert np.array_equal(rows, reference_rows[src])
        # Six requested rows, three distinct traversals credited as six
        # (duplicates replay a computed lane, still one run each).
        assert counter.bfs_runs == 6

    def test_serial_fallback_below_lane_threshold(
        self, graph, reference_rows
    ):
        src = np.asarray([3, 250], dtype=np.int64)
        rows = batch_distance_rows(graph, src)
        assert np.array_equal(rows, reference_rows[src])

    def test_out_buffer_is_filled_in_place(self, graph, reference_rows):
        src = _sources(graph, 16, seed=9)
        out = np.empty((16, graph.num_vertices), dtype=np.int32)
        got = batch_distance_rows(graph, src, out=out)
        assert got is out
        assert np.array_equal(out, reference_rows[src])


class TestEngineCache:
    def test_msengine_for_is_cached_per_graph(self, graph):
        assert msengine_for(graph) is msengine_for(graph)
        other = random_connected_graph(10, extra_edges=2, seed=1)
        assert msengine_for(other) is not msengine_for(graph)
