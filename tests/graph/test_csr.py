"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError, InvalidVertexError
from repro.graph.csr import Graph


def triangle() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_from_edges_num_vertices_extends(self):
        g = Graph.from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == 1
        assert g.degree(4) == 0

    def test_from_adjacency(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_from_adjacency_rejects_asymmetric(self):
        with pytest.raises(GraphConstructionError):
            Graph.from_adjacency([[1], []])

    def test_empty_graph(self):
        g = Graph.from_edges([], num_vertices=0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices_only(self):
        g = Graph.from_edges([], num_vertices=4)
        assert g.num_vertices == 4
        assert list(g.edges()) == []

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphConstructionError):
            Graph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_indptr_must_match_indices_length(self):
        with pytest.raises(GraphConstructionError):
            Graph(np.array([0, 3]), np.array([0], dtype=np.int32))

    def test_indptr_monotone(self):
        with pytest.raises(GraphConstructionError):
            Graph(
                np.array([0, 2, 1, 2]),
                np.array([1, 0], dtype=np.int32),
            )

    def test_neighbor_ids_in_range(self):
        with pytest.raises(GraphConstructionError):
            Graph(np.array([0, 1]), np.array([5], dtype=np.int32))


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph.from_edges([(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0).tolist() == [1, 2, 3]

    def test_degree(self):
        g = triangle()
        assert all(g.degree(v) == 2 for v in range(3))

    def test_degrees_array(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        assert g.degrees.tolist() == [2, 1, 1]

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_has_edge_absent(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert not g.has_edge(0, 2)

    def test_edges_iterates_each_once(self):
        g = triangle()
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_invalid_vertex_raises(self):
        g = triangle()
        with pytest.raises(InvalidVertexError):
            g.neighbors(3)
        with pytest.raises(InvalidVertexError):
            g.degree(-1)

    def test_arrays_read_only(self):
        g = triangle()
        with pytest.raises(ValueError):
            # reprolint: disable=R1 (asserting the read-only flag works)
            g.indices[0] = 5
        with pytest.raises(ValueError):
            # reprolint: disable=R1 (asserting the read-only flag works)
            g.indptr[0] = 1


class TestDegreeSelection:
    def test_max_degree_vertex(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert g.max_degree_vertex() == 0

    def test_max_degree_tie_smallest_id(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert g.max_degree_vertex() == 0

    def test_top_degree_vertices(self, example_graph):
        # Example 3.2: v13 (id 12) and v7 (id 6) have the highest degrees.
        top = example_graph.top_degree_vertices(2)
        assert top.tolist() == [12, 6]

    def test_top_degree_count_clamped(self):
        g = triangle()
        assert len(g.top_degree_vertices(10)) == 3

    def test_top_degree_negative_count(self):
        with pytest.raises(GraphConstructionError):
            triangle().top_degree_vertices(-1)


class TestMisc:
    def test_equality(self):
        assert triangle() == triangle()

    def test_inequality(self):
        assert triangle() != Graph.from_edges([(0, 1), (1, 2)])

    def test_memory_bytes_positive(self):
        assert triangle().memory_bytes() > 0

    def test_repr(self):
        assert "n=3" in repr(triangle())

    def test_check_symmetric_passes(self):
        triangle().check_symmetric()
