"""Unit tests for bit-parallel multi-source BFS (MS-BFS)."""

import numpy as np
import pytest

from repro.errors import InvalidVertexError
from repro.graph.csr import Graph
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.msbfs import msbfs_eccentricities, multi_source_distances
from repro.graph.properties import exact_eccentricities
from repro.graph.traversal import TraversalCounter, bfs_distances
from helpers import random_connected_graph


class TestMultiSourceDistances:
    def test_matches_single_bfs_rows(self):
        g = grid_graph(5, 5)
        sources = [0, 7, 24, 12]
        matrix = multi_source_distances(g, sources)
        for row, s in enumerate(sources):
            np.testing.assert_array_equal(
                matrix[row], bfs_distances(g, s)
            )

    def test_random_graphs(self):
        for seed in range(4):
            g = random_connected_graph(70, 60, seed)
            sources = list(range(0, 70, 7))
            matrix = multi_source_distances(g, sources)
            for row, s in enumerate(sources):
                np.testing.assert_array_equal(
                    matrix[row], bfs_distances(g, s)
                )

    def test_more_than_64_sources_batches(self):
        g = random_connected_graph(100, 80, seed=1)
        sources = list(range(100))
        matrix = multi_source_distances(g, sources)
        assert matrix.shape == (100, 100)
        for s in (0, 63, 64, 99):
            np.testing.assert_array_equal(
                matrix[s], bfs_distances(g, s)
            )

    def test_disconnected_unreached(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        matrix = multi_source_distances(g, [0, 2])
        assert matrix[0].tolist() == [0, 1, -1, -1]
        assert matrix[1].tolist() == [-1, -1, 0, -1]

    def test_duplicate_sources_allowed(self):
        g = path_graph(5)
        matrix = multi_source_distances(g, [2, 2])
        np.testing.assert_array_equal(matrix[0], matrix[1])

    def test_empty_sources(self):
        g = path_graph(3)
        assert multi_source_distances(g, []).shape == (0, 3)

    def test_invalid_source(self):
        with pytest.raises(InvalidVertexError):
            multi_source_distances(path_graph(3), [0, 9])

    def test_counter_credits_all_lanes(self):
        g = cycle_graph(10)
        counter = TraversalCounter()
        multi_source_distances(g, [0, 1, 2], counter=counter)
        assert counter.bfs_runs == 3


class TestMSBFSEccentricities:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(9),
            lambda: cycle_graph(8),
            lambda: star_graph(7),
            lambda: grid_graph(4, 6),
        ],
        ids=["path", "cycle", "star", "grid"],
    )
    def test_structured(self, factory):
        g = factory()
        np.testing.assert_array_equal(
            msbfs_eccentricities(g), exact_eccentricities(g)
        )

    def test_random(self):
        for seed in range(3):
            g = random_connected_graph(90, 70, seed)
            np.testing.assert_array_equal(
                msbfs_eccentricities(g), exact_eccentricities(g)
            )

    def test_matches_ifecc_on_fixture(self, social_graph, social_truth):
        np.testing.assert_array_equal(
            msbfs_eccentricities(social_graph), social_truth
        )

    def test_disconnected_within_component(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        assert msbfs_eccentricities(g).tolist() == [1, 1, 2, 1, 2]
