"""Unit tests for GraphBuilder input hygiene."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.builder import GraphBuilder


class TestBasicBuild:
    def test_single_edge(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        g = b.build()
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_add_edges_iterable(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2)])
        assert b.num_pending_edges == 2
        assert b.build().num_edges == 2

    def test_add_edges_generator(self):
        b = GraphBuilder()
        b.add_edges((i, i + 1) for i in range(4))
        assert b.build().num_edges == 4

    def test_empty_build(self):
        assert GraphBuilder().build().num_vertices == 0

    def test_fixed_num_vertices(self):
        b = GraphBuilder(num_vertices=10)
        b.add_edge(0, 1)
        assert b.build().num_vertices == 10


class TestHygiene:
    def test_self_loops_dropped(self):
        b = GraphBuilder()
        b.add_edges([(0, 0), (0, 1), (1, 1)])
        g = b.build()
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicates_collapsed(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (0, 1), (1, 0)])
        assert b.build().num_edges == 1

    def test_symmetrised(self):
        b = GraphBuilder()
        b.add_edge(3, 1)  # one direction only
        g = b.build()
        assert g.has_edge(1, 3) and g.has_edge(3, 1)

    def test_neighbors_sorted_after_build(self):
        b = GraphBuilder()
        b.add_edges([(0, 5), (0, 2), (0, 9)])
        assert b.build().neighbors(0).tolist() == [2, 5, 9]


class TestValidation:
    def test_negative_vertex_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            b.add_edge(-1, 0)

    def test_out_of_range_rejected_with_fixed_n(self):
        b = GraphBuilder(num_vertices=3)
        with pytest.raises(GraphConstructionError):
            b.add_edge(0, 3)

    def test_negative_num_vertices(self):
        with pytest.raises(GraphConstructionError):
            GraphBuilder(num_vertices=-1)

    def test_malformed_pairs(self):
        b = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            b.add_edges([(0, 1, 2)])

    def test_length_mismatch_arrays(self):
        b = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            b.add_edge_arrays(np.array([0, 1]), np.array([1]))


class TestVectorPath:
    def test_add_edge_arrays(self):
        b = GraphBuilder()
        b.add_edge_arrays(np.array([0, 1, 2]), np.array([1, 2, 3]))
        g = b.build()
        assert g.num_edges == 3
        assert g.num_vertices == 4

    def test_empty_arrays_noop(self):
        b = GraphBuilder()
        b.add_edge_arrays(np.empty(0), np.empty(0))
        assert b.num_pending_edges == 0

    def test_matches_scalar_path(self):
        pairs = [(0, 3), (3, 1), (1, 2), (2, 0), (0, 1)]
        b1 = GraphBuilder()
        b1.add_edges(pairs)
        b2 = GraphBuilder()
        arr = np.array(pairs)
        b2.add_edge_arrays(arr[:, 0], arr[:, 1])
        assert b1.build() == b2.build()
