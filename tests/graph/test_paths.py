"""Unit tests for BFS parent tracking and path reconstruction."""

import numpy as np
import pytest

from repro.errors import InvalidVertexError
from repro.graph.csr import Graph
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.paths import bfs_parents, diameter_path, shortest_path
from repro.graph.traversal import bfs_distances
from helpers import random_connected_graph


def assert_valid_path(graph, path, source, target):
    assert path[0] == source
    assert path[-1] == target
    for u, v in zip(path, path[1:]):
        assert graph.has_edge(u, v), (u, v)
    dist = bfs_distances(graph, source)
    assert len(path) - 1 == dist[target]


class TestBFSParents:
    def test_distances_match_plain_bfs(self):
        for seed in range(4):
            g = random_connected_graph(50, 30, seed)
            dist, _parent = bfs_parents(g, 0)
            np.testing.assert_array_equal(dist, bfs_distances(g, 0))

    def test_parent_of_source_is_source(self):
        g = grid_graph(3, 3)
        _dist, parent = bfs_parents(g, 4)
        assert parent[4] == 4

    def test_parents_one_level_up(self):
        g = grid_graph(4, 4)
        dist, parent = bfs_parents(g, 0)
        for v in range(1, g.num_vertices):
            assert dist[parent[v]] == dist[v] - 1

    def test_parents_are_neighbors(self):
        g = random_connected_graph(40, 25, seed=9)
        _dist, parent = bfs_parents(g, 3)
        for v in range(g.num_vertices):
            if v != 3:
                assert g.has_edge(v, int(parent[v]))

    def test_unreachable_parent_minus_one(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        dist, parent = bfs_parents(g, 0)
        assert parent[2] == -1
        assert dist[2] == -1

    def test_deterministic_smallest_parent(self):
        # vertex 3 of a 4-cycle is reachable via 0->1->?? no: grid corner
        g = grid_graph(2, 2)  # square: 0-1, 0-2, 1-3, 2-3
        _dist, parent = bfs_parents(g, 0)
        assert parent[3] == 1  # smallest-id parent among {1, 2}

    def test_invalid_source(self):
        with pytest.raises(InvalidVertexError):
            bfs_parents(path_graph(3), 5)


class TestShortestPath:
    def test_path_graph(self):
        g = path_graph(6)
        assert shortest_path(g, 0, 5) == [0, 1, 2, 3, 4, 5]

    def test_source_equals_target(self):
        g = star_graph(4)
        assert shortest_path(g, 2, 2) == [2]

    def test_valid_on_random_graphs(self):
        for seed in range(4):
            g = random_connected_graph(45, 30, seed)
            path = shortest_path(g, 0, g.num_vertices - 1)
            assert_valid_path(g, path, 0, g.num_vertices - 1)

    def test_disconnected_returns_none(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert shortest_path(g, 0, 3) is None

    def test_invalid_target(self):
        with pytest.raises(InvalidVertexError):
            shortest_path(path_graph(3), 0, 9)


class TestDiameterPath:
    def test_length_equals_diameter(self, social_graph, social_truth):
        path = diameter_path(social_graph)
        assert len(path) - 1 == int(social_truth.max())
        assert_valid_path(social_graph, path, path[0], path[-1])

    def test_cycle(self):
        path = diameter_path(cycle_graph(8))
        assert len(path) - 1 == 4

    def test_paper_example(self, example_graph):
        path = diameter_path(example_graph)
        assert len(path) - 1 == 5
