"""Unit tests for the runtime workspace sanitizer (:mod:`repro.sanitize`).

Covers the guard primitives (borrow/release tokens, generation bumps,
reentrancy), the :class:`GuardedArray` read/write interception, the
frozen-CSR upgrade path, and the engine/msbfs wiring — including the
regression shapes the sanitizer exists to catch: a retained pooled
distance vector read after the next run, and a missing ``.copy()``
before memoisation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitize
from repro.errors import ReproError, SanitizerError
from repro.graph.csr import Graph
from repro.graph.engine import BFSEngine
from repro.graph.msbfs import _LaneWorkspace
from repro.graph.msengine import MSBFSEngine
from repro.obs.trace import MemorySink, tracing


def chordal_square() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])


class TestArming:
    def test_disabled_by_default_in_suite(self):
        # The suite runs unarmed unless REPRO_SANITIZE=1 is exported;
        # either way the toggle helpers must round-trip.
        before = sanitize.enabled()
        sanitize.enable()
        assert sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()
        (sanitize.enable if before else sanitize.disable)()

    def test_context_manager_restores(self):
        before = sanitize.enabled()
        with sanitize.sanitized():
            assert sanitize.enabled()
        assert sanitize.enabled() == before

    def test_context_manager_restores_on_error(self):
        before = sanitize.enabled()
        with pytest.raises(RuntimeError):
            with sanitize.sanitized():
                raise RuntimeError("boom")
        assert sanitize.enabled() == before

    def test_guard_if_enabled(self, sanitizer):
        assert isinstance(
            sanitize.guard_if_enabled("x"), sanitize.WorkspaceGuard
        )

    def test_guard_if_disabled_is_none(self):
        with sanitize.sanitized():
            pass  # ensure at least one toggle has happened
        if not sanitize.enabled():
            assert sanitize.guard_if_enabled("x") is None

    def test_error_hierarchy(self):
        # ValueError so read-only-flag tests keep passing armed;
        # ReproError so `except ReproError` catches library failures.
        assert issubclass(SanitizerError, ValueError)
        assert issubclass(SanitizerError, ReproError)


class TestWorkspaceGuard:
    def test_generation_bumps_per_run(self):
        guard = sanitize.WorkspaceGuard("T")
        g0 = guard.generation
        guard.begin_run()
        guard.end_run()
        guard.begin_run()
        guard.end_run()
        assert guard.generation == g0 + 2

    def test_reentrancy_raises(self):
        guard = sanitize.WorkspaceGuard("T")
        guard.begin_run()
        with pytest.raises(SanitizerError, match="not reentrant"):
            guard.begin_run()
        guard.end_run()
        guard.begin_run()  # released guard can run again
        guard.end_run()

    def test_loan_is_valid_within_generation(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(5, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        loan = guard.loan(buf, "T.buf")
        assert int(loan.max()) == 4
        assert loan[2] == 2
        assert loan.tolist() == [0, 1, 2, 3, 4]

    def test_loan_stale_after_next_run(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(5, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        loan = guard.loan(buf, "T.buf")
        guard.begin_run()
        guard.end_run()
        with pytest.raises(SanitizerError, match="stale read of T.buf"):
            loan.max()
        with pytest.raises(SanitizerError):
            loan[0]
        with pytest.raises(SanitizerError):
            np.argmax(loan)
        with pytest.raises(SanitizerError):
            loan.copy()

    def test_loan_is_read_only(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.zeros(4, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        loan = guard.loan(buf, "T.buf")
        with pytest.raises(SanitizerError, match="read-only"):
            loan[0] = 1
        with pytest.raises(SanitizerError):
            loan.fill(7)
        with pytest.raises(SanitizerError):
            np.minimum(loan, 0, out=loan)
        assert buf[0] == 0  # the pooled base was never touched

    def test_copy_demotes_to_plain_owned_array(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(4, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        owned = guard.loan(buf, "T.buf").copy()
        assert type(owned) is np.ndarray
        guard.begin_run()
        guard.end_run()
        assert int(owned.max()) == 3  # survives the next run
        owned[0] = 9  # and is writable

    def test_arithmetic_results_are_owned(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(4, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        loan = guard.loan(buf, "T.buf")
        derived = loan + 1
        guard.begin_run()
        guard.end_run()
        assert derived.tolist() == [1, 2, 3, 4]

    def test_slice_of_loan_is_same_loan(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(6, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        tail = guard.loan(buf, "T.buf")[2:]
        guard.begin_run()
        guard.end_run()
        with pytest.raises(SanitizerError, match="stale"):
            tail.max()

    def test_stale_repr_never_raises(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(3, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        loan = guard.loan(buf, "T.buf")
        guard.begin_run()
        guard.end_run()
        assert "stale" in repr(loan)

    def test_error_names_the_borrow_site(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.zeros(3, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        loan = guard.loan(buf, "T.buf")
        guard.begin_run()
        guard.end_run()
        with pytest.raises(SanitizerError) as excinfo:
            loan.sum()
        message = str(excinfo.value)
        assert "test_error_names_the_borrow_site" in message
        assert "test_sanitize.py" in message

    def test_borrow_site_carries_obs_span(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.zeros(3, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        with tracing(MemorySink()) as tracer:
            with tracer.span("probe"):
                loan = guard.loan(buf, "T.buf")
        site = loan._repro_site
        assert site is not None and site.span_seq is not None
        assert f"span seq={site.span_seq}" in site.describe()


class TestAssertOwned:
    def test_plain_array_passes(self):
        arr = np.arange(3)
        assert sanitize.assert_owned(arr) is arr

    def test_copy_of_loan_passes(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(3, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        owned = guard.loan(buf, "T.buf").copy()
        assert sanitize.assert_owned(owned) is owned

    def test_live_loan_rejected(self):
        guard = sanitize.WorkspaceGuard("T")
        buf = np.arange(3, dtype=np.int32)
        guard.begin_run()
        guard.end_run()
        loan = guard.loan(buf, "T.buf")
        with pytest.raises(SanitizerError, match="live loan"):
            sanitize.assert_owned(loan)


class TestFreeze:
    def test_unarmed_freeze_is_plain_read_only(self):
        if sanitize.enabled():
            pytest.skip("suite armed via REPRO_SANITIZE")
        arr = np.arange(3)
        frozen = sanitize.freeze(arr, "x")
        assert frozen is arr
        assert not frozen.flags.writeable

    def test_armed_freeze_raises_sanitizer_error(self, sanitizer):
        frozen = sanitize.freeze(np.arange(3), "Fixture.arr")
        with pytest.raises(SanitizerError, match="Fixture.arr"):
            frozen[0] = 5
        with pytest.raises(ValueError):  # the compatible supertype
            frozen[0] = 5

    def test_armed_csr_write_diagnosed(self, sanitizer):
        g = chordal_square()
        with pytest.raises(SanitizerError, match="Graph.indices"):
            g.indices[0] = 5  # reprolint: disable=R1 (asserting the frozen guard traps the write)
        with pytest.raises(SanitizerError, match="immutable"):
            g.indptr[0] = 1  # reprolint: disable=R1 (asserting the frozen guard traps the write)

    def test_armed_graph_still_traversable(self, sanitizer):
        g = chordal_square()
        engine = BFSEngine(g)
        assert int(engine.run(0).max()) == 1


class TestEngineWiring:
    def test_unarmed_run_returns_plain_pooled_buffer(self):
        if sanitize.enabled():
            pytest.skip("suite armed via REPRO_SANITIZE")
        engine = BFSEngine(chordal_square())
        d1 = engine.run(0)
        assert type(d1) is np.ndarray
        assert engine.run(1) is d1  # pooling intact

    def test_armed_run_returns_guarded_loan(self, sanitizer):
        engine = BFSEngine(chordal_square())
        dist = engine.run(0)
        assert isinstance(dist, sanitize.GuardedArray)
        assert dist.tolist() == [0, 1, 1, 1]

    def test_stale_distance_vector_read_raises(self, sanitizer):
        engine = BFSEngine(chordal_square())
        dist = engine.run(0)
        engine.run(1)  # overwrites the pooled buffer
        with pytest.raises(SanitizerError, match="BFSEngine._dist"):
            dist.max()

    def test_copy_before_next_run_is_safe(self, sanitizer):
        engine = BFSEngine(chordal_square())
        kept = engine.run(0).copy()
        engine.run(1)
        assert kept.tolist() == [0, 1, 1, 1]

    def test_run_multi_loans_both_buffers(self, sanitizer):
        engine = BFSEngine(chordal_square())
        dist, owner = engine.run_multi([0, 2])
        assert isinstance(dist, sanitize.GuardedArray)
        assert isinstance(owner, sanitize.GuardedArray)
        engine.run(0)
        with pytest.raises(SanitizerError):
            owner.max()

    def test_reentrant_run_raises(self, sanitizer):
        engine = BFSEngine(chordal_square())
        guard = engine._guard
        assert guard is not None
        guard.begin_run()
        try:
            with pytest.raises(SanitizerError, match="not reentrant"):
                engine.run(0)
        finally:
            guard.end_run()
        assert int(engine.run(0).max()) == 1  # recovered

    def test_missing_copy_memoisation_bug_is_caught(self, sanitizer):
        # The regression shape R9 guards against statically, replayed
        # dynamically: memoise the pooled vector without .copy() and
        # read it after later runs — silent wrong answers unarmed, a
        # diagnosed SanitizerError armed.
        engine = BFSEngine(chordal_square())
        memo = {}
        for source in (0, 1):
            memo[source] = engine.run(source)  # BUG: no .copy()
        with pytest.raises(SanitizerError, match="stale read"):
            memo[0].max()

    def test_answers_match_unarmed(self, sanitizer):
        g = chordal_square()
        armed = BFSEngine(g).run(0).copy()
        with np.errstate():
            sanitize.disable()
            try:
                plain = BFSEngine(g).run(0)
            finally:
                sanitize.enable()
        np.testing.assert_array_equal(armed, plain)


class TestMsbfsWiring:
    def test_lane_workspace_alias_constructs_guarded(self, sanitizer):
        # The historical single-word workspace name still builds the
        # pooled bitmaps (now the MS engine's) and arms their guard.
        work = _LaneWorkspace(chordal_square().num_vertices)
        assert work.guard is not None
        assert work.seen.shape == (4, 1)

    def test_armed_batch_guard_reentrancy(self, sanitizer):
        g = chordal_square()
        engine = MSBFSEngine(g)
        work = engine._workspace(1)
        assert work.guard is not None
        work.guard.begin_run()
        try:
            with pytest.raises(SanitizerError, match="not reentrant"):
                engine.run_batch(np.asarray([0], dtype=np.int64))
        finally:
            work.guard.end_run()

    def test_armed_batch_matches_unarmed(self, sanitizer):
        g = chordal_square()
        sources = np.asarray([0, 1, 2, 3], dtype=np.int64)
        armed = MSBFSEngine(g).run_batch(sources)
        sanitize.disable()
        try:
            plain_engine = MSBFSEngine(g)
            plain = plain_engine.run_batch(sources)
            assert plain_engine._workspace(1).guard is None
        finally:
            sanitize.enable()
        np.testing.assert_array_equal(armed, plain)
