"""Property: worker count never changes results (workers=1 ≡ workers=4).

Chunking policy depends on the worker count, so these properties drive
the pools with hypothesis-drawn source lists (duplicates, reorderings,
empty) and demand bitwise-equal outputs — the parallel analogue of the
engine's "direction changes speed, never answers" contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_connected_graph
from repro.parallel.pool import TraversalPool
from repro.parallel.shm import shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)

_N = 180


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(_N, extra_edges=120, seed=77)


@pytest.fixture(scope="module")
def pools(graph):
    # One persistent pool per worker count — a pool per example would
    # dominate the property's runtime with process startup.
    solo = TraversalPool(graph, workers=1)
    quad = TraversalPool(graph, workers=4)
    yield solo, quad
    solo.close()
    quad.close()


sources_strategy = st.lists(
    st.integers(min_value=0, max_value=_N - 1), min_size=0, max_size=40
)


@settings(max_examples=20, deadline=None)
@given(sources=sources_strategy)
def test_eccentricities_independent_of_worker_count(pools, sources):
    solo, quad = pools
    src = np.asarray(sources, dtype=np.int64)
    assert np.array_equal(
        solo.eccentricities(src), quad.eccentricities(src)
    )


@settings(max_examples=10, deadline=None)
@given(sources=st.lists(
    st.integers(min_value=0, max_value=_N - 1), min_size=1, max_size=8
))
def test_distance_rows_independent_of_worker_count(pools, sources):
    solo, quad = pools
    assert np.array_equal(
        solo.distance_rows(sources), quad.distance_rows(sources)
    )


@settings(max_examples=10, deadline=None)
@given(sources=st.lists(
    st.integers(min_value=0, max_value=_N - 1), min_size=0, max_size=100
))
def test_msbfs_independent_of_worker_count(pools, sources):
    solo, quad = pools
    src = np.asarray(sources, dtype=np.int64)
    assert np.array_equal(
        solo.msbfs_eccentricities(src), quad.msbfs_eccentricities(src)
    )
