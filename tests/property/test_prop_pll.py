"""Property-based tests for the PLL index: queries equal BFS distances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.traversal import bfs_distances
from repro.pll.index import build_pll_index

from helpers import random_connected_graph


@st.composite
def graphs_maybe_disconnected(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    num_edges = draw(st.integers(min_value=0, max_value=45))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    builder = GraphBuilder(num_vertices=n)
    builder.add_edges(edges)
    return builder.build()


class TestPLLProperties:
    @given(graphs_maybe_disconnected())
    @settings(max_examples=30, deadline=None)
    def test_queries_equal_bfs(self, g):
        index = build_pll_index(g)
        for s in range(g.num_vertices):
            dist = bfs_distances(g, s)
            for t in range(g.num_vertices):
                assert index.query(s, t) == dist[t]

    @given(
        st.integers(min_value=2, max_value=35),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_orderings_agree(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        deg = build_pll_index(g, ordering="degree")
        rnd = build_pll_index(g, ordering="random", seed=seed)
        for s in (0, n // 2, n - 1):
            for t in (0, n // 2, n - 1):
                assert deg.query(s, t) == rnd.query(s, t)

    @given(graphs_maybe_disconnected())
    @settings(max_examples=30, deadline=None)
    def test_hub_ranks_sorted(self, g):
        index = build_pll_index(g)
        for v in range(g.num_vertices):
            hubs, dists = index.label_of(v)
            assert np.all(np.diff(hubs) > 0)
            assert np.all(dists >= 0)
