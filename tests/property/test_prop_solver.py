"""Property tests for the metric-generic solver core.

For each of the three oracles — unweighted BFS, weighted Dijkstra, and
directed forward/backward BFS — the anytime invariant must hold: at
*every* snapshot of :meth:`EccentricitySolver.steps`, the bound arrays
sandwich the naive per-vertex oracle truth, and exhausting the iterator
resolves every vertex to that truth.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracles import BFSOracle
from repro.core.solver import EccentricitySolver
from repro.directed.eccentricity import (
    directed_solver,
    naive_directed_eccentricities,
)
from repro.directed.graph import DirectedGraph
from repro.graph.properties import exact_eccentricities
from repro.weighted.eccentricity import (
    naive_weighted_eccentricities,
    weighted_solver,
)
from repro.weighted.graph import WeightedGraph

from helpers import random_connected_graph

_TOL = 1e-9


@st.composite
def small_connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    extra = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_connected_graph(n, extra, seed)


@st.composite
def small_weighted_graphs(draw):
    base = draw(small_connected_graphs())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    triples = [
        (u, v, float(rng.integers(1, 10))) for u, v in base.edges()
    ]
    return WeightedGraph.from_edges(triples, num_vertices=base.num_vertices)


@st.composite
def small_strongly_connected_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=35))
    extra = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    arcs = [(i, (i + 1) % n) for i in range(n)]  # Hamiltonian cycle
    for _ in range(extra):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            arcs.append((int(u), int(v)))
    return DirectedGraph.from_arcs(arcs, num_vertices=n)


def assert_anytime_sandwich(solver, truth, tol):
    """Bounds sandwich the truth at every snapshot; final state is exact."""
    for _snapshot in solver.steps():
        assert np.all(solver.bounds.lower <= truth + tol)
        # Unresolved vertices may still hold the +inf sentinel upper
        # bound, which trivially satisfies upper >= truth.
        assert np.all(solver.bounds.upper >= truth - tol)
    assert solver.bounds.all_resolved()
    np.testing.assert_allclose(solver.bounds.lower, truth, atol=tol)


class TestAnytimeSandwich:
    @given(
        small_connected_graphs(), st.integers(min_value=1, max_value=3)
    )
    @settings(max_examples=25, deadline=None)
    def test_bfs_oracle(self, g, r):
        truth = exact_eccentricities(g)
        solver = EccentricitySolver(BFSOracle(g), num_references=r)
        assert_anytime_sandwich(solver, truth, tol=0)

    @given(small_weighted_graphs())
    @settings(max_examples=20, deadline=None)
    def test_dijkstra_oracle(self, g):
        truth = naive_weighted_eccentricities(g)
        assert_anytime_sandwich(weighted_solver(g), truth, tol=_TOL)

    @given(small_strongly_connected_digraphs())
    @settings(max_examples=20, deadline=None)
    def test_directed_oracle(self, g):
        truth = naive_directed_eccentricities(g)
        assert_anytime_sandwich(directed_solver(g), truth, tol=0)


class TestBudgetedMonotonicity:
    @given(small_weighted_graphs(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_weighted_budget_estimate_is_lower_bound(self, g, k):
        from repro.weighted.eccentricity import (
            approximate_weighted_eccentricities,
        )

        truth = naive_weighted_eccentricities(g)
        result = approximate_weighted_eccentricities(g, k=k)
        assert np.all(result.eccentricities <= truth + _TOL)
        assert result.num_bfs <= k + 1
