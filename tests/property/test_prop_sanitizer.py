"""Property test: the full solver stack runs clean under the sanitizer.

Every solver path — IFECC over a randomized corpus plus structured
graphs, the weighted and directed extensions, MS-BFS batches — is
executed with ``REPRO_SANITIZE`` armed.  Two properties:

1. nothing in the stack violates the buffer-ownership discipline (no
   :class:`~repro.errors.SanitizerError`), i.e. the runtime guard agrees
   with reprolint R9's static verdict that the code is escape-free;
2. the guarded answers are bit-identical to the unguarded ones — the
   sanitizer observes, it never perturbs.

Graphs are constructed *inside* the armed context so their CSR arrays
are frozen-guarded and their pooled engines are guard-wired.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_connected_graph
from repro import sanitize
from repro.core.ifecc import compute_eccentricities
from repro.directed.eccentricity import (
    directed_ifecc_eccentricities,
    naive_directed_eccentricities,
)
from repro.directed.graph import DirectedGraph
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    paper_example_graph,
    path_graph,
    star_graph,
)
from repro.graph.msbfs import msbfs_eccentricities
from repro.graph.properties import exact_eccentricities
from repro.weighted.eccentricity import (
    naive_weighted_eccentricities,
    weighted_eccentricities,
)
from repro.weighted.graph import WeightedGraph


class TestArmedCorpus:
    def test_ifecc_random_corpus_armed(self, sanitizer):
        for seed in range(6):
            graph = random_connected_graph(70, 50, seed)
            truth = exact_eccentricities(graph)
            for refs in (1, 3):
                result = compute_eccentricities(graph, num_references=refs)
                np.testing.assert_array_equal(
                    result.eccentricities, truth
                )

    @pytest.mark.parametrize(
        "factory",
        [
            paper_example_graph,
            lambda: path_graph(15),
            lambda: cycle_graph(12),
            lambda: star_graph(9),
            lambda: grid_graph(4, 5),
        ],
        ids=["paper", "path", "cycle", "star", "grid"],
    )
    def test_ifecc_structured_armed(self, sanitizer, factory):
        graph = factory()
        truth = exact_eccentricities(graph)
        result = compute_eccentricities(graph)
        np.testing.assert_array_equal(result.eccentricities, truth)

    def test_msbfs_armed(self, sanitizer):
        graph = random_connected_graph(90, 70, seed=3)
        truth = exact_eccentricities(graph)
        np.testing.assert_array_equal(msbfs_eccentricities(graph), truth)

    def test_weighted_armed(self, sanitizer):
        base = random_connected_graph(40, 30, seed=5)
        rng = np.random.default_rng(5)
        triples = []
        seen = set()
        for u in range(base.num_vertices):
            for v in base.neighbors(u):
                key = (min(u, int(v)), max(u, int(v)))
                if key not in seen:
                    seen.add(key)
                    triples.append(
                        (key[0], key[1], float(rng.integers(1, 9)))
                    )
        graph = WeightedGraph.from_edges(triples)
        truth = naive_weighted_eccentricities(graph)
        result = weighted_eccentricities(graph)
        np.testing.assert_allclose(
            result.eccentricities, truth, atol=1e-9
        )

    def test_directed_armed(self, sanitizer):
        base = random_connected_graph(50, 40, seed=8)
        graph = DirectedGraph.from_undirected(base)
        truth = naive_directed_eccentricities(graph)
        result = directed_ifecc_eccentricities(graph)
        np.testing.assert_array_equal(result.eccentricities, truth)

    def test_armed_equals_unarmed(self, sanitizer):
        # Same graph topology built twice: once guarded, once not; the
        # sanitizer must be answer-invisible.
        graph = random_connected_graph(60, 45, seed=13)
        armed = compute_eccentricities(graph).eccentricities.copy()
        sanitize.disable()
        try:
            plain_graph = random_connected_graph(60, 45, seed=13)
            plain = compute_eccentricities(plain_graph).eccentricities
        finally:
            sanitize.enable()
        np.testing.assert_array_equal(armed, plain)
