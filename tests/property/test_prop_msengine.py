"""Property: lane width and direction never change MS-BFS answers.

The tentpole equivalence — ``MSBFSEngine`` ≡ looped single-source
``BFSEngine`` ≡ the seed-style dense lane reference — driven across
hypothesis-drawn graphs, batch sizes (crossing every lane-word
boundary), truncation limits, and forced directions.  The reference
implementation here is deliberately the *dumbest* correct one: a dense
per-source loop over the plain traversal kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_connected_graph
from repro.graph.builder import GraphBuilder
from repro.graph.engine import BFSEngine
from repro.graph.msengine import MSBFSEngine, batch_distance_rows
from repro.sentinels import UNREACHED


@st.composite
def graph_and_sources(draw, max_n=48, max_batch=96):
    """A small random connected graph plus a source batch (duplicates
    and reorderings allowed) that can cross the 64-lane word boundary."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    extra = draw(st.integers(min_value=0, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=max_batch,
        )
    )
    return random_connected_graph(n, extra_edges=extra, seed=seed), sources


def looped_reference(graph, sources, limit=None):
    engine = BFSEngine(graph)
    return np.stack(
        [engine.run(int(s), limit=limit).copy() for s in sources]
    )


@settings(max_examples=60, deadline=None)
@given(gs=graph_and_sources())
def test_run_batch_equals_looped_engine(gs):
    graph, sources = gs
    # Distinct sources: one lane per source, any width the batch needs.
    src = np.unique(np.asarray(sources, dtype=np.int64))
    rows = MSBFSEngine(graph).run_batch(src)
    assert np.array_equal(rows, looped_reference(graph, src))


@settings(max_examples=30, deadline=None)
@given(gs=graph_and_sources(), mode=st.sampled_from(["top-down", "bottom-up"]))
def test_forced_directions_change_nothing(gs, mode):
    graph, sources = gs
    src = np.unique(np.asarray(sources, dtype=np.int64))
    forced = MSBFSEngine(graph).run_batch(src, mode=mode)
    hybrid = MSBFSEngine(graph).run_batch(src)
    assert np.array_equal(forced, hybrid)


@settings(max_examples=30, deadline=None)
@given(gs=graph_and_sources(), limit=st.integers(min_value=0, max_value=6))
def test_truncation_limits_match_serial_engine(gs, limit):
    graph, sources = gs
    src = np.unique(np.asarray(sources, dtype=np.int64))
    rows = MSBFSEngine(graph).run_batch(src, limit=limit)
    assert np.array_equal(rows, looped_reference(graph, src, limit=limit))


@settings(max_examples=40, deadline=None)
@given(gs=graph_and_sources())
def test_batch_distance_rows_handles_duplicates(gs):
    graph, sources = gs
    # Raw batch, duplicates and all — the dedupe seam must replay
    # repeated sources from the shared sweep, preserving order.
    src = np.asarray(sources, dtype=np.int64)
    rows = batch_distance_rows(graph, src)
    assert np.array_equal(rows, looped_reference(graph, src))


@settings(max_examples=30, deadline=None)
@given(gs=graph_and_sources())
def test_ecc_batch_equals_rows_reduction(gs):
    graph, sources = gs
    src = np.unique(np.asarray(sources, dtype=np.int64))
    ecc = MSBFSEngine(graph).ecc_batch(src)
    rows = looped_reference(graph, src)
    expected = np.where(rows != UNREACHED, rows, 0).max(axis=1)
    assert np.array_equal(ecc, expected.astype(np.int32))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    num_edges=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_disconnected_graphs_unreached_lanes(n, num_edges, seed):
    # Possibly-disconnected graphs: unreached cells must stay UNREACHED
    # in every lane, exactly as the serial engine reports them.
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_vertices=n)
    for _ in range(num_edges):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            builder.add_edge(u, v)
    graph = builder.build()
    src = np.arange(n, dtype=np.int64)
    rows = MSBFSEngine(graph).run_batch(src)
    assert np.array_equal(rows, looped_reference(graph, src))
