"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHED, bfs_distances, multi_source_bfs

from helpers import random_connected_graph


@st.composite
def edge_lists(draw):
    """Random edge lists over a small vertex universe."""
    n = draw(st.integers(min_value=1, max_value=30))
    num_edges = draw(st.integers(min_value=0, max_value=60))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return n, edges


@st.composite
def connected_graphs(draw):
    """Random connected graphs (spanning tree + extras)."""
    n = draw(st.integers(min_value=2, max_value=40))
    extra = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_connected_graph(n, extra, seed)


class TestBuilderProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_build_is_symmetric_and_clean(self, data):
        n, edges = data
        builder = GraphBuilder(num_vertices=n)
        builder.add_edges(edges)
        g = builder.build()
        assert g.num_vertices == n
        for u, v in g.edges():
            assert u != v            # no self-loops
            assert g.has_edge(v, u)  # symmetric
        # neighbor lists sorted and duplicate-free
        for v in range(n):
            nbrs = g.neighbors(v).tolist()
            assert nbrs == sorted(set(nbrs))

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_build_idempotent(self, data):
        n, edges = data
        b1 = GraphBuilder(num_vertices=n)
        b1.add_edges(edges)
        g1 = b1.build()
        b2 = GraphBuilder(num_vertices=n)
        b2.add_edges(list(g1.edges()))
        assert b2.build() == g1

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, data):
        n, edges = data
        builder = GraphBuilder(num_vertices=n)
        builder.add_edges(edges)
        g = builder.build()
        assert int(g.degrees.sum()) == 2 * g.num_edges


class TestBFSProperties:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_distance_metric_axioms(self, g):
        dist0 = bfs_distances(g, 0)
        assert dist0[0] == 0
        assert np.all(dist0 >= 0)  # connected: everything reached

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality_on_edges(self, g):
        # adjacent vertices differ by at most 1 in BFS distance
        dist = bfs_distances(g, 0)
        for u, v in g.edges():
            assert abs(int(dist[u]) - int(dist[v])) <= 1

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_bfs_symmetric(self, g):
        a = int(np.random.default_rng(0).integers(0, g.num_vertices))
        dist_a = bfs_distances(g, a)
        dist_0 = bfs_distances(g, 0)
        assert dist_a[0] == dist_0[a]

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_multi_source_is_min(self, g):
        sources = list(range(0, g.num_vertices, 3)) or [0]
        dist, owner = multi_source_bfs(g, sources)
        singles = np.stack([bfs_distances(g, s) for s in sources])
        np.testing.assert_array_equal(dist, singles.min(axis=0))
        # owners realise the distances they claim
        for v in range(g.num_vertices):
            s = int(owner[v])
            assert bfs_distances(g, s)[v] == dist[v]
