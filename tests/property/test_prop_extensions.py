"""Property-based tests for the extension modules (extremes, paths,
weighted, directed)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extremes import radius_and_diameter
from repro.directed.eccentricity import (
    directed_eccentricities,
    naive_directed_eccentricities,
)
from repro.directed.graph import DirectedGraph
from repro.graph.paths import bfs_parents, shortest_path
from repro.graph.properties import exact_eccentricities
from repro.graph.traversal import bfs_distances
from repro.weighted.eccentricity import (
    naive_weighted_eccentricities,
    weighted_eccentricities,
)
from repro.weighted.graph import WeightedGraph

from helpers import random_connected_graph


@st.composite
def small_connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    extra = draw(st.integers(min_value=0, max_value=45))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_connected_graph(n, extra, seed)


@st.composite
def weighted_graphs(draw):
    base = draw(small_connected_graphs())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    triples = [
        (u, v, int(rng.integers(1, 10))) for u, v in base.edges()
    ]
    return WeightedGraph.from_edges(
        triples, num_vertices=base.num_vertices
    )


@st.composite
def strongly_connected_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=35))
    extra = draw(st.integers(min_value=0, max_value=50))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    arcs = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(extra):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            arcs.append((int(u), int(v)))
    return DirectedGraph.from_arcs(arcs, num_vertices=n)


class TestExtremesProperties:
    @given(small_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_extremes_match_oracle(self, g):
        truth = exact_eccentricities(g)
        result = radius_and_diameter(g)
        assert result.radius == int(truth.min())
        assert result.diameter == int(truth.max())
        assert result.radius <= result.diameter <= 2 * result.radius


class TestPathProperties:
    @given(small_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_paths_realise_distances(self, g):
        dist = bfs_distances(g, 0)
        for target in range(0, g.num_vertices, 5):
            path = shortest_path(g, 0, target)
            assert len(path) - 1 == dist[target]
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)

    @given(small_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_parent_tree_is_shortest(self, g):
        dist, parent = bfs_parents(g, 0)
        for v in range(1, g.num_vertices):
            assert dist[int(parent[v])] == dist[v] - 1


class TestWeightedProperties:
    @given(weighted_graphs())
    @settings(max_examples=20, deadline=None)
    def test_weighted_ifecc_matches_oracle(self, g):
        truth = naive_weighted_eccentricities(g)
        result = weighted_eccentricities(g)
        np.testing.assert_allclose(result.eccentricities, truth)

    @given(weighted_graphs())
    @settings(max_examples=20, deadline=None)
    def test_weighted_radius_diameter_inequality(self, g):
        truth = naive_weighted_eccentricities(g)
        assert truth.min() <= truth.max() <= 2 * truth.min() + 1e-9


class TestDirectedProperties:
    @given(strongly_connected_digraphs())
    @settings(max_examples=20, deadline=None)
    def test_directed_matches_oracle(self, g):
        truth = naive_directed_eccentricities(g)
        result = directed_eccentricities(g)
        np.testing.assert_array_equal(result.eccentricities, truth)

    @given(strongly_connected_digraphs())
    @settings(max_examples=20, deadline=None)
    def test_directed_triangle_inequality(self, g):
        from repro.directed.traversal import forward_bfs

        d0 = forward_bfs(g, 0).astype(np.int64)
        for mid in range(0, g.num_vertices, 7):
            dmid = forward_bfs(g, mid).astype(np.int64)
            assert np.all(d0 <= d0[mid] + dmid)


class TestMSBFSProperties:
    @given(small_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_msbfs_rows_equal_bfs(self, g):
        from repro.graph.msbfs import multi_source_distances

        sources = list(range(0, g.num_vertices, 3))
        matrix = multi_source_distances(g, sources)
        for row, s in enumerate(sources):
            np.testing.assert_array_equal(
                matrix[row], bfs_distances(g, s)
            )

    @given(small_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_msbfs_eccentricities_match_oracle(self, g):
        from repro.graph.msbfs import msbfs_eccentricities

        np.testing.assert_array_equal(
            msbfs_eccentricities(g), exact_eccentricities(g)
        )


class TestDirectedIFECCProperties:
    @given(strongly_connected_digraphs())
    @settings(max_examples=20, deadline=None)
    def test_directed_ifecc_matches_oracle(self, g):
        from repro.directed.eccentricity import (
            directed_ifecc_eccentricities,
        )

        truth = naive_directed_eccentricities(g)
        result = directed_ifecc_eccentricities(g)
        np.testing.assert_array_equal(result.eccentricities, truth)
