"""Property-based tests: every algorithm agrees with the BFS oracle and
every bound sandwiches the truth, on random connected graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.boundecc import boundecc_eccentricities
from repro.baselines.kbfs import kbfs_eccentricities
from repro.baselines.pllecc import pllecc_eccentricities
from repro.core.ifecc import IFECC, compute_eccentricities
from repro.core.kifecc import approximate_eccentricities
from repro.core.stratify import approximate_via_f2, exact_via_f1
from repro.graph.properties import exact_eccentricities

from helpers import random_connected_graph


@st.composite
def small_connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=45))
    extra = draw(st.integers(min_value=0, max_value=50))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_connected_graph(n, extra, seed)


class TestExactAlgorithmsAgree:
    @given(small_connected_graphs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_ifecc_matches_oracle(self, g, r):
        truth = exact_eccentricities(g)
        result = compute_eccentricities(g, num_references=r)
        np.testing.assert_array_equal(result.eccentricities, truth)

    @given(small_connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_boundecc_matches_oracle(self, g):
        truth = exact_eccentricities(g)
        result = boundecc_eccentricities(g)
        np.testing.assert_array_equal(result.eccentricities, truth)

    @given(small_connected_graphs())
    @settings(max_examples=15, deadline=None)
    def test_pllecc_matches_oracle(self, g):
        truth = exact_eccentricities(g)
        report = pllecc_eccentricities(g, num_references=2)
        np.testing.assert_array_equal(report.result.eccentricities, truth)

    @given(small_connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_f1_theorem_matches_oracle(self, g):
        truth = exact_eccentricities(g)
        np.testing.assert_array_equal(
            exact_via_f1(g).eccentricities, truth
        )


class TestApproximationInvariants:
    @given(
        small_connected_graphs(),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_kifecc_is_sound_lower_bound(self, g, k):
        truth = exact_eccentricities(g)
        result = approximate_eccentricities(g, k=k)
        assert np.all(result.eccentricities <= truth)
        assert np.all(result.lower <= truth)
        assert np.all(
            result.upper.astype(np.int64) >= truth.astype(np.int64)
        )

    @given(
        small_connected_graphs(),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_kbfs_is_sound_lower_bound(self, g, k, seed):
        truth = exact_eccentricities(g)
        result = kbfs_eccentricities(g, k=k, seed=seed)
        assert np.all(result.eccentricities <= truth)

    @given(small_connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_f2_theorem_band(self, g):
        truth = exact_eccentricities(g)
        result = approximate_via_f2(g)
        est = result.eccentricities.astype(np.float64)
        positive = truth > 0
        # floor rounding allows at most 1 below the 7/12 bound
        assert np.all((est[positive] + 1) / truth[positive] > 7.0 / 12.0)
        assert np.all(est[positive] / truth[positive] <= 1.5 + 1e-12)


class TestAnytimeMonotonicity:
    @given(small_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_bounds_tighten_monotonically(self, g):
        truth = exact_eccentricities(g)
        engine = IFECC(g)
        prev_lower = engine.bounds.lower.copy()
        prev_upper = engine.bounds.upper.copy()
        for _snapshot in engine.steps():
            assert np.all(engine.bounds.lower >= prev_lower)
            assert np.all(engine.bounds.upper <= prev_upper)
            assert np.all(engine.bounds.lower <= truth)
            assert np.all(
                engine.bounds.upper.astype(np.int64)
                >= truth.astype(np.int64)
            )
            prev_lower = engine.bounds.lower.copy()
            prev_upper = engine.bounds.upper.copy()
        np.testing.assert_array_equal(engine.bounds.lower, truth)


class TestDiameterEstimators:
    @given(small_connected_graphs(), st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_rv_estimate_bounds(self, g, seed):
        from repro.baselines.rv_diameter import rv_estimate_diameter
        from repro.graph.properties import exact_eccentricities

        truth = int(exact_eccentricities(g).max())
        est = rv_estimate_diameter(g, seed=seed)
        assert est.diameter <= truth
        assert 3 * est.diameter >= 2 * truth

    @given(small_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_opex_matches_oracle(self, g):
        from repro.baselines.henderson import opex_eccentricities
        from repro.graph.properties import exact_eccentricities

        np.testing.assert_array_equal(
            opex_eccentricities(g).eccentricities,
            exact_eccentricities(g),
        )
