"""Tests for the weighted-graph extension (Dijkstra + weighted IFECC)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.errors import (
    DisconnectedGraphError,
    GraphConstructionError,
    InvalidVertexError,
)
from repro.graph.generators import cycle_graph, path_graph
from repro.weighted.dijkstra import dijkstra_distances
from repro.weighted.eccentricity import (
    approximate_weighted_eccentricities,
    naive_weighted_eccentricities,
    weighted_eccentricities,
    weighted_radius_and_diameter,
    weighted_solver,
)
from repro.weighted.graph import WeightedGraph
from helpers import random_connected_graph


def random_weighted_graph(n, extra, seed, max_weight=9):
    base = random_connected_graph(n, extra, seed)
    rng = np.random.default_rng(seed + 1)
    triples = [
        (u, v, int(rng.integers(1, max_weight + 1)))
        for u, v in base.edges()
    ]
    return WeightedGraph.from_edges(triples, num_vertices=n)


def scipy_weighted_distances(graph: WeightedGraph, source: int):
    matrix = sp.csr_matrix(
        (graph.weights, graph.indices, graph.indptr),
        shape=(graph.num_vertices, graph.num_vertices),
    )
    return csgraph.dijkstra(matrix, indices=source)


class TestWeightedGraph:
    def test_from_edges(self):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_duplicate_keeps_minimum(self):
        g = WeightedGraph.from_edges([(0, 1, 5.0), (1, 0, 2.0)])
        nbrs, weights = g.neighbors(0)
        assert weights[0] == 2.0

    def test_self_loop_dropped(self):
        g = WeightedGraph.from_edges([(0, 0, 1.0), (0, 1, 1.0)])
        assert g.num_edges == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphConstructionError):
            WeightedGraph.from_edges([(0, 1, -1.0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphConstructionError):
            WeightedGraph.from_edges([(0, 5, 1.0)], num_vertices=3)

    def test_from_unweighted(self):
        g = WeightedGraph.from_unweighted(cycle_graph(5), weight=2.0)
        assert g.num_edges == 5
        assert np.all(g.weights == 2.0)

    def test_symmetry(self):
        g = WeightedGraph.from_edges([(0, 1, 3.5)])
        n0, w0 = g.neighbors(0)
        n1, w1 = g.neighbors(1)
        assert n0.tolist() == [1] and n1.tolist() == [0]
        assert w0[0] == w1[0] == 3.5

    def test_invalid_vertex(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(InvalidVertexError):
            g.neighbors(4)


class TestDijkstra:
    def test_weighted_path(self):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        np.testing.assert_array_equal(
            dijkstra_distances(g, 0), [0.0, 2.0, 5.0]
        )

    def test_shortcut_chosen(self):
        # direct heavy edge vs two light hops
        g = WeightedGraph.from_edges(
            [(0, 2, 10.0), (0, 1, 2.0), (1, 2, 3.0)]
        )
        assert dijkstra_distances(g, 0)[2] == 5.0

    def test_unreachable_inf(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)], num_vertices=3)
        assert np.isinf(dijkstra_distances(g, 0)[2])

    def test_matches_scipy(self):
        for seed in range(5):
            g = random_weighted_graph(40, 30, seed)
            for source in (0, 20, 39):
                np.testing.assert_allclose(
                    dijkstra_distances(g, source),
                    scipy_weighted_distances(g, source),
                )

    def test_unit_weights_match_bfs(self):
        from repro.graph.traversal import bfs_distances

        base = random_connected_graph(50, 40, seed=2)
        g = WeightedGraph.from_unweighted(base)
        np.testing.assert_array_equal(
            dijkstra_distances(g, 0).astype(int), bfs_distances(base, 0)
        )

    def test_invalid_source(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(InvalidVertexError):
            dijkstra_distances(g, 9)


class TestWeightedIFECC:
    def test_matches_naive_oracle(self):
        for seed in range(6):
            g = random_weighted_graph(45, 35, seed)
            truth = naive_weighted_eccentricities(g)
            result = weighted_eccentricities(g)
            assert result.exact
            np.testing.assert_allclose(result.eccentricities, truth)

    def test_unit_weights_match_unweighted_ifecc(self):
        from repro.core.ifecc import compute_eccentricities

        base = random_connected_graph(60, 45, seed=4)
        weighted = weighted_eccentricities(WeightedGraph.from_unweighted(base))
        unweighted = compute_eccentricities(base)
        np.testing.assert_allclose(
            weighted.eccentricities,
            unweighted.eccentricities.astype(float),
        )

    def test_weighted_path_eccentricities(self):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 5.0)])
        result = weighted_eccentricities(g)
        np.testing.assert_allclose(result.eccentricities, [7.0, 5.0, 7.0])

    def test_fewer_traversals_than_naive(self):
        g = random_weighted_graph(120, 150, seed=7)
        result = weighted_eccentricities(g)
        assert result.num_bfs < g.num_vertices

    def test_float_weights(self):
        g = WeightedGraph.from_edges(
            [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.75)]
        )
        truth = naive_weighted_eccentricities(g)
        result = weighted_eccentricities(g)
        np.testing.assert_allclose(result.eccentricities, truth)

    def test_disconnected_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)], num_vertices=3)
        with pytest.raises(DisconnectedGraphError):
            weighted_eccentricities(g)

    def test_bounds_sandwich(self):
        g = random_weighted_graph(40, 30, seed=9)
        truth = naive_weighted_eccentricities(g)
        result = weighted_eccentricities(g)
        assert np.all(result.lower <= truth + 1e-9)
        assert np.all(result.upper >= truth - 1e-9)


class TestWeightedKIFECC:
    def test_budget_estimate_is_lower_bound(self):
        g = random_weighted_graph(60, 50, seed=3)
        truth = naive_weighted_eccentricities(g)
        for k in (0, 1, 3, 7):
            result = approximate_weighted_eccentricities(g, k=k)
            assert result.num_bfs <= k + 1
            assert np.all(result.eccentricities <= truth + 1e-9)

    def test_exact_at_large_budget(self):
        g = random_weighted_graph(45, 35, seed=6)
        truth = naive_weighted_eccentricities(g)
        result = approximate_weighted_eccentricities(g, k=g.num_vertices)
        assert result.exact
        np.testing.assert_allclose(result.eccentricities, truth)

    def test_algorithm_tag(self):
        g = random_weighted_graph(20, 10, seed=0)
        result = approximate_weighted_eccentricities(g, k=2)
        assert result.algorithm == "kIFECC-weighted(k=2)"

    def test_negative_budget_rejected(self):
        from repro.errors import InvalidParameterError

        g = random_weighted_graph(10, 5, seed=0)
        with pytest.raises(InvalidParameterError):
            approximate_weighted_eccentricities(g, k=-1)


class TestWeightedAnytime:
    def test_steps_snapshots_monotone(self):
        g = random_weighted_graph(80, 90, seed=4)
        truth = naive_weighted_eccentricities(g)
        solver = weighted_solver(g)
        resolved_trace = []
        for snapshot in solver.steps():
            resolved_trace.append(snapshot.resolved)
            assert np.all(solver.bounds.lower <= truth + 1e-9)
            assert np.all(solver.bounds.upper >= truth - 1e-9)
        assert resolved_trace == sorted(resolved_trace)
        assert resolved_trace[-1] == g.num_vertices

    def test_radius_and_diameter(self):
        for seed in range(4):
            g = random_weighted_graph(50, 45, seed)
            truth = naive_weighted_eccentricities(g)
            extremes = weighted_radius_and_diameter(g)
            assert extremes.radius == pytest.approx(truth.min())
            assert extremes.diameter == pytest.approx(truth.max())
            assert truth[extremes.center_vertex] == pytest.approx(
                truth.min()
            )
            assert truth[extremes.peripheral_vertex] == pytest.approx(
                truth.max()
            )

    def test_extremes_early_stop(self):
        g = random_weighted_graph(140, 170, seed=11)
        extremes = weighted_radius_and_diameter(g)
        # Certifying both extremes must undercut the n Dijkstra runs the
        # naive oracle needs.
        assert extremes.num_bfs < g.num_vertices

    def test_extremes_disconnected_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)], num_vertices=3)
        with pytest.raises(DisconnectedGraphError):
            weighted_radius_and_diameter(g)
