"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.counters import TraversalCounter
from repro.graph.engine import BFSRunStats
from repro.graph.msengine import MSBFSRunStats
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DIRECTION_SWITCH_BUCKETS,
    LANE_WIDTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_tracks_extremes(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        gauge.set(9.0)
        snap = gauge.snapshot()
        assert snap["value"] == 9.0
        assert snap["min"] == 2.0
        assert snap["max"] == 9.0

    def test_gauge_first_set_defines_both_extremes(self):
        gauge = Gauge("g")
        gauge.set(-3.0)
        assert gauge.min == gauge.max == -3.0

    def test_histogram_buckets_by_upper_bound(self):
        hist = Histogram("h", bounds=[1.0, 10.0, 100.0])
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        # inclusive upper edges + one overflow bucket
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5
        assert hist.sum == pytest.approx(556.5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[2.0, 1.0])

    def test_default_buckets_increasing_powers_of_two(self):
        assert DEFAULT_SIZE_BUCKETS[0] == 1.0
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(DEFAULT_SIZE_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_ingest_traversal_counter(self):
        registry = MetricsRegistry()
        counter = TraversalCounter()
        counter.record(edges=10, vertices=5, inspected=25)
        counter.record(edges=2, vertices=3, relaxations=7)
        registry.ingest_traversal_counter(counter)
        snap = registry.snapshot()
        assert snap["traversal.runs"]["value"] == 2
        assert snap["traversal.edges_scanned"]["value"] == 12
        assert snap["traversal.edges_inspected"]["value"] == 27
        assert snap["traversal.vertices_visited"]["value"] == 8
        assert snap["traversal.relaxations"]["value"] == 7

    def test_ingest_run_stats(self):
        registry = MetricsRegistry()
        stats = BFSRunStats(
            source=0,
            levels=3,
            edges_scanned=40,
            edges_inspected=90,
            directions=["td", "bu", "bu"],
            frontier_sizes=[4, 100, 2],
        )
        registry.ingest_run_stats(stats)
        snap = registry.snapshot()
        assert snap["bfs.runs"]["value"] == 1
        assert snap["bfs.levels"]["value"] == 3
        assert snap["bfs.levels_bottom_up"]["value"] == 2
        assert snap["bfs.levels_top_down"]["value"] == 1
        assert snap["bfs.frontier_size"]["total"] == 3
        assert snap["bfs.frontier_size"]["sum"] == pytest.approx(106.0)

    def test_snapshot_is_sorted_and_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(1.5)
        snap = registry.snapshot()
        keys = [k for k in snap if snap[k]["type"] == "counter"]
        assert keys == ["a", "b"]
        json.dumps(snap)  # must serialise as-is


def _msbfs_stats(**overrides):
    base = dict(
        num_sources=64,
        lane_words=1,
        levels=3,
        edges_scanned=40,
        edges_inspected=90,
        words_touched=123,
        directions=["td", "bu", "td"],
        live_lanes=[64, 60, 10],
        frontier_sizes=[5, 100, 2],
    )
    base.update(overrides)
    return MSBFSRunStats(**base)


class TestIngestMSBFS:
    def test_counters_and_direction_split(self):
        registry = MetricsRegistry()
        registry.ingest_msbfs_stats(_msbfs_stats())
        snap = registry.snapshot()
        assert snap["msbfs.runs"]["value"] == 1
        assert snap["msbfs.sources"]["value"] == 64
        assert snap["msbfs.words_touched"]["value"] == 123
        assert snap["msbfs.levels_bottom_up"]["value"] == 1
        assert snap["msbfs.levels_top_down"]["value"] == 2

    def test_lane_width_bucket_layout_is_stable(self):
        # The bucket edges are a published contract: snapshots taken by
        # different processes (or releases) must stay bucket-for-bucket
        # comparable, which merge_snapshot enforces by bound equality.
        assert LANE_WIDTH_BUCKETS == (64.0, 128.0, 256.0)
        registry = MetricsRegistry()
        registry.ingest_msbfs_stats(_msbfs_stats(lane_words=1))  # 64 bits
        registry.ingest_msbfs_stats(_msbfs_stats(lane_words=2))  # 128 bits
        registry.ingest_msbfs_stats(_msbfs_stats(lane_words=8))  # overflow
        snap = registry.snapshot()["msbfs.lane_width"]
        assert snap["bounds"] == list(LANE_WIDTH_BUCKETS)
        assert snap["counts"] == [1, 1, 0, 1]
        assert snap["total"] == 3

    def test_direction_switch_bucket_layout_is_stable(self):
        assert DIRECTION_SWITCH_BUCKETS == (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)
        registry = MetricsRegistry()
        # td,bu,td -> 2 switches; td,td,td -> 0; td,bu alternating 7x -> 6.
        registry.ingest_msbfs_stats(_msbfs_stats())
        registry.ingest_msbfs_stats(
            _msbfs_stats(directions=["td", "td", "td"])
        )
        registry.ingest_msbfs_stats(
            _msbfs_stats(directions=["td", "bu"] * 3 + ["td"])
        )
        snap = registry.snapshot()["msbfs.direction_switches"]
        assert snap["bounds"] == list(DIRECTION_SWITCH_BUCKETS)
        assert snap["counts"] == [1, 0, 1, 0, 1, 0, 0]
        assert snap["total"] == 3


class TestMergeSnapshot:
    def test_counters_add(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        b.counter("only_b").inc(1)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["c"]["value"] == 7
        assert snap["only_b"]["value"] == 1

    def test_gauges_preserve_extremes_and_last_value(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("g").set(5.0)
        for value in (-2.0, 11.0, 3.0):
            b.gauge("g").set(value)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()["g"]
        assert snap["min"] == -2.0
        assert snap["max"] == 11.0
        assert snap["value"] == 3.0

    def test_histograms_add_bucket_for_bucket(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for value in (0.5, 100.0):
            a.histogram("h", [1.0, 10.0]).observe(value)
        for value in (5.0, 0.1):
            b.histogram("h", [1.0, 10.0]).observe(value)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()["h"]
        assert snap["counts"] == [2, 1, 1]
        assert snap["total"] == 4
        assert snap["sum"] == pytest.approx(105.6)

    def test_histogram_bound_mismatch_raises(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", [1.0, 10.0]).observe(2.0)
        b.histogram("h", [1.0, 100.0]).observe(2.0)
        with pytest.raises(ValueError, match="bounds"):
            a.merge_snapshot(b.snapshot())

    def test_unknown_instrument_type_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown instrument"):
            registry.merge_snapshot({"x": {"type": "meter", "value": 1}})

    def test_merged_workers_match_single_registry(self):
        # The cross-process contract: per-worker deltas folded into the
        # parent must equal one registry that saw every run directly.
        worker_a = MetricsRegistry()
        worker_b = MetricsRegistry()
        combined = MetricsRegistry()
        stats_a = _msbfs_stats(lane_words=2)
        stats_b = _msbfs_stats(directions=["td", "td", "bu"])
        worker_a.ingest_msbfs_stats(stats_a)
        worker_b.ingest_msbfs_stats(stats_b)
        combined.ingest_msbfs_stats(stats_a)
        combined.ingest_msbfs_stats(stats_b)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker_a.snapshot())
        parent.merge_snapshot(worker_b.snapshot())
        assert parent.snapshot() == combined.snapshot()
