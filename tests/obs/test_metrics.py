"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.counters import TraversalCounter
from repro.graph.engine import BFSRunStats
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_tracks_extremes(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        gauge.set(9.0)
        snap = gauge.snapshot()
        assert snap["value"] == 9.0
        assert snap["min"] == 2.0
        assert snap["max"] == 9.0

    def test_gauge_first_set_defines_both_extremes(self):
        gauge = Gauge("g")
        gauge.set(-3.0)
        assert gauge.min == gauge.max == -3.0

    def test_histogram_buckets_by_upper_bound(self):
        hist = Histogram("h", bounds=[1.0, 10.0, 100.0])
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        # inclusive upper edges + one overflow bucket
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5
        assert hist.sum == pytest.approx(556.5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[2.0, 1.0])

    def test_default_buckets_increasing_powers_of_two(self):
        assert DEFAULT_SIZE_BUCKETS[0] == 1.0
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(DEFAULT_SIZE_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_ingest_traversal_counter(self):
        registry = MetricsRegistry()
        counter = TraversalCounter()
        counter.record(edges=10, vertices=5, inspected=25)
        counter.record(edges=2, vertices=3, relaxations=7)
        registry.ingest_traversal_counter(counter)
        snap = registry.snapshot()
        assert snap["traversal.runs"]["value"] == 2
        assert snap["traversal.edges_scanned"]["value"] == 12
        assert snap["traversal.edges_inspected"]["value"] == 27
        assert snap["traversal.vertices_visited"]["value"] == 8
        assert snap["traversal.relaxations"]["value"] == 7

    def test_ingest_run_stats(self):
        registry = MetricsRegistry()
        stats = BFSRunStats(
            source=0,
            levels=3,
            edges_scanned=40,
            edges_inspected=90,
            directions=["td", "bu", "bu"],
            frontier_sizes=[4, 100, 2],
        )
        registry.ingest_run_stats(stats)
        snap = registry.snapshot()
        assert snap["bfs.runs"]["value"] == 1
        assert snap["bfs.levels"]["value"] == 3
        assert snap["bfs.levels_bottom_up"]["value"] == 2
        assert snap["bfs.levels_top_down"]["value"] == 1
        assert snap["bfs.frontier_size"]["total"] == 3
        assert snap["bfs.frontier_size"]["sum"] == pytest.approx(106.0)

    def test_snapshot_is_sorted_and_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(1.5)
        snap = registry.snapshot()
        keys = [k for k in snap if snap[k]["type"] == "counter"]
        assert keys == ["a", "b"]
        json.dumps(snap)  # must serialise as-is
