"""Unit tests for the span/event tracer (repro.obs.trace)."""

import io
import json

import pytest

from repro.obs.trace import (
    JSONLSink,
    MemorySink,
    NullSink,
    Stopwatch,
    Tracer,
    deterministic_view,
    get_tracer,
    set_tracer,
    stopwatch,
    tracing,
)


class TestSinks:
    def test_null_sink_disables_tracer(self):
        tracer = Tracer(NullSink())
        assert tracer.enabled is False
        tracer.event("ignored", x=1)  # must be a silent no-op

    def test_default_tracer_is_disabled(self):
        assert Tracer().enabled is False

    def test_memory_sink_buffers_in_order(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.event("a", x=1)
        tracer.event("b", x=2)
        assert [e["name"] for e in sink.events] == ["a", "b"]
        assert len(sink) == 2
        assert sink.dropped == 0

    def test_memory_sink_ring_buffer_drops_oldest(self):
        sink = MemorySink(capacity=2)
        tracer = Tracer(sink)
        for i in range(5):
            tracer.event(f"e{i}")
        assert [e["name"] for e in sink.events] == ["e3", "e4"]
        assert sink.dropped == 3

    def test_memory_sink_clear(self):
        sink = MemorySink(capacity=1)
        tracer = Tracer(sink)
        tracer.event("a")
        tracer.event("b")
        sink.clear()
        assert len(sink) == 0
        assert sink.dropped == 0

    def test_jsonl_sink_writes_one_object_per_line(self):
        handle = io.StringIO()
        sink = JSONLSink(handle)
        tracer = Tracer(sink)
        tracer.event("a", value=1)
        tracer.event("b", value=2)
        lines = handle.getvalue().strip().split("\n")
        docs = [json.loads(line) for line in lines]
        assert [d["name"] for d in docs] == ["a", "b"]
        assert docs[0]["value"] == 1

    def test_jsonl_sink_coerces_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        handle = io.StringIO()
        Tracer(JSONLSink(handle)).event("a", value=np.int32(7))
        assert json.loads(handle.getvalue())["value"] == 7

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JSONLSink(str(path)) as sink:
            Tracer(sink).event("a")
        assert json.loads(path.read_text())["name"] == "a"


class TestSpans:
    def test_span_emitted_on_exit_with_timing(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work", tag="x") as span:
            span.set(extra=1)
        (event,) = sink.events
        assert event["kind"] == "span"
        assert event["name"] == "work"
        assert event["tag"] == "x"
        assert event["extra"] == 1
        assert event["dur"] >= 0.0
        assert event["parent"] is None

    def test_nested_spans_record_parent_seq(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            tracer.event("inner-event")
            with tracer.span("inner"):
                pass
        by_name = {e["name"]: e for e in sink.events}
        assert by_name["inner-event"]["parent"] == outer.seq
        assert by_name["inner"]["parent"] == outer.seq
        assert by_name["outer"]["parent"] is None

    def test_span_seq_orders_by_completion(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # inner finishes first, so it lands in the sink first, but the
        # outer span opened first and owns the smaller seq.
        inner, outer = sink.events
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["seq"] < inner["seq"]

    def test_failed_span_flagged(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (event,) = sink.events
        assert event["failed"] is True

    def test_explicit_finish(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        span = tracer.span("work")
        span.set(result=3)
        span.finish()
        (event,) = sink.events
        assert event["result"] == 3
        assert "failed" not in event

    def test_disabled_tracer_returns_shared_noop_span(self):
        tracer = Tracer()
        a = tracer.span("x")
        b = tracer.span("y")
        assert a is b
        with a as span:
            span.set(anything=1).finish()  # all no-ops


class TestActiveTracer:
    def test_default_active_tracer_disabled(self):
        assert get_tracer().enabled is False

    def test_tracing_installs_and_restores(self):
        before = get_tracer()
        sink = MemorySink()
        with tracing(sink) as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled is True
        assert get_tracer() is before

    def test_tracing_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing(MemorySink()):
                raise RuntimeError
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        first = get_tracer()
        replacement = Tracer(MemorySink())
        previous = set_tracer(replacement)
        try:
            assert previous is first
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)


class TestStopwatch:
    def test_elapsed_is_monotone_nonnegative(self):
        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0.0 <= first <= second

    def test_restart_resets(self):
        watch = Stopwatch()
        for _ in range(1000):
            pass
        watch.restart()
        assert watch.elapsed() < 1.0

    def test_factory(self):
        assert isinstance(stopwatch(), Stopwatch)


class TestDeterministicView:
    def test_strips_only_timing_keys(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.event("a", x=1)
        with tracer.span("b", y=2):
            pass
        view = deterministic_view(sink.events)
        assert view[0] == {
            "kind": "event",
            "seq": 1,
            "name": "a",
            "parent": None,
            "x": 1,
        }
        assert "t0" not in view[1] and "dur" not in view[1]
        assert view[1]["y"] == 2
        # the original events keep their timing keys
        assert "t" in sink.events[0]
