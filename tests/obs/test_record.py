"""Round-trip tests for the versioned run record (repro.obs.record)."""

import json

import pytest

from repro import IFECC
from repro.errors import InvalidParameterError
from repro.graph.generators import barabasi_albert
from repro.obs.record import (
    RECORD_SCHEMA,
    RECORD_VERSION,
    RunRecord,
    graph_fingerprint,
)
from repro.obs.trace import MemorySink, tracing


@pytest.fixture(scope="module")
def traced_run(example_graph):
    """One IFECC run on the paper graph with the tracer capturing."""
    sink = MemorySink()
    with tracing(sink) as tracer:
        result = IFECC(example_graph).run()
    record = RunRecord.from_run(
        result,
        example_graph,
        sink.events,
        config={"command": "ecc", "references": 16},
        metrics=tracer.metrics.snapshot(),
    )
    return result, record


class TestGraphFingerprint:
    def test_same_graph_same_digest(self, example_graph):
        first = graph_fingerprint(example_graph)
        second = graph_fingerprint(example_graph)
        assert first == second
        assert first["num_vertices"] == example_graph.num_vertices
        assert len(first["digest"]) == 16

    def test_different_graphs_differ(self, example_graph):
        other = barabasi_albert(50, 2, seed=7)
        assert (
            graph_fingerprint(example_graph)["digest"]
            != graph_fingerprint(other)["digest"]
        )


class TestRoundTrip:
    def test_write_read_preserves_document(self, traced_run, tmp_path):
        _, record = traced_run
        path = tmp_path / "run.jsonl"
        record.write_jsonl(str(path))
        loaded = RunRecord.read_jsonl(str(path))
        assert loaded.algorithm == record.algorithm
        assert loaded.graph == record.graph
        assert loaded.config == record.config
        assert loaded.counters == record.counters
        assert loaded.metrics == record.metrics
        assert loaded.result == record.result
        assert loaded.wall_seconds == record.wall_seconds
        assert loaded.version == RECORD_VERSION
        # events survive byte-for-byte modulo JSON number coercion
        assert json.loads(json.dumps(record.events)) == loaded.events

    def test_record_matches_live_result(self, traced_run, tmp_path):
        """The saved record replays exactly what the live run reported."""
        result, record = traced_run
        path = tmp_path / "run.jsonl"
        record.write_jsonl(str(path))
        loaded = RunRecord.read_jsonl(str(path))

        assert loaded.result["num_traversals"] == result.num_bfs
        assert loaded.result["radius"] == result.radius
        assert loaded.result["diameter"] == result.diameter
        assert loaded.result["exact"] is result.exact
        assert loaded.result["resolved"] == result.num_vertices
        assert loaded.counters["traversal_runs"] == result.counter.bfs_runs

        probes = loaded.probe_events()
        assert len(probes) == result.num_bfs

        # Per-traversal resolved counts must match a fresh live run's
        # progress snapshots (IFECC is deterministic).
        from repro.graph.generators import paper_example_graph

        live = [s.resolved for s in IFECC(paper_example_graph()).steps()]
        assert [p["resolved"] for p in probes] == live
        assert probes[-1]["resolved"] == result.num_vertices

    def test_missing_footer_tolerated(self, traced_run, tmp_path):
        _, record = traced_run
        path = tmp_path / "run.jsonl"
        record.write_jsonl(str(path))
        lines = path.read_text().strip().split("\n")
        truncated = tmp_path / "crashed.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        loaded = RunRecord.read_jsonl(str(truncated))
        assert loaded.result == {}
        assert loaded.counters == {}
        assert len(loaded.events) == len(record.events)

    def test_torn_final_line_dropped(self, traced_run, tmp_path):
        """A crash mid-write leaves a truncated last line; the prefix
        must stay readable with that fragment dropped."""
        _, record = traced_run
        path = tmp_path / "run.jsonl"
        record.write_jsonl(str(path))
        lines = path.read_text().strip().split("\n")
        # Drop the footer, then tear the last event line in half.
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            "\n".join(lines[:-2]) + "\n" + lines[-2][: len(lines[-2]) // 2]
        )
        loaded = RunRecord.read_jsonl(str(torn))
        assert loaded.result == {}
        assert loaded.counters == {}
        assert len(loaded.events) == len(record.events) - 1

    def test_corruption_before_final_line_raises(self, traced_run, tmp_path):
        _, record = traced_run
        path = tmp_path / "run.jsonl"
        record.write_jsonl(str(path))
        lines = path.read_text().strip().split("\n")
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear a middle line
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            RunRecord.read_jsonl(str(bad))

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "footer", "result": {}}\n')
        with pytest.raises(InvalidParameterError):
            RunRecord.read_jsonl(str(path))

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema": "other/thing"}) + "\n"
        )
        with pytest.raises(InvalidParameterError):
            RunRecord.read_jsonl(str(path))

    def test_rejects_newer_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "header",
                    "schema": RECORD_SCHEMA,
                    "version": RECORD_VERSION + 1,
                }
            )
            + "\n"
        )
        with pytest.raises(InvalidParameterError):
            RunRecord.read_jsonl(str(path))


class TestSummarize:
    def test_summary_shows_convergence_and_final(self, traced_run):
        result, record = traced_run
        text = record.summarize()
        assert f"algorithm={record.algorithm}" in text
        assert "convergence:" in text
        assert f"radius={result.radius}" in text
        assert f"diameter={result.diameter}" in text
        assert record.graph["digest"] in text
        assert "config: command=ecc references=16" in text
        # one table row per traversal
        rows = [
            line
            for line in text.split("\n")
            if line.startswith("  ") and "source" not in line
        ]
        assert len(rows) == result.num_bfs
