"""Unit tests for the live convergence monitor (repro.obs.progress)."""

from __future__ import annotations

import io

from repro.graph.generators import paper_example_graph
from repro.obs.progress import ProgressMonitor, ProgressState
from repro.obs.trace import MemorySink, tracing


def _probe(seq, traversals, resolved, remaining, gap, t):
    return {
        "kind": "span",
        "seq": seq,
        "parent": None,
        "name": "solver.probe",
        "traversals": traversals,
        "resolved": resolved,
        "remaining": remaining,
        "gap": gap,
        "t0": t,
        "dur": 0.0,
    }


class TestStateFromEvents:
    def test_probe_events_drive_resolution(self):
        states = []
        monitor = ProgressMonitor(
            stream=io.StringIO(), callback=states.append
        )
        monitor.emit(_probe(1, 1, 4, 9, 40, t=10.0))
        monitor.emit(_probe(2, 2, 10, 3, 9, t=11.0))
        assert len(states) == 2
        last = states[-1]
        assert last.traversals == 2
        assert last.resolved == 10
        assert last.num_vertices == 13
        assert last.gap_mass == 9.0
        assert last.fraction_resolved() == 10 / 13

    def test_engine_events_count_traversals(self):
        monitor = ProgressMonitor(stream=io.StringIO())
        monitor.emit({"kind": "event", "name": "bfs.run", "t": 1.0})
        monitor.emit(
            {"kind": "event", "name": "msbfs.run", "num_sources": 64,
             "t": 1.5}
        )
        assert monitor.state.traversals == 65
        assert monitor.state.resolved is None
        assert monitor.state.fraction_resolved() is None

    def test_traversals_is_max_of_probe_and_engine_counts(self):
        # Probe spans and engine events describe the *same* traversals;
        # the monitor must not add them together.
        monitor = ProgressMonitor(stream=io.StringIO())
        monitor.emit({"kind": "event", "name": "bfs.run", "t": 1.0})
        monitor.emit(_probe(2, 1, 4, 9, 40, t=1.1))
        assert monitor.state.traversals == 1

    def test_parallel_batch_span_not_double_counted(self):
        monitor = ProgressMonitor(stream=io.StringIO())
        monitor.emit({"kind": "event", "name": "bfs.run", "t": 1.0})
        monitor.emit(
            {"kind": "span", "name": "parallel.batch", "traversals": 50,
             "t0": 1.0, "dur": 0.5}
        )
        assert monitor.state.traversals == 1

    def test_solver_run_span_finishes(self):
        states = []
        monitor = ProgressMonitor(
            stream=io.StringIO(), callback=states.append
        )
        monitor.emit(_probe(1, 3, 13, 0, 0, t=5.0))
        monitor.emit(
            {"kind": "span", "name": "solver.run", "traversals": 3,
             "t0": 4.0, "dur": 1.5}
        )
        assert states[-1].finished is True
        assert states[-1].eta_seconds == 0.0


class TestClockAndEta:
    def test_elapsed_and_rate_use_event_timestamps(self):
        monitor = ProgressMonitor(stream=io.StringIO())
        monitor.emit(_probe(1, 1, 1, 12, 100, t=100.0))
        monitor.emit(_probe(2, 5, 6, 7, 50, t=102.0))
        assert monitor.state.elapsed == 2.0
        assert monitor.state.rate == 2.5

    def test_eta_extrapolates_resolution_rate(self):
        monitor = ProgressMonitor(stream=io.StringIO())
        monitor.emit(_probe(1, 1, 0, 12, 100, t=0.0))
        monitor.emit(_probe(2, 2, 6, 6, 50, t=4.0))
        # Half resolved after 4s -> another 4s to go.
        assert monitor.state.eta_seconds == 4.0


class TestRendering:
    def test_render_line_contents(self):
        stream = io.StringIO()
        monitor = ProgressMonitor(stream=stream, interval=0.0)
        monitor.emit(_probe(1, 2, 10, 3, 9, t=1.0))
        text = stream.getvalue()
        assert "[progress]" in text
        assert "trav 2" in text
        assert "resolved 10/13 (76.9%)" in text
        assert "gap 9" in text

    def test_interval_throttles_rendering_but_not_callback(self):
        stream = io.StringIO()
        states = []
        monitor = ProgressMonitor(
            stream=stream, interval=10.0, callback=states.append
        )
        monitor.emit(_probe(1, 1, 1, 12, 90, t=0.0))  # first always draws
        first = stream.getvalue()
        monitor.emit(_probe(2, 2, 2, 11, 80, t=1.0))  # within interval
        assert stream.getvalue() == first
        assert len(states) == 2

    def test_finish_renders_done_with_newline(self):
        stream = io.StringIO()
        monitor = ProgressMonitor(stream=stream, interval=10.0)
        monitor.emit(_probe(1, 1, 1, 12, 90, t=0.0))
        monitor.emit(
            {"kind": "span", "name": "solver.run", "t0": 0.0, "dur": 2.0}
        )
        assert "done" in stream.getvalue()
        assert stream.getvalue().endswith("\n")

    def test_close_finalises_unfinished_line(self):
        stream = io.StringIO()
        monitor = ProgressMonitor(stream=stream, interval=0.0)
        monitor.emit(_probe(1, 1, 1, 12, 90, t=0.0))
        assert not stream.getvalue().endswith("\n")
        monitor.close()
        assert stream.getvalue().endswith("\n")
        # Idempotent once finished.
        monitor.close()
        assert stream.getvalue().count("\n") == 1

    def test_close_without_render_writes_nothing(self):
        stream = io.StringIO()
        ProgressMonitor(stream=stream).close()
        assert stream.getvalue() == ""


class TestComposition:
    def test_forward_tees_events_unchanged(self):
        capture = MemorySink()
        monitor = ProgressMonitor(stream=io.StringIO(), forward=capture)
        event = _probe(1, 1, 4, 9, 40, t=1.0)
        monitor.emit(event)
        assert capture.events == [event]

    def test_monitor_as_live_sink_for_a_real_run(self):
        from repro import IFECC

        states = []
        monitor = ProgressMonitor(
            stream=io.StringIO(), callback=states.append
        )
        graph = paper_example_graph()
        with tracing(monitor):
            result = IFECC(graph).run()
        assert states[-1].finished is True
        assert states[-1].traversals == result.num_bfs
        assert states[-1].resolved == graph.num_vertices
        assert states[-1].fraction_resolved() == 1.0
        assert states[-1].gap_mass == 0.0


class TestProgressState:
    def test_defaults(self):
        state = ProgressState()
        assert state.traversals == 0
        assert state.finished is False
        assert state.fraction_resolved() is None
