"""Trace determinism: identical runs emit identical event sequences.

The tracer strips wall-clock keys via ``deterministic_view``; what is
left — span nesting, sources probed, bounds resolved per traversal,
per-level BFS direction decisions — is a pure function of the graph and
the algorithm.  Two back-to-back runs must agree exactly, and the
sequence is pinned against a golden trace so an accidental change to
probe order or event schema fails loudly.
"""

import json
from pathlib import Path

from repro import IFECC
from repro.graph.generators import paper_example_graph
from repro.obs.trace import MemorySink, deterministic_view, tracing

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "golden_trace.json"


def _traced_events():
    sink = MemorySink()
    with tracing(sink):
        IFECC(paper_example_graph()).run()
    return sink.events


def _normalized(events):
    """JSON round-trip so tuples/lists and int widths compare equal."""
    return json.loads(json.dumps(deterministic_view(events)))


class TestTraceDeterminism:
    def test_two_runs_identical_modulo_timestamps(self):
        first = _traced_events()
        second = _traced_events()
        assert _normalized(first) == _normalized(second)
        # ... while the raw events DO differ (wall-clock keys present),
        # proving deterministic_view is what establishes equality.
        assert any("t" in e or "t0" in e for e in first)

    def test_matches_golden_trace(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        live = _normalized(_traced_events())
        assert live == golden

    def test_golden_trace_shape(self):
        """Sanity-pin the golden file itself: probes, bfs runs, one root."""
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        names = [e["name"] for e in golden]
        assert names.count("solver.probe") == names.count("bfs.run")
        assert names.count("solver.run") == 1
        roots = [e for e in golden if e["parent"] is None]
        assert [e["name"] for e in roots] == ["solver.run"]
