"""Unit tests for the dataset registry (Table 3)."""

import pytest

from repro.datasets.registry import (
    DATASETS,
    dataset_names,
    get_spec,
    paper_table3,
)
from repro.errors import DatasetNotFoundError


class TestRegistryContents:
    def test_twenty_datasets(self):
        assert len(DATASETS) == 20

    def test_twelve_small_eight_large(self):
        assert len(dataset_names("small")) == 12
        assert len(dataset_names("large")) == 8

    def test_paper_order_preserved(self):
        names = dataset_names()
        assert names[0] == "DBLP"
        assert names[-1] == "UKUN"
        assert names[:3] == ["DBLP", "GP", "YOUT"]

    def test_paper_m_increasing(self):
        # Table 3 is sorted by edge count.
        ms = [DATASETS[n].paper_m for n in dataset_names()]
        assert ms == sorted(ms)

    def test_known_paper_stats(self):
        dblp = get_spec("DBLP")
        assert dblp.paper_n == 317_080
        assert dblp.paper_m == 1_049_866
        assert dblp.paper_radius == 12
        assert dblp.paper_diameter == 23
        assert dblp.kind == "Social"
        ukun = get_spec("UKUN")
        assert ukun.paper_m == 4_653_174_411
        assert ukun.paper_diameter == 257

    def test_family_matches_kind(self):
        # Social/internet/contact networks are heavy-tailed -> BA;
        # web graphs use the copying model.
        for spec in DATASETS.values():
            expected = "copy" if spec.kind == "Web" else "ba"
            assert spec.family == expected, spec.name

    def test_periphery_style_matches_group(self):
        for spec in DATASETS.values():
            expected = "handles" if spec.group == "small" else "trap"
            assert spec.periphery == expected, spec.name

    def test_seeds_unique(self):
        seeds = [s.seed for s in DATASETS.values()]
        assert len(seeds) == len(set(seeds))

    def test_standin_sizes_ordered_by_group(self):
        small_max = max(DATASETS[n].standin_n for n in dataset_names("small"))
        large_min = min(DATASETS[n].standin_n for n in dataset_names("large"))
        assert small_max < large_min


class TestLookup:
    def test_get_spec(self):
        assert get_spec("TWIT").full_name == "Twitter"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetNotFoundError):
            get_spec("NOPE")

    def test_unknown_group(self):
        with pytest.raises(DatasetNotFoundError):
            dataset_names("medium")


class TestTable3Export:
    def test_rows(self):
        rows = paper_table3()
        assert len(rows) == 20
        name, full, n, m, r, d, kind = rows[0]
        assert (name, full) == ("DBLP", "DBLP")
        assert (n, m, r, d, kind) == (317_080, 1_049_866, 12, 23, "Social")
