"""Unit tests for the dataset stand-in loader."""

import numpy as np
import pytest

from repro.datasets.loader import build_standin, clear_cache, load_dataset
from repro.datasets.registry import get_spec
from repro.errors import DatasetNotFoundError
from repro.graph.components import is_connected


class TestBuildStandin:
    def test_connected(self):
        g = build_standin(get_spec("DBLP"))
        assert is_connected(g)

    def test_size_near_target(self):
        spec = get_spec("DBLP")
        g = build_standin(spec)
        # the periphery adds vertices, the LCC extraction may shave a few
        assert 0.9 * spec.standin_n <= g.num_vertices <= 1.6 * spec.standin_n

    def test_deterministic(self):
        spec = get_spec("GP")
        assert build_standin(spec) == build_standin(spec)

    def test_heavy_tailed_core(self):
        # Both families must produce hubby, heavy-tailed cores.
        import numpy as np

        for name in ("DBLP", "STAC", "HUDO"):
            g = build_standin(get_spec(name))
            assert g.degrees.max() >= 5 * np.median(g.degrees), name

    def test_small_world_shape(self):
        # stand-ins must show the core-periphery property the paper's
        # analysis depends on: small |F2| relative to n.
        from repro.analysis.stats import farthest_set_statistics

        stats = farthest_set_statistics(build_standin(get_spec("HUDO")))
        assert stats.f2_fraction < 0.2


class TestLoadDataset:
    def test_cached_identity(self):
        clear_cache()
        a = load_dataset("DBLP")
        b = load_dataset("DBLP")
        assert a is b

    def test_unknown_name(self):
        with pytest.raises(DatasetNotFoundError):
            load_dataset("MISSING")

    def test_disk_cache_roundtrip(self, tmp_path):
        clear_cache()
        a = load_dataset("GP", cache_dir=str(tmp_path))
        clear_cache()
        b = load_dataset("GP", cache_dir=str(tmp_path))
        assert a == b
        assert (tmp_path / "gp_standin.npz").exists()

    def test_clear_cache(self):
        a = load_dataset("DBLP")
        clear_cache()
        b = load_dataset("DBLP")
        assert a is not b
        assert a == b


class TestScaledLoading:
    def test_scale_changes_size(self):
        from repro.datasets.loader import load_dataset

        clear_cache()
        full = load_dataset("DBLP")
        half = load_dataset("DBLP", scale=0.5)
        assert half.num_vertices < full.num_vertices
        assert half.num_vertices > 0.3 * full.num_vertices

    def test_scaled_variants_cached_separately(self):
        from repro.datasets.loader import load_dataset

        clear_cache()
        a = load_dataset("GP", scale=0.5)
        b = load_dataset("GP")
        c = load_dataset("GP", scale=0.5)
        assert a is c
        assert a is not b

    def test_scaled_spec_preserves_structure(self):
        from repro.analysis.stats import farthest_set_statistics
        from repro.datasets.loader import build_standin, scaled_spec

        spec = scaled_spec(get_spec("HUDO"), 0.5)
        g = build_standin(spec)
        assert farthest_set_statistics(g).f2_fraction < 0.2

    def test_invalid_scale(self):
        from repro.datasets.loader import scaled_spec

        with pytest.raises(ValueError):
            scaled_spec(get_spec("DBLP"), 0.0)
