"""Unit tests for the BoundECC (Takes & Kosters 2013) baseline."""

import numpy as np
import pytest

from repro.baselines.boundecc import boundecc_eccentricities
from repro.graph.generators import complete_graph, grid_graph, path_graph
from repro.graph.properties import exact_eccentricities
from helpers import random_connected_graph


class TestBoundECC:
    def test_paper_example(self, example_graph, example_eccentricities):
        result = boundecc_eccentricities(example_graph)
        assert result.exact
        np.testing.assert_array_equal(
            result.eccentricities, example_eccentricities
        )

    def test_social_graph(self, social_graph, social_truth):
        result = boundecc_eccentricities(social_graph)
        np.testing.assert_array_equal(result.eccentricities, social_truth)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(12),
            lambda: grid_graph(4, 5),
            lambda: complete_graph(6),
        ],
        ids=["path", "grid", "complete"],
    )
    def test_structured(self, factory):
        g = factory()
        result = boundecc_eccentricities(g)
        np.testing.assert_array_equal(
            result.eccentricities, exact_eccentricities(g)
        )

    def test_random_graphs(self):
        for seed in range(5):
            g = random_connected_graph(60, 40, seed)
            result = boundecc_eccentricities(g)
            np.testing.assert_array_equal(
                result.eccentricities, exact_eccentricities(g)
            )

    def test_fewer_bfs_than_naive(self, social_graph):
        result = boundecc_eccentricities(social_graph)
        assert result.num_bfs < social_graph.num_vertices

    def test_slower_than_ifecc_in_bfs(self, social_graph):
        # Figure 8's ordering: IFECC-1 needs fewer traversals.
        from repro.core.ifecc import compute_eccentricities

        bound = boundecc_eccentricities(social_graph)
        ifecc = compute_eccentricities(social_graph)
        assert ifecc.num_bfs <= bound.num_bfs

    def test_budget_capped_run(self, social_graph, social_truth):
        result = boundecc_eccentricities(social_graph, max_bfs=3)
        assert not result.exact
        assert result.num_bfs == 3
        assert np.all(result.lower <= social_truth)

    def test_algorithm_tag(self, example_graph):
        assert boundecc_eccentricities(example_graph).algorithm == "BoundECC"
