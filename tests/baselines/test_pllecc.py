"""Unit tests for the PLLECC baseline (Algorithm 1)."""

import numpy as np
import pytest

from repro.baselines.pllecc import pllecc_eccentricities
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import grid_graph, path_graph
from repro.graph.properties import exact_eccentricities
from repro.pll.index import build_pll_index
from helpers import random_connected_graph


class TestExactness:
    def test_paper_example(self, example_graph, example_eccentricities):
        report = pllecc_eccentricities(example_graph, num_references=2)
        assert report.result.exact
        np.testing.assert_array_equal(
            report.result.eccentricities, example_eccentricities
        )

    def test_social_graph(self, social_graph, social_truth):
        report = pllecc_eccentricities(social_graph, num_references=16)
        np.testing.assert_array_equal(
            report.result.eccentricities, social_truth
        )

    @pytest.mark.parametrize("r", [1, 2, 8, 16])
    def test_reference_counts(self, web_graph, web_truth, r):
        report = pllecc_eccentricities(web_graph, num_references=r)
        np.testing.assert_array_equal(
            report.result.eccentricities, web_truth
        )

    def test_structured(self):
        for factory in (lambda: path_graph(10), lambda: grid_graph(4, 4)):
            g = factory()
            report = pllecc_eccentricities(g, num_references=2)
            np.testing.assert_array_equal(
                report.result.eccentricities, exact_eccentricities(g)
            )

    def test_random_graphs(self):
        for seed in range(4):
            g = random_connected_graph(50, 35, seed)
            report = pllecc_eccentricities(g, num_references=4)
            np.testing.assert_array_equal(
                report.result.eccentricities, exact_eccentricities(g)
            )


class TestStages:
    def test_pll_stage_dominates(self, social_graph):
        # The paper: index construction is > 41x the ECC stage.  At our
        # scale we only assert the direction.
        report = pllecc_eccentricities(social_graph, num_references=16)
        assert report.pll_seconds > report.ecc_seconds

    def test_prebuilt_index_skips_pll_stage(self, example_graph):
        index = build_pll_index(example_graph)
        report = pllecc_eccentricities(
            example_graph, num_references=2, index=index
        )
        assert report.pll_seconds == 0.0
        assert report.index_bytes == index.size_bytes()

    def test_index_stats_reported(self, example_graph):
        report = pllecc_eccentricities(example_graph, num_references=2)
        assert report.index_bytes > 0
        assert report.index_entries >= example_graph.num_vertices
        assert report.probes > 0

    def test_bfs_only_for_references(self, social_graph):
        report = pllecc_eccentricities(social_graph, num_references=4)
        assert report.result.num_bfs == 4


class TestValidation:
    def test_zero_references_rejected(self, example_graph):
        with pytest.raises(InvalidParameterError):
            pllecc_eccentricities(example_graph, num_references=0)

    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            pllecc_eccentricities(g, num_references=1)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            pllecc_eccentricities(
                Graph.from_edges([], num_vertices=0), num_references=1
            )
