"""Tests for the Roditty–Williams diameter estimator and OPEX."""

import numpy as np
import pytest

from repro.baselines.henderson import opex_eccentricities
from repro.baselines.rv_diameter import rv_estimate_diameter
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.properties import exact_eccentricities
from helpers import random_connected_graph


class TestRVDiameter:
    def test_lower_bound_and_guarantee(self, social_graph, social_truth):
        true_dia = int(social_truth.max())
        for seed in range(5):
            est = rv_estimate_diameter(social_graph, seed=seed)
            assert est.diameter <= true_dia
            # the 2/3 guarantee (w.h.p.; deterministic here since the
            # double-sweep tail usually nails small-world diameters)
            assert 3 * est.diameter >= 2 * true_dia

    def test_double_sweep_tail_often_exact(self, social_graph, social_truth):
        est = rv_estimate_diameter(social_graph, seed=1)
        assert est.diameter == int(social_truth.max())

    def test_bounds_bracket(self, web_graph, web_truth):
        est = rv_estimate_diameter(web_graph, seed=2)
        true_dia = int(web_truth.max())
        assert est.lower_bound() <= true_dia <= est.upper_bound()

    def test_default_sample_size(self):
        g = random_connected_graph(100, 80, seed=3)
        est = rv_estimate_diameter(g, seed=0)
        assert 1 <= est.sample_size <= 100

    def test_explicit_sample_size_clamped(self):
        g = path_graph(6)
        est = rv_estimate_diameter(g, sample_size=100, seed=0)
        assert est.sample_size == 6
        assert est.diameter == 5  # full sample = exact

    def test_random_graphs_guarantee(self):
        for seed in range(6):
            g = random_connected_graph(60, 45, seed)
            truth = int(exact_eccentricities(g).max())
            est = rv_estimate_diameter(g, seed=seed)
            assert est.diameter <= truth
            assert 3 * est.diameter >= 2 * truth

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            rv_estimate_diameter(Graph.from_edges([], num_vertices=0))
        with pytest.raises(InvalidParameterError):
            rv_estimate_diameter(path_graph(3), sample_size=0)


class TestOPEX:
    def test_exact_on_fixtures(self, social_graph, social_truth):
        result = opex_eccentricities(social_graph)
        assert result.exact
        np.testing.assert_array_equal(result.eccentricities, social_truth)

    def test_structured(self):
        for g in (path_graph(9), cycle_graph(8)):
            np.testing.assert_array_equal(
                opex_eccentricities(g).eccentricities,
                exact_eccentricities(g),
            )

    def test_budget(self, social_graph):
        result = opex_eccentricities(social_graph, max_bfs=2)
        assert not result.exact
        assert result.num_bfs == 2

    def test_algorithm_tag(self):
        assert opex_eccentricities(path_graph(3)).algorithm == "OPEX"
