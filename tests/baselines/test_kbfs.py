"""Unit tests for the kBFS (Shun 2015) approximate baseline."""

import numpy as np
import pytest

from repro.baselines.kbfs import kbfs_eccentricities
from repro.errors import InvalidParameterError
from repro.graph.generators import path_graph


class TestEstimates:
    def test_lower_bound_estimate(self, social_graph, social_truth):
        result = kbfs_eccentricities(social_graph, k=8, seed=1)
        assert np.all(result.eccentricities <= social_truth)

    def test_sampled_sources_exact(self, social_graph, social_truth):
        result = kbfs_eccentricities(social_graph, k=8, seed=2)
        for s in result.reference_nodes:
            assert result.eccentricities[s] == social_truth[s]

    def test_budget_respected(self, social_graph):
        result = kbfs_eccentricities(social_graph, k=10, seed=0)
        # k source BFS + one multi-source election sweep
        assert result.num_bfs <= 10 + 1

    def test_k_exceeding_n_clamped(self):
        g = path_graph(5)
        result = kbfs_eccentricities(g, k=100, seed=0)
        assert result.num_bfs <= 5 + 1

    def test_seed_changes_sample(self, social_graph):
        a = kbfs_eccentricities(social_graph, k=4, seed=1)
        b = kbfs_eccentricities(social_graph, k=4, seed=2)
        assert sorted(a.reference_nodes.tolist()) != sorted(
            b.reference_nodes.tolist()
        )

    def test_seeded_reproducible(self, social_graph):
        a = kbfs_eccentricities(social_graph, k=4, seed=7)
        b = kbfs_eccentricities(social_graph, k=4, seed=7)
        np.testing.assert_array_equal(a.eccentricities, b.eccentricities)

    def test_not_monotone_unlike_kifecc(self, web_graph, web_truth):
        # kBFS resamples per k, so accuracy can drop as k grows — the
        # instability of Figure 11.  We assert its accuracy *sequence*
        # is not guaranteed monotone by checking independence of runs;
        # monotonicity may happen by luck on one graph, so instead we
        # check the defining property: the source sets of different k
        # are not nested.
        small = set(
            kbfs_eccentricities(web_graph, k=4, seed=3).reference_nodes.tolist()
        )
        large = set(
            kbfs_eccentricities(web_graph, k=8, seed=3).reference_nodes.tolist()
        )
        assert not small <= large

    def test_election_targets_periphery(self, social_graph, social_truth):
        # Elected sources should include high-eccentricity vertices.
        result = kbfs_eccentricities(social_graph, k=10, seed=4)
        sources_ecc = social_truth[result.reference_nodes]
        assert sources_ecc.max() >= np.percentile(social_truth, 90)


class TestValidation:
    def test_k_zero_rejected(self, social_graph):
        with pytest.raises(InvalidParameterError):
            kbfs_eccentricities(social_graph, k=0)

    def test_empty_graph_rejected(self):
        from repro.graph.csr import Graph

        with pytest.raises(InvalidParameterError):
            kbfs_eccentricities(Graph.from_edges([], num_vertices=0), k=1)

    def test_algorithm_tag(self, social_graph):
        assert (
            kbfs_eccentricities(social_graph, k=2, seed=0).algorithm
            == "kBFS(k=2)"
        )
