"""Unit tests for the SNAP sampling diameter estimator (case study)."""

import numpy as np
import pytest

from repro.baselines.snap_diameter import snap_estimate_diameter
from repro.errors import InvalidParameterError
from repro.graph.generators import path_graph


class TestEstimator:
    def test_underestimates_or_matches(self, social_graph, social_truth):
        true_diameter = int(social_truth.max())
        for seed in range(5):
            estimate = snap_estimate_diameter(
                social_graph, sample_size=10, seed=seed
            )
            assert estimate.diameter <= true_diameter

    def test_full_sample_exact(self, social_graph, social_truth):
        estimate = snap_estimate_diameter(
            social_graph, sample_size=social_graph.num_vertices, seed=0
        )
        assert estimate.diameter == int(social_truth.max())

    def test_sample_clamped_to_n(self):
        g = path_graph(6)
        estimate = snap_estimate_diameter(g, sample_size=100, seed=0)
        assert estimate.sample_size == 6
        assert estimate.diameter == 5

    def test_accuracy_metric(self):
        g = path_graph(11)  # diameter 10
        estimate = snap_estimate_diameter(g, sample_size=11, seed=0)
        assert estimate.accuracy_against(10) == 100.0

    def test_accuracy_of_underestimate(self, social_graph, social_truth):
        estimate = snap_estimate_diameter(social_graph, sample_size=5, seed=1)
        acc = estimate.accuracy_against(int(social_truth.max()))
        assert 0 < acc <= 100.0

    def test_seeded_reproducible(self, social_graph):
        a = snap_estimate_diameter(social_graph, sample_size=8, seed=9)
        b = snap_estimate_diameter(social_graph, sample_size=8, seed=9)
        assert a.diameter == b.diameter
        np.testing.assert_array_equal(a.sources, b.sources)

    def test_sources_distinct(self, social_graph):
        estimate = snap_estimate_diameter(social_graph, sample_size=20, seed=2)
        assert len(set(estimate.sources.tolist())) == 20

    def test_small_samples_usually_miss_diameter(
        self, social_graph, social_truth
    ):
        # Exp-3's argument: diameter-realising vertices are rare, so tiny
        # uniform samples rarely hit the exact diameter.  With sample
        # size 2 across many seeds, at least one run must miss.
        true_diameter = int(social_truth.max())
        hits = [
            snap_estimate_diameter(social_graph, 2, seed=s).diameter
            == true_diameter
            for s in range(10)
        ]
        assert not all(hits)


class TestValidation:
    def test_zero_sample_rejected(self, social_graph):
        with pytest.raises(InvalidParameterError):
            snap_estimate_diameter(social_graph, sample_size=0)

    def test_empty_graph_rejected(self):
        from repro.graph.csr import Graph

        with pytest.raises(InvalidParameterError):
            snap_estimate_diameter(Graph.from_edges([], num_vertices=0))
