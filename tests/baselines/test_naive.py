"""Unit tests for the naive |V|-BFS baseline."""

import numpy as np

from repro.baselines.naive import naive_eccentricities
from repro.graph.csr import Graph
from repro.graph.generators import cycle_graph, path_graph


class TestNaive:
    def test_path(self):
        result = naive_eccentricities(path_graph(5))
        assert result.eccentricities.tolist() == [4, 3, 2, 3, 4]

    def test_exactly_n_bfs(self):
        g = cycle_graph(9)
        result = naive_eccentricities(g)
        assert result.num_bfs == 9

    def test_matches_ifecc(self, social_graph):
        from repro.core.ifecc import compute_eccentricities

        naive = naive_eccentricities(social_graph)
        fast = compute_eccentricities(social_graph)
        np.testing.assert_array_equal(
            naive.eccentricities, fast.eccentricities
        )

    def test_disconnected_within_component(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        result = naive_eccentricities(g)
        assert result.eccentricities.tolist() == [1, 1, 2, 1, 2]

    def test_marked_exact(self):
        assert naive_eccentricities(path_graph(3)).exact
