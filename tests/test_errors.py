"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExhaustedError,
    DatasetNotFoundError,
    DisconnectedGraphError,
    GraphConstructionError,
    InvalidParameterError,
    InvalidVertexError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            GraphConstructionError,
            DatasetNotFoundError,
            InvalidParameterError,
        ],
    )
    def test_subclasses_of_repro_error(self, exc_class):
        assert issubclass(exc_class, ReproError)

    def test_disconnected_carries_component_count(self):
        exc = DisconnectedGraphError(3)
        assert exc.num_components == 3
        assert "3 components" in str(exc)

    def test_disconnected_custom_message(self):
        exc = DisconnectedGraphError(2, "custom")
        assert str(exc) == "custom"

    def test_invalid_vertex_message(self):
        exc = InvalidVertexError(7, 5)
        assert exc.vertex == 7
        assert exc.num_vertices == 5
        assert "7" in str(exc) and "5" in str(exc)

    def test_budget_exhausted(self):
        exc = BudgetExhaustedError(100)
        assert exc.budget == 100
        assert issubclass(BudgetExhaustedError, ReproError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise InvalidVertexError(1, 1)
