"""Public-API contract: every advertised name exists and is importable.

Guards against drift between ``__all__`` lists and the actual module
contents across the whole package tree.
"""

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.datasets",
    "repro.directed",
    "repro.graph",
    "repro.pll",
    "repro.weighted",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), module_name
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


def test_every_submodule_importable():
    seen = []
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        module = importlib.import_module(info.name)
        seen.append(module.__name__)
    # the package tree is non-trivial
    assert len(seen) > 30


def test_every_module_has_docstring():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} lacks a module docstring"


def test_top_level_convenience_functions():
    graph = repro.generators.paper_example_graph()
    assert repro.compute_eccentricities(graph).exact
    assert repro.radius_and_diameter(graph).diameter == 5
    estimate = repro.approximate_eccentricities(graph, k=2)
    assert estimate.num_bfs <= 3


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
