"""Unit tests for the pruned-landmark-labeling index."""

import numpy as np
import pytest

from repro.errors import InvalidVertexError
from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.traversal import bfs_distances
from repro.pll.index import PLLIndex, build_pll_index
from helpers import random_connected_graph


def assert_index_exact(graph, index):
    for s in range(graph.num_vertices):
        dist = bfs_distances(graph, s)
        for t in range(graph.num_vertices):
            assert index.query(s, t) == dist[t], (s, t)


class TestCorrectness:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(9),
            lambda: cycle_graph(8),
            lambda: star_graph(7),
            lambda: complete_graph(6),
            lambda: grid_graph(4, 4),
        ],
        ids=["path", "cycle", "star", "complete", "grid"],
    )
    def test_structured_graphs(self, factory):
        g = factory()
        assert_index_exact(g, build_pll_index(g))

    def test_random_graphs(self):
        for seed in range(5):
            g = random_connected_graph(40, 30, seed)
            assert_index_exact(g, build_pll_index(g))

    def test_paper_example(self, example_graph):
        assert_index_exact(example_graph, build_pll_index(example_graph))

    def test_disconnected_returns_minus_one(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        index = build_pll_index(g)
        assert index.query(0, 2) == -1
        assert index.query(0, 1) == 1

    def test_self_distance_zero(self, social_graph):
        index = build_pll_index(social_graph)
        for v in (0, 5, 100):
            assert index.query(v, v) == 0

    def test_query_symmetric(self, web_graph):
        index = build_pll_index(web_graph)
        rng = np.random.default_rng(0)
        for _ in range(50):
            s, t = rng.integers(0, web_graph.num_vertices, size=2)
            assert index.query(int(s), int(t)) == index.query(int(t), int(s))

    def test_query_many(self, example_graph):
        index = build_pll_index(example_graph)
        dist = bfs_distances(example_graph, 0)
        targets = np.arange(13)
        np.testing.assert_array_equal(
            index.query_many(0, targets), dist
        )


class TestOrderings:
    @pytest.mark.parametrize("ordering", ["degree", "random", "closeness"])
    def test_all_orderings_exact(self, ordering, example_graph):
        index = build_pll_index(example_graph, ordering=ordering, seed=2)
        assert_index_exact(example_graph, index)

    def test_degree_ordering_smaller_labels_on_small_world(self, social_graph):
        by_degree = build_pll_index(social_graph, ordering="degree")
        by_random = build_pll_index(social_graph, ordering="random", seed=1)
        assert (
            by_degree.num_label_entries() <= by_random.num_label_entries()
        )


class TestSizeAccounting:
    def test_entries_positive(self, example_graph):
        index = build_pll_index(example_graph)
        assert index.num_label_entries() >= example_graph.num_vertices

    def test_size_bytes_matches_entries(self, example_graph):
        index = build_pll_index(example_graph)
        assert index.size_bytes() == index.num_label_entries() * 8

    def test_average_label_size(self, example_graph):
        index = build_pll_index(example_graph)
        expected = index.num_label_entries() / 13
        assert index.average_label_size() == pytest.approx(expected)

    def test_path_labels_grow(self):
        # On a path the 2-hop cover needs ~log n to O(n) entries; labels
        # are much larger relative to n than on a star.
        star = build_pll_index(star_graph(33))
        path = build_pll_index(path_graph(33))
        assert path.num_label_entries() > star.num_label_entries()

    def test_construction_time_recorded(self, example_graph):
        assert build_pll_index(example_graph).construction_seconds > 0

    def test_repr(self, example_graph):
        assert "entries=" in repr(build_pll_index(example_graph))


class TestValidation:
    def test_invalid_vertex(self, example_graph):
        index = build_pll_index(example_graph)
        with pytest.raises(InvalidVertexError):
            index.query(0, 13)

    def test_label_of(self, example_graph):
        index = build_pll_index(example_graph)
        hubs, dists = index.label_of(0)
        assert len(hubs) == len(dists)
        assert np.all(np.diff(hubs) > 0)  # ranks strictly increasing
