"""Unit tests for PLL index persistence."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.generators import grid_graph, star_graph
from repro.graph.traversal import bfs_distances
from repro.pll.index import build_pll_index
from repro.pll.serialization import load_index, save_index


class TestRoundTrip:
    def test_queries_preserved(self, tmp_path, social_graph):
        index = build_pll_index(social_graph)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        rng = np.random.default_rng(1)
        for _ in range(60):
            s, t = rng.integers(0, social_graph.num_vertices, size=2)
            assert loaded.query(int(s), int(t)) == index.query(int(s), int(t))

    def test_sizes_preserved(self, tmp_path):
        index = build_pll_index(grid_graph(5, 5))
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_label_entries() == index.num_label_entries()
        assert loaded.num_vertices == index.num_vertices
        assert loaded.ordering == index.ordering

    def test_loaded_matches_bfs(self, tmp_path):
        g = star_graph(9)
        path = tmp_path / "index.npz"
        save_index(build_pll_index(g), path)
        loaded = load_index(path)
        for s in range(g.num_vertices):
            dist = bfs_distances(g, s)
            for t in range(g.num_vertices):
                assert loaded.query(s, t) == dist[t]

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, nothing=np.arange(3))
        with pytest.raises(GraphConstructionError):
            load_index(path)

    def test_pllecc_with_loaded_index(self, tmp_path, web_graph, web_truth):
        from repro.baselines.pllecc import pllecc_eccentricities

        path = tmp_path / "index.npz"
        save_index(build_pll_index(web_graph), path)
        report = pllecc_eccentricities(
            web_graph, num_references=4, index=load_index(path)
        )
        np.testing.assert_array_equal(
            report.result.eccentricities, web_truth
        )
