"""Unit tests for PLL vertex orderings."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.generators import star_graph
from repro.pll.ordering import (
    closeness_sketch_order,
    degree_order,
    get_order,
    random_order,
)


class TestDegreeOrder:
    def test_star_hub_first(self):
        assert degree_order(star_graph(6))[0] == 0

    def test_is_permutation(self, social_graph):
        order = degree_order(social_graph)
        assert sorted(order.tolist()) == list(range(social_graph.num_vertices))

    def test_descending_degrees(self, social_graph):
        order = degree_order(social_graph)
        degrees = social_graph.degrees[order]
        assert np.all(np.diff(degrees) <= 0)

    def test_ties_by_id(self):
        # all leaves of a star have degree 1: ids ascending after the hub
        order = degree_order(star_graph(5))
        assert order.tolist() == [0, 1, 2, 3, 4]


class TestRandomOrder:
    def test_is_permutation(self, social_graph):
        order = random_order(social_graph, seed=3)
        assert sorted(order.tolist()) == list(range(social_graph.num_vertices))

    def test_seeded(self, social_graph):
        np.testing.assert_array_equal(
            random_order(social_graph, seed=1), random_order(social_graph, seed=1)
        )


class TestClosenessOrder:
    def test_is_permutation(self, social_graph):
        order = closeness_sketch_order(social_graph, seed=2)
        assert sorted(order.tolist()) == list(range(social_graph.num_vertices))

    def test_star_hub_first(self):
        assert closeness_sketch_order(star_graph(9), seed=0)[0] == 0

    def test_empty_graph(self):
        from repro.graph.csr import Graph

        g = Graph.from_edges([], num_vertices=0)
        assert len(closeness_sketch_order(g)) == 0


class TestRegistry:
    def test_lookup(self):
        assert get_order("degree") is degree_order
        assert get_order("random") is random_order
        assert get_order("closeness") is closeness_sketch_order

    def test_unknown(self):
        with pytest.raises(InvalidParameterError):
            get_order("alphabetical")
