"""Shared fixtures for the test suite.

Also puts the ``tests/`` directory on ``sys.path`` so test modules can
``from helpers import random_connected_graph`` regardless of which
subdirectory they live in.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro import sanitize
from repro.graph.components import largest_connected_component
from repro.graph.csr import Graph
from repro.graph.generators import (
    attach_handles,
    barabasi_albert,
    copying_model,
    paper_example_graph,
    watts_strogatz,
)
from repro.graph.properties import exact_eccentricities


@pytest.fixture
def sanitizer():
    """Arm the runtime workspace sanitizer for one test.

    Workspaces (engines, lane bitmaps, CSR arrays) must be constructed
    *inside* the test for the guards to attach — pooled objects cached
    before arming stay unguarded.  Equivalent to running the whole
    session with ``REPRO_SANITIZE=1``.
    """
    with sanitize.sanitized():
        yield


@pytest.fixture(scope="session")
def example_graph() -> Graph:
    """The paper's 13-node running example (Figure 1)."""
    return paper_example_graph()


@pytest.fixture(scope="session")
def example_eccentricities(example_graph) -> np.ndarray:
    return exact_eccentricities(example_graph)


@pytest.fixture(scope="session")
def social_graph() -> Graph:
    """A small-world social-network stand-in with a periphery."""
    core = barabasi_albert(250, 3, seed=42)
    graph = attach_handles(core, 8, 14, seed=43)
    graph, _ids = largest_connected_component(graph)
    return graph


@pytest.fixture(scope="session")
def social_truth(social_graph) -> np.ndarray:
    return exact_eccentricities(social_graph)


@pytest.fixture(scope="session")
def web_graph() -> Graph:
    """A web-crawl stand-in (copying model + tendrils)."""
    core = copying_model(220, out_degree=3, copy_probability=0.6, seed=7)
    graph = attach_handles(core, 6, 12, seed=8)
    graph, _ids = largest_connected_component(graph)
    return graph


@pytest.fixture(scope="session")
def web_truth(web_graph) -> np.ndarray:
    return exact_eccentricities(web_graph)


@pytest.fixture(scope="session")
def lattice_graph() -> Graph:
    """A rewired lattice (contact-network stand-in)."""
    graph = watts_strogatz(150, 4, 0.05, seed=11)
    graph, _ids = largest_connected_component(graph)
    return graph


@pytest.fixture(scope="session")
def lattice_truth(lattice_graph) -> np.ndarray:
    return exact_eccentricities(lattice_graph)
