"""Benchmark regression gate (repro.obs.benchguard / tools/benchguard)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.benchguard import (
    DEFAULT_TOLERANCE,
    Finding,
    Headline,
    check_artifact,
    check_paths,
    compare_docs,
    default_artifacts,
    format_findings,
    known_schemas,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def _msbfs_doc(ecc_speedup=3.0, rows_speedup=3.0):
    return {
        "schema": "bench_msbfs_engine/v1",
        "mode": "smoke",
        "target_speedup": 2.0,
        "rows_target_speedup": 1.5,
        "bit_identical": True,
        "graphs": [
            {
                "name": "powerlaw-4k",
                "speedup_ecc_vs_loop": ecc_speedup,
                "speedup_rows_vs_loop": rows_speedup,
            }
        ],
        "aggregate": {
            "powerlaw_speedup_ecc_vs_loop": ecc_speedup,
            "powerlaw_speedup_rows_vs_loop": rows_speedup,
        },
    }


class TestCheckCommittedArtifacts:
    """The gate must pass on the repository's own scorecards."""

    def test_default_artifacts_discovers_committed_scorecards(self):
        paths = default_artifacts(str(REPO_ROOT))
        names = {Path(p).name for p in paths}
        assert "BENCH_bfs_engine.json" in names
        assert "BENCH_msbfs_engine.json" in names
        assert "BENCH_obs_overhead.json" in names

    def test_committed_artifacts_all_pass(self):
        findings = check_paths(default_artifacts(str(REPO_ROOT)))
        failures = [f for f in findings if f.level == "fail"]
        assert findings and not failures, failures

    def test_cli_check_exits_zero_on_repo(self, capsys):
        assert main(["check", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out


class TestCheckEdgeCases:
    def test_unknown_schema_fails_listing_known(self, tmp_path):
        path = _write(tmp_path, "BENCH_x.json", {"schema": "nope/v9"})
        findings = check_artifact(path)
        assert findings[0].level == "fail"
        assert "nope/v9" in findings[0].message
        for schema in known_schemas():
            assert schema in findings[0].message

    def test_unreadable_artifact_fails(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        findings = check_artifact(str(path))
        assert findings[0].level == "fail"
        assert "unreadable" in findings[0].message

    def test_missed_target_fails(self, tmp_path):
        doc = _msbfs_doc(ecc_speedup=1.2)  # below the recorded 2.0 target
        path = _write(tmp_path, "BENCH_msbfs_engine.json", doc)
        findings = check_artifact(path)
        assert any(f.level == "fail" for f in findings)

    def test_obs_overhead_budget_claim(self, tmp_path):
        doc = {
            "schema": "bench_obs_overhead/v1",
            "mode": "smoke",
            "overhead_fraction": 0.09,
            "budget_fraction": 0.03,
        }
        path = _write(tmp_path, "BENCH_obs_overhead.json", doc)
        findings = check_artifact(path)
        assert any(f.level == "fail" for f in findings)


class TestCompare:
    def test_same_document_passes(self, tmp_path):
        path = _write(tmp_path, "fresh.json", _msbfs_doc())
        base = _write(tmp_path, "base.json", _msbfs_doc())
        findings = compare_docs(path, base, tolerance=0.1)
        assert all(f.level == "ok" for f in findings)

    def test_injected_regression_fails(self, tmp_path):
        # Baseline claims 3.0x; the fresh run collapsed to 1.0x — far
        # below the 50% tolerance floor of 1.5x.
        fresh = _write(
            tmp_path, "fresh.json", _msbfs_doc(ecc_speedup=1.0)
        )
        base = _write(tmp_path, "base.json", _msbfs_doc(ecc_speedup=3.0))
        findings = compare_docs(fresh, base, tolerance=DEFAULT_TOLERANCE)
        failed = [f for f in findings if f.level == "fail"]
        assert failed
        assert any("speedup_ecc_vs_loop" in f.message for f in failed)

    def test_within_tolerance_passes(self, tmp_path):
        fresh = _write(
            tmp_path, "fresh.json", _msbfs_doc(ecc_speedup=2.0)
        )
        base = _write(tmp_path, "base.json", _msbfs_doc(ecc_speedup=3.0))
        findings = compare_docs(fresh, base, tolerance=0.5)
        assert all(f.level == "ok" for f in findings)

    def test_schema_mismatch_fails(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", _msbfs_doc())
        base = _write(
            tmp_path,
            "base.json",
            {"schema": "bench_obs_overhead/v1", "overhead_fraction": 0.01,
             "budget_fraction": 0.03},
        )
        findings = compare_docs(fresh, base, tolerance=0.1)
        assert any(f.level == "fail" for f in findings)

    def test_zero_shared_metrics_fails(self, tmp_path):
        doc_a = _msbfs_doc()
        doc_b = _msbfs_doc()
        doc_b["graphs"][0]["name"] = "other-graph"
        doc_b["aggregate"] = {}
        fresh = _write(tmp_path, "fresh.json", doc_a)
        base = _write(tmp_path, "base.json", doc_b)
        findings = compare_docs(fresh, base, tolerance=0.1)
        assert any(
            f.level == "fail" and "shared" in f.message for f in findings
        )

    def test_tolerance_validation(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", _msbfs_doc())
        with pytest.raises(ValueError):
            compare_docs(fresh, fresh, tolerance=1.0)
        with pytest.raises(ValueError):
            compare_docs(fresh, fresh, tolerance=-0.1)

    def test_cli_compare_regression_exits_one(self, tmp_path, capsys):
        fresh = _write(
            tmp_path, "fresh.json", _msbfs_doc(ecc_speedup=1.0)
        )
        base = _write(tmp_path, "base.json", _msbfs_doc(ecc_speedup=3.0))
        assert main(["compare", fresh, base]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestFormatting:
    def _findings(self):
        return [
            Finding("ok", "BENCH_a.json", "all good"),
            Finding("fail", "BENCH_b.json", "regressed"),
        ]

    def test_text_format(self):
        text = format_findings(self._findings(), "text")
        assert "[  ok] BENCH_a.json: all good" in text
        assert "[FAIL] BENCH_b.json: regressed" in text
        assert "2 finding(s), 1 failure(s)" in text

    def test_github_format_annotations(self):
        text = format_findings(self._findings(), "github")
        assert "::notice title=benchguard BENCH_a.json::all good" in text
        assert "::error title=benchguard BENCH_b.json::regressed" in text


class TestToolShim:
    def test_tools_package_reexports_gate(self):
        import benchguard as tool  # resolved via tests/tools conftest

        assert tool.main is main
        assert tool.Headline is Headline
