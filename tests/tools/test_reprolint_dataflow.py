"""Unit tests for the buffer-ownership dataflow analysis.

Exercises ``tools/reprolint/dataflow.py`` directly: the ``:mutates``
grammar, provenance tracking through views/copies/branches, and the
cross-module summary propagation that rules R9/R11 are built on.
"""

import ast
import os
import textwrap
from contextlib import contextmanager
from pathlib import Path

import pytest

from reprolint.dataflow import (
    FunctionAnalyzer,
    ProjectIndex,
    annotation_names,
    module_qualname,
    parse_mutates,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@contextmanager
def repo_cwd():
    """The index resolves ``repro.*`` modules relative to the repo root."""
    previous = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        yield
    finally:
        os.chdir(previous)


def summarize(source, qualname, path="src/repro/graph/engine.py"):
    """Summary of one function in a synthetic module at ``path``."""
    index = ProjectIndex()
    tree = ast.parse(textwrap.dedent(source))
    module = index.module_for_source(path, tree)
    summary = index.summary(module, qualname)
    assert summary is not None, f"no summary for {qualname}"
    return summary


def has_workspace(prov_sets):
    return any(
        token[0] == "workspace" for prov in prov_sets for token in prov
    )


class TestMutatesGrammar:
    def test_single_name(self):
        out = parse_mutates("Doc.\n\n:mutates work: bitmaps\n")
        assert set(out) == {"work"}

    def test_comma_list(self):
        out = parse_mutates(":mutates a, b: both change\n")
        assert set(out) == {"a", "b"}

    def test_absent(self):
        assert parse_mutates("Plain docstring, no contracts.") == {}

    def test_dtype_lines_are_not_mutates(self):
        assert parse_mutates(":dtype dist: int32\n") == {}


class TestNames:
    def test_module_qualname_strips_src_root(self):
        assert module_qualname("src/repro/graph/engine.py") == (
            "repro.graph.engine"
        )

    def test_module_qualname_package_init(self):
        assert module_qualname("src/repro/obs/__init__.py") == "repro.obs"

    def test_module_qualname_tools(self):
        assert module_qualname("tools/reprolint/cli.py") == (
            "tools.reprolint.cli"
        )

    def test_annotation_names_optional_string(self):
        node = ast.parse("x: Optional['BFSEngine']").body[0].annotation
        assert set(annotation_names(node)) >= {"Optional", "BFSEngine"}

    def test_annotation_names_attribute(self):
        node = ast.parse("x: np.ndarray").body[0].annotation
        assert "ndarray" in annotation_names(node)


# A synthetic BFSEngine whose class qualname matches the pooled-buffer
# registry entry ``repro.graph.engine.BFSEngine``.
ENGINE_MODULE = '''
"""Fixture engine."""
import numpy as np

class BFSEngine:
    def __init__(self, n: int) -> None:
        self._dist = np.empty(n, dtype=np.int32)

    def peek(self) -> np.ndarray:
        return self._dist

    def peek_copy(self) -> np.ndarray:
        return self._dist.copy()

    def peek_slice(self) -> np.ndarray:
        return self._dist[1:]
'''


class TestProvenance:
    def test_returned_pooled_attr_is_workspace(self):
        summary = summarize(ENGINE_MODULE, "BFSEngine.peek")
        assert has_workspace(summary.returns)

    def test_copy_severs_provenance(self):
        summary = summarize(ENGINE_MODULE, "BFSEngine.peek_copy")
        assert not has_workspace(summary.returns)

    def test_slice_view_keeps_provenance(self):
        summary = summarize(ENGINE_MODULE, "BFSEngine.peek_slice")
        assert has_workspace(summary.returns)

    def test_mutation_of_ndarray_param_detected(self):
        summary = summarize(
            """
            import numpy as np

            def f(a: np.ndarray) -> None:
                a[0] = 1
            """,
            "f",
            path="src/repro/example.py",
        )
        assert "a" in summary.mutates

    def test_branch_join_keeps_both_arms(self):
        # One arm rebinds to a copy; the other keeps the parameter
        # alias.  The join must keep the alias, so the write is still a
        # parameter mutation.
        summary = summarize(
            """
            import numpy as np

            def f(a: np.ndarray, flag: bool) -> None:
                x = a
                if flag:
                    x = a.copy()
                x[0] = 1
            """,
            "f",
            path="src/repro/example.py",
        )
        assert "a" in summary.mutates

    def test_tuple_packing_keeps_provenance(self):
        summary = summarize(
            ENGINE_MODULE
            + textwrap.dedent(
                """
                def relay(e: BFSEngine):
                    return (0, e.peek())
                """
            ),
            "relay",
        )
        assert has_workspace(summary.returns)

    def test_augassign_is_mutation(self):
        summary = summarize(
            """
            import numpy as np

            def f(a: np.ndarray) -> None:
                a += 1
            """,
            "f",
            path="src/repro/example.py",
        )
        assert "a" in summary.mutates

    def test_out_kwarg_is_mutation(self):
        summary = summarize(
            """
            import numpy as np

            def f(a: np.ndarray, b: np.ndarray) -> None:
                np.minimum(a, 3, out=b)
            """,
            "f",
            path="src/repro/example.py",
        )
        assert "b" in summary.mutates


class TestCrossModule:
    """Summaries propagated through the real ``src/`` tree."""

    def test_compute_ffo_mutates_engine(self):
        with repo_cwd():
            index = ProjectIndex()
            module = index.module("repro.core.ffo")
            assert module is not None
            summary = index.summary(module, "compute_ffo")
        assert summary is not None
        assert "engine" in summary.mutates

    def test_engine_run_returns_workspace(self):
        with repo_cwd():
            index = ProjectIndex()
            summary = index.summary_for_method(
                "repro.graph.engine.BFSEngine", "run"
            )
        assert summary is not None
        assert has_workspace(summary.returns)

    def test_sweep_probe_relays_the_loan(self):
        with repo_cwd():
            index = ProjectIndex()
            summary = index.summary_for_method(
                "repro.core.oracles.BFSOracle", "sweep_probe"
            )
        assert summary is not None
        assert has_workspace(summary.returns)

    def test_source_probe_copies_before_returning(self):
        with repo_cwd():
            index = ProjectIndex()
            summary = index.summary_for_method(
                "repro.core.oracles.BFSOracle", "source_probe"
            )
        assert summary is not None
        assert not has_workspace(summary.returns)

    def test_recursion_terminates(self):
        source = """
        def f(x):
            return g(x)

        def g(x):
            return f(x)
        """
        index = ProjectIndex()
        tree = ast.parse(textwrap.dedent(source))
        module = index.module_for_source("src/repro/example.py", tree)
        summary = index.summary(module, "f")
        assert summary is not None  # cycle guard, no RecursionError


class TestAnalyzerDirect:
    def test_plain_function_without_events(self):
        tree = ast.parse("def f(x):\n    return x + 1\n")
        func = tree.body[0]
        index = ProjectIndex()
        module = index.module_for_source("src/repro/example.py", tree)
        summary = FunctionAnalyzer(func, None, module).analyze()
        assert summary.mutates == set()
        assert not has_workspace(summary.returns)
