"""Per-rule fixtures: each rule fires on a minimal bad example and stays
silent on the corresponding good example."""

import textwrap

import pytest

from reprolint import lint_source

SRC = "src/repro/example.py"
HOT = "src/repro/core/example.py"


def codes(diagnostics):
    return sorted({d.rule_id for d in diagnostics})


def run(source, path=SRC, select=None):
    diags = lint_source(textwrap.dedent(source), path=path)
    if select is not None:
        diags = [d for d in diags if d.rule_id == select]
    return diags


# A fully-annotated module skeleton that satisfies R5/R7 so fixtures can
# isolate one rule at a time.
def wrap(body):
    return (
        '"""Fixture module."""\n'
        "import numpy as np\n"
        "__all__ = []\n" + textwrap.dedent(body)
    )


# ----------------------------------------------------------------- R1
class TestCsrImmutable:
    def test_fires_on_attribute_write(self):
        diags = run(wrap("def f(g: object) -> None:\n    g.indptr = None\n"),
                    select="R1")
        assert len(diags) == 1
        assert "indptr" in diags[0].message

    def test_fires_on_subscript_write(self):
        diags = run(wrap("def f(g: object) -> None:\n    g.indices[0] = 1\n"),
                    select="R1")
        assert len(diags) == 1

    def test_fires_on_setflags_write_true(self):
        diags = run(
            wrap("def f(g: object) -> None:\n"
                 "    g.indptr.setflags(write=True)\n"),
            select="R1",
        )
        assert len(diags) == 1

    def test_silent_on_reads_and_locals(self):
        diags = run(
            wrap(
                "def f(g: object) -> int:\n"
                "    indptr = np.zeros(3, dtype=np.int64)\n"
                "    indptr[0] = 1\n"  # local Name, not an attribute
                "    return int(g.indptr[0])\n"
            ),
            select="R1",
        )
        assert diags == []

    def test_silent_in_builder_module(self):
        diags = run(
            wrap("def f(g: object) -> None:\n    g.indptr = None\n"),
            path="src/repro/graph/builder.py",
        )
        assert "R1" not in codes(diags)

    def test_setflags_false_is_allowed(self):
        diags = run(
            wrap("def f(arr: np.ndarray) -> None:\n"
                 "    arr.setflags(write=False)\n"),
            select="R1",
        )
        assert diags == []


# ----------------------------------------------------------------- R2
class TestBoundsApi:
    def test_fires_on_attribute_subscript_write(self):
        diags = run(
            wrap("def f(state: object) -> None:\n    state.lower[0] = 3\n"),
            select="R2",
        )
        assert len(diags) == 1

    def test_fires_on_named_array(self):
        diags = run(wrap("def f() -> None:\n    ecc_upper = None\n"),
                    select="R2")
        assert len(diags) == 1

    def test_fires_on_augmented_write(self):
        diags = run(
            wrap("def f(state: object) -> None:\n    state.upper -= 1\n"),
            select="R2",
        )
        assert len(diags) == 1

    def test_silent_on_reads_and_method_calls(self):
        diags = run(
            wrap(
                "def f(state: object, s: str) -> str:\n"
                "    x = state.lower[0] + state.upper[0]\n"
                "    return s.lower() + str(x)\n"
            ),
            select="R2",
        )
        assert diags == []

    def test_silent_inside_bounds_module(self):
        diags = run(
            wrap("def f(state: object) -> None:\n    state.lower[0] = 3\n"),
            path="src/repro/core/bounds.py",
        )
        assert "R2" not in codes(diags)

    def test_bare_names_fire_in_solver_core(self):
        # In BOUNDS_PROTECTED_MODULES even bare lower/upper locals are
        # bound arrays: raw writes would bypass the BoundState invariant.
        diags = run(
            wrap("def f(x: int) -> None:\n    lower = x\n    upper = x\n"),
            path="src/repro/core/solver.py",
            select="R2",
        )
        assert len(diags) == 2

    def test_bare_names_fire_in_metric_instantiations(self):
        for path in (
            "src/repro/weighted/eccentricity.py",
            "src/repro/directed/eccentricity.py",
        ):
            diags = run(
                wrap("def f(x: int) -> None:\n    lower = x\n"),
                path=path,
                select="R2",
            )
            assert len(diags) == 1, path

    def test_bare_names_silent_outside_protected_modules(self):
        diags = run(
            wrap("def f(x: int) -> int:\n    lower = x\n    return lower\n"),
            select="R2",
        )
        assert diags == []


# ----------------------------------------------------------------- R3
class TestImportHygiene:
    def test_fires_on_networkx(self):
        diags = run(wrap("import networkx\n"), select="R3")
        assert len(diags) == 1

    def test_fires_on_scipy_from_import(self):
        diags = run(wrap("from scipy.sparse import csr_matrix\n"),
                    select="R3")
        assert len(diags) == 1

    def test_fires_on_unknown_third_party(self):
        diags = run(wrap("import requests\n"), select="R3")
        assert len(diags) == 1

    def test_silent_on_stdlib_numpy_and_repro(self):
        diags = run(
            wrap("import os\nimport numpy\nfrom repro.graph.csr import Graph\n"),
            select="R3",
        )
        assert diags == []

    def test_silent_outside_src(self):
        diags = run(wrap("import networkx\n"), path="tests/test_example.py")
        assert "R3" not in codes(diags)


# ----------------------------------------------------------------- R4
class TestHotPathLoops:
    def test_fires_on_nested_range_loop(self):
        diags = run(
            wrap(
                "def f(n: int) -> int:\n"
                "    total = 0\n"
                "    for u in range(n):\n"
                "        for v in range(n):\n"
                "            total += v\n"
                "    return total\n"
            ),
            path=HOT,
            select="R4",
        )
        assert len(diags) == 1

    def test_fires_on_neighbors_in_loop(self):
        diags = run(
            wrap(
                "def f(g: object, n: int) -> None:\n"
                "    for v in range(n):\n"
                "        _ = list(g.neighbors(v))\n"
            ),
            path=HOT,
            select="R4",
        )
        assert len(diags) == 1

    def test_silent_on_single_loop(self):
        diags = run(
            wrap(
                "def f(n: int) -> int:\n"
                "    total = 0\n"
                "    for v in range(n):\n"
                "        total += v\n"
                "    return total\n"
            ),
            path=HOT,
            select="R4",
        )
        assert diags == []

    def test_silent_outside_hot_modules(self):
        diags = run(
            wrap(
                "def f(n: int) -> None:\n"
                "    for u in range(n):\n"
                "        for v in range(n):\n"
                "            pass\n"
            ),
            path="src/repro/analysis/example.py",
        )
        assert "R4" not in codes(diags)

    def test_nested_function_resets_depth(self):
        diags = run(
            wrap(
                "def f(n: int) -> None:\n"
                "    for v in range(n):\n"
                "        def inner(m: int) -> None:\n"
                "            for u in range(m):\n"
                "                pass\n"
            ),
            path=HOT,
            select="R4",
        )
        assert diags == []


# ----------------------------------------------------------------- R5
class TestPublicApi:
    def test_fires_when_all_missing(self):
        diags = run('"""Doc."""\nX = 1\n', select="R5")
        assert len(diags) == 1
        assert "__all__" in diags[0].message

    def test_fires_on_phantom_name(self):
        diags = run('"""Doc."""\n__all__ = ["missing"]\nX = 1\n',
                    select="R5")
        assert len(diags) == 1
        assert "missing" in diags[0].message

    def test_fires_on_non_literal_all(self):
        diags = run('"""Doc."""\n__all__ = [x for x in ("a",)]\na = 1\n',
                    select="R5")
        assert len(diags) == 1

    def test_fires_on_duplicate_entry(self):
        diags = run('"""Doc."""\n__all__ = ["X", "X"]\nX = 1\n',
                    select="R5")
        assert len(diags) == 1

    def test_silent_on_accurate_all(self):
        diags = run(
            '"""Doc."""\n'
            "try:\n    import os\nexcept ImportError:\n    os = None\n"
            '__all__ = ["os", "f", "X"]\n'
            "X = 1\n"
            "def f() -> None:\n    pass\n",
            select="R5",
        )
        assert diags == []

    def test_silent_outside_src(self):
        diags = run('"""Doc."""\nX = 1\n', path="tests/test_example.py")
        assert "R5" not in codes(diags)

    def test_silent_on_pep562_getattr_name(self):
        # A deprecated alias served by module __getattr__ (PEP 562)
        # counts as bound even with no module-scope assignment.
        diags = run(
            '"""Doc."""\n'
            '__all__ = ["X", "OldX"]\n'
            "X = 1\n"
            "def __getattr__(name: str) -> object:\n"
            '    if name == "OldX":\n'
            "        return X\n"
            "    raise AttributeError(name)\n",
            select="R5",
        )
        assert diags == []


# ----------------------------------------------------------------- R6
class TestDtypeContracts:
    def test_fires_on_contract_mismatch(self):
        diags = run(
            wrap(
                "def f(n: int) -> np.ndarray:\n"
                '    """Doc.\n\n    :dtype dist: int32\n    """\n'
                "    dist = np.zeros(n, dtype=np.int64)\n"
                "    return dist\n"
            ),
            select="R6",
        )
        assert len(diags) == 1
        assert "int64" in diags[0].message

    def test_fires_on_astype_mismatch(self):
        diags = run(
            wrap(
                "def f(x: np.ndarray) -> np.ndarray:\n"
                '    """Doc.\n\n    :dtype y: int32\n    """\n'
                "    y = x.astype(np.float64)\n"
                "    return y\n"
            ),
            select="R6",
        )
        assert len(diags) == 1

    def test_fires_on_noncanonical_indptr(self):
        diags = run(
            wrap(
                "def f(n: int) -> np.ndarray:\n"
                "    indptr = np.zeros(n, dtype=np.int32)\n"
                "    return indptr\n"
            ),
            select="R6",
        )
        assert len(diags) == 1
        assert "Theorem 4.5" in diags[0].message

    def test_fires_on_unknown_dtype_spelling(self):
        diags = run(
            wrap(
                "def f() -> None:\n"
                '    """Doc.\n\n    :dtype x: int33\n    """\n'
            ),
            select="R6",
        )
        assert len(diags) == 1

    def test_silent_on_matching_contract(self):
        diags = run(
            wrap(
                "def f(n: int) -> np.ndarray:\n"
                '    """Doc.\n\n    :dtype dist: int32\n    """\n'
                "    dist = np.full(n, -1, dtype=np.int32)\n"
                "    return dist\n"
            ),
            select="R6",
        )
        assert diags == []

    def test_silent_without_explicit_dtype(self):
        diags = run(
            wrap(
                "def f(x: np.ndarray) -> np.ndarray:\n"
                '    """Doc.\n\n    :dtype y: int32\n    """\n'
                "    y = np.sort(x)\n"
                "    return y\n"
            ),
            select="R6",
        )
        assert diags == []


# ----------------------------------------------------------------- R7
class TestTypingGate:
    def test_fires_on_unannotated_parameter(self):
        diags = run(
            wrap("def f(x) -> None:\n    pass\n"), select="R7"
        )
        assert len(diags) == 1
        assert "'x'" in diags[0].message

    def test_fires_on_missing_return(self):
        diags = run(wrap("def f(x: int):\n    pass\n"), select="R7")
        assert len(diags) == 1

    def test_fires_on_unannotated_method(self):
        diags = run(
            wrap(
                "class C:\n"
                "    def m(self, x):\n"
                "        pass\n"
            ),
            select="R7",
        )
        assert len(diags) == 2  # parameter + return

    def test_self_and_cls_are_exempt(self):
        diags = run(
            wrap(
                "class C:\n"
                "    def m(self) -> None:\n"
                "        pass\n"
                "    @classmethod\n"
                "    def c(cls) -> None:\n"
                "        pass\n"
            ),
            select="R7",
        )
        assert diags == []

    def test_starargs_need_annotations(self):
        diags = run(
            wrap("def f(*args, **kwargs) -> None:\n    pass\n"),
            select="R7",
        )
        assert len(diags) == 1
        assert "*args" in diags[0].message and "**kwargs" in diags[0].message

    def test_silent_outside_src(self):
        diags = run(wrap("def f(x):\n    pass\n"),
                    path="tests/test_example.py")
        assert "R7" not in codes(diags)


# ----------------------------------------------------------------- R8
class TestAdhocTiming:
    def test_fires_on_perf_counter_pair(self):
        diags = run(
            wrap(
                """
                import time
                def f() -> float:
                    start = time.perf_counter()
                    return time.perf_counter() - start
                """
            ),
            select="R8",
        )
        assert len(diags) == 2
        assert "Stopwatch" in diags[0].message

    def test_fires_on_from_import_alias(self):
        diags = run(
            wrap(
                """
                from time import perf_counter as clock
                def f() -> float:
                    return clock()
                """
            ),
            select="R8",
        )
        assert len(diags) == 1

    def test_fires_on_monotonic(self):
        diags = run(
            wrap(
                """
                import time
                def f() -> float:
                    return time.monotonic()
                """
            ),
            select="R8",
        )
        assert len(diags) == 1

    def test_silent_on_stopwatch(self):
        diags = run(
            wrap(
                """
                from repro.obs.trace import Stopwatch
                def f() -> float:
                    watch = Stopwatch()
                    return watch.elapsed()
                """
            ),
            select="R8",
        )
        assert diags == []

    def test_silent_inside_obs(self):
        # repro.obs implements the clock abstraction; the raw counter is
        # allowed there (and only there).
        diags = run(
            wrap(
                """
                import time
                def f() -> float:
                    return time.perf_counter()
                """
            ),
            path="src/repro/obs/trace.py",
            select="R8",
        )
        assert diags == []

    def test_silent_outside_src(self):
        diags = run(
            wrap(
                """
                import time
                def f() -> float:
                    return time.perf_counter()
                """
            ),
            path="tests/test_example.py",
            select="R8",
        )
        assert diags == []

    def test_silent_on_unrelated_time_calls(self):
        diags = run(
            wrap(
                """
                import time
                def f() -> str:
                    return time.strftime("%Y")
                """
            ),
            select="R8",
        )
        assert diags == []


# ------------------------------------------------------- suppressions
class TestSuppressions:
    def test_line_level_disable(self):
        diags = run(
            wrap("def f(g: object) -> None:\n"
                 "    g.indptr = None  # reprolint: disable=R1\n"),
            select="R1",
        )
        assert diags == []

    def test_slug_name_disable(self):
        diags = run(
            wrap("def f(g: object) -> None:\n"
                 "    g.indptr = None  # reprolint: disable=csr-immutable\n"),
            select="R1",
        )
        assert diags == []

    def test_comment_above_disables_next_line(self):
        diags = run(
            wrap(
                "def f(g: object) -> None:\n"
                "    # reprolint: disable=R1 (fixture justification)\n"
                "    g.indptr = None\n"
            ),
            select="R1",
        )
        assert diags == []

    def test_file_level_disable(self):
        diags = run(
            '"""Doc."""\n'
            "# reprolint: disable-file=R5\n"
            "X = 1\n",
            select="R5",
        )
        assert diags == []

    def test_unrelated_rule_still_fires(self):
        diags = run(
            wrap("def f(g: object) -> None:\n"
                 "    g.indptr = None  # reprolint: disable=R2\n"),
            select="R1",
        )
        assert len(diags) == 1


# ------------------------------------------------------------- engine
class TestEngine:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        from reprolint import lint_paths

        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        diags = lint_paths([str(bad)])
        assert len(diags) == 1
        assert diags[0].rule_id == "E0"

    def test_rule_metadata_complete(self):
        from reprolint import all_rules

        rules = all_rules()
        assert len(rules) >= 6
        for rule_obj in rules:
            assert rule_obj.rule_id and rule_obj.rule_name
            assert rule_obj.summary and rule_obj.protects

    def test_missing_path_raises(self):
        from reprolint import lint_paths

        with pytest.raises(FileNotFoundError):
            lint_paths(["no/such/dir"])


# ----------------------------------------------------------------- R9
class TestWorkspaceEscape:
    """R9: pooled workspace buffers must not escape without a copy."""

    def test_protocol_loan_return_flagged(self):
        diags = run(
            wrap(
                "def consume(o) -> np.ndarray:\n"
                "    ecc, dist = o.sweep_probe(0)\n"
                "    return dist\n"
            ),
            select="R9",
        )
        assert len(diags) == 1
        assert "pooled workspace" in diags[0].message

    def test_copy_is_clean(self):
        diags = run(
            wrap(
                "def consume(o) -> np.ndarray:\n"
                "    ecc, dist = o.sweep_probe(0)\n"
                "    return dist.copy()\n"
            ),
            select="R9",
        )
        assert diags == []

    def test_pooled_attr_return_flagged(self):
        diags = run(
            wrap(
                "class BFSEngine:\n"
                "    def __init__(self, n: int) -> None:\n"
                "        self._dist = np.empty(n, dtype=np.int32)\n"
                "    def peek(self) -> np.ndarray:\n"
                "        return self._dist\n"
            ),
            path="src/repro/graph/engine.py",
            select="R9",
        )
        assert len(diags) == 1

    def test_registered_producer_exempt(self):
        # BFSEngine.run is a documented producer: its own return of the
        # pooled buffer is the API, not an escape.
        diags = run(
            wrap(
                "class BFSEngine:\n"
                "    def __init__(self, n: int) -> None:\n"
                "        self._dist = np.empty(n, dtype=np.int32)\n"
                "    def run(self, s: int) -> np.ndarray:\n"
                "        self._dist.fill(0)\n"
                "        return self._dist\n"
            ),
            path="src/repro/graph/engine.py",
            select="R9",
        )
        assert diags == []

    def test_module_global_stash_flagged(self):
        diags = run(
            wrap(
                "_MEMO = {}\n"
                "def remember(o, s: int) -> None:\n"
                "    ecc, dist = o.sweep_probe(s)\n"
                "    _MEMO[s] = dist\n"
            ),
            select="R9",
        )
        assert len(diags) == 1

    def test_instance_store_flagged(self):
        diags = run(
            wrap(
                "class Cache:\n"
                "    def grab(self, o) -> None:\n"
                "        ecc, dist = o.sweep_probe(0)\n"
                "        self.kept = dist\n"
            ),
            select="R9",
        )
        assert len(diags) == 1

    def test_derived_value_is_clean(self):
        # Arithmetic allocates a fresh array; only the view is a loan.
        diags = run(
            wrap(
                "def consume(o) -> np.ndarray:\n"
                "    ecc, dist = o.sweep_probe(0)\n"
                "    return dist + 1\n"
            ),
            select="R9",
        )
        assert diags == []


# ---------------------------------------------------------------- R10
class TestSharedState:
    """R10: module-level mutable state must be manifest-registered."""

    def test_unregistered_mutable_cache_flagged(self):
        diags = run(
            wrap(
                "_cache = {}\n"
                "def put(k, v) -> None:\n"
                "    _cache[k] = v\n"
            ),
            select="R10",
        )
        assert len(diags) >= 1
        assert "_cache" in diags[0].message

    def test_registered_state_with_accessors_clean(self):
        diags = run(
            wrap(
                "_CACHE = {}\n"
                "def load_dataset(name):\n"
                "    if name not in _CACHE:\n"
                "        _CACHE[name] = name\n"
                "    return _CACHE[name]\n"
                "def clear_cache() -> None:\n"
                "    _CACHE.clear()\n"
            ),
            path="src/repro/datasets/loader.py",
            select="R10",
        )
        assert diags == []

    def test_access_outside_guard_helpers_flagged(self):
        diags = run(
            wrap(
                "_CACHE = {}\n"
                "def load_dataset(name):\n"
                "    return _CACHE.get(name)\n"
                "def clear_cache() -> None:\n"
                "    _CACHE.clear()\n"
                "def sneak(name) -> None:\n"
                "    _CACHE[name] = 1\n"
            ),
            path="src/repro/datasets/loader.py",
            select="R10",
        )
        assert len(diags) == 1
        assert "guard helpers" in diags[0].message

    def test_stale_manifest_entry_flagged(self):
        # The manifest registers _CACHE for this path; a module that no
        # longer defines it should be reported so the manifest shrinks.
        diags = run(
            wrap("def load_dataset(name):\n    return name\n"),
            path="src/repro/datasets/loader.py",
            select="R10",
        )
        assert len(diags) == 1
        assert "_CACHE" in diags[0].message

    def test_constant_never_mutated_clean(self):
        diags = run(
            wrap(
                "_TABLE = {'a': 1}\n"
                "def get(k):\n"
                "    return _TABLE[k]\n"
            ),
            select="R10",
        )
        assert diags == []

    def test_global_rebind_flagged(self):
        diags = run(
            wrap(
                "_state = 0\n"
                "def bump() -> None:\n"
                "    global _state\n"
                "    _state += 1\n"
            ),
            select="R10",
        )
        assert len(diags) >= 1


# ---------------------------------------------------------------- R11
class TestMutationContract:
    """R11: in-place parameter mutation must be declared via :mutates:."""

    def test_undeclared_mutation_flagged(self):
        diags = run(
            wrap(
                "def f(a: np.ndarray) -> None:\n"
                '    """Doc."""\n'
                "    a[0] = 1\n"
            ),
            select="R11",
        )
        assert len(diags) == 1
        assert ":mutates a:" in diags[0].message

    def test_declared_mutation_clean(self):
        diags = run(
            wrap(
                "def f(a: np.ndarray) -> None:\n"
                '    """Doc.\n\n    :mutates a: zeroed in place.\n    """\n'
                "    a[0] = 1\n"
            ),
            select="R11",
        )
        assert diags == []

    def test_stale_declaration_flagged(self):
        diags = run(
            wrap(
                "def f(a: np.ndarray) -> int:\n"
                '    """Doc.\n\n    :mutates a: but it does not.\n    """\n'
                "    return int(a[0])\n"
            ),
            select="R11",
        )
        assert len(diags) == 1

    def test_declaration_naming_non_param_flagged(self):
        diags = run(
            wrap(
                "def f(a: np.ndarray) -> None:\n"
                '    """Doc.\n\n    :mutates b: no such parameter.\n    """\n'
                "    a[0] = 1\n"
            ),
            select="R11",
        )
        # Both the bogus name and the undeclared real mutation fire.
        assert len(diags) == 2

    def test_unannotated_param_out_of_scope(self):
        # Without an ndarray-ish annotation the contract does not apply.
        diags = run(
            wrap(
                "def f(a) -> None:\n"
                '    """Doc."""\n'
                "    a[0] = 1\n"
            ),
            select="R11",
        )
        assert diags == []

    def test_fill_method_is_mutation(self):
        diags = run(
            wrap(
                "def f(a: np.ndarray) -> None:\n"
                '    """Doc."""\n'
                "    a.fill(0)\n"
            ),
            select="R11",
        )
        assert len(diags) == 1


# ------------------------------------------------------- W1 / W2 meta
class TestSuppressionInventory:
    def test_unused_suppression_warns(self):
        diags = run(
            wrap("X = 1  # reprolint: disable=R1\n"),
            select="W1",
        )
        assert len(diags) == 1
        assert "no longer suppresses" in diags[0].message

    def test_unknown_rule_code_warns(self):
        diags = run(
            wrap("X = 1  # reprolint: disable=R99\n"),
            select="W1",
        )
        assert len(diags) == 1
        assert "no known rule" in diags[0].message

    def test_used_suppression_is_silent(self):
        diags = run(
            wrap("def f(g: object) -> None:\n"
                 "    g.indptr = None  # reprolint: disable=R1 (fixture)\n"),
            select="W1",
        )
        assert diags == []

    def test_suppression_text_inside_string_ignored(self):
        # Suppression-shaped text in a string literal is data, not a
        # waiver — it must not count (and must not warn as unused).
        diags = run(
            wrap('X = "# reprolint: disable=R1"\n'),
            select="W1",
        )
        assert diags == []

    def test_strict_rule_needs_justification(self):
        diags = run(
            wrap(
                "def consume(o) -> np.ndarray:\n"
                "    ecc, dist = o.sweep_probe(0)\n"
                "    return dist  # reprolint: disable=R9\n"
            ),
            select="W2",
        )
        assert len(diags) == 1
        assert "justification" in diags[0].message

    def test_justified_strict_suppression_clean(self):
        diags = run(
            wrap(
                "def consume(o) -> np.ndarray:\n"
                "    ecc, dist = o.sweep_probe(0)\n"
                "    return dist"
                "  # reprolint: disable=R9 (caller consumes immediately)\n"
            ),
            select="W2",
        )
        assert diags == []

    def test_lax_rule_needs_no_justification(self):
        diags = run(
            wrap("def f(g: object) -> None:\n"
                 "    g.indptr = None  # reprolint: disable=R1\n"),
            select="W2",
        )
        assert diags == []
