"""Make the checkout-root ``reprolint`` shim importable under pytest.

The tier-1 suite runs with ``PYTHONPATH=src``; the linter lives in
``tools/reprolint`` behind the repo-root shim package, so tests add the
repository root to ``sys.path`` explicitly (the same resolution path the
documented ``python -m reprolint`` invocation uses).
"""

import sys
from pathlib import Path

_REPO_ROOT = str(Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)
