"""CLI behaviour and the repository-wide clean-tree smoke test."""

import subprocess
import sys
from pathlib import Path

from reprolint import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCli:
    def test_list_rules_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
            assert code in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text('"""Doc."""\nX = 1\n')
        assert main([str(good)]) == 0

    def test_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        mod = bad / "mod.py"
        mod.write_text('"""Doc."""\nimport networkx\n__all__ = []\n')
        # Absolute tmp paths are outside src/repro/, so drive the rule
        # through lint_source-style relative naming via --select on the
        # module file: R3 keys off the repo-relative path, which doesn't
        # apply here — use a rule that fires anywhere instead.
        mod.write_text(
            '"""Doc."""\n\ndef f(g):\n    g.indptr = None\n'
        )
        code = main([str(mod)])
        captured = capsys.readouterr()
        assert code == 1
        assert "R1" in captured.out

    def test_select_filters_rules(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text('"""Doc."""\n\ndef f(g):\n    g.indptr = None\n')
        assert main(["--select", "R2", str(mod)]) == 0
        assert main(["--select", "csr-immutable", str(mod)]) == 1

    def test_unknown_rule_selection_errors(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("X = 1\n")
        assert main(["--select", "R99", str(mod)]) == 2

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely/not/a/path"]) == 2


class TestRepositoryClean:
    """The committed tree passes its own gate."""

    def test_src_tests_benchmarks_clean(self):
        from reprolint import lint_paths

        import os

        cwd = os.getcwd()
        os.chdir(REPO_ROOT)
        try:
            diagnostics = lint_paths(["src", "tests", "benchmarks"])
        finally:
            os.chdir(cwd)
        assert diagnostics == [], "\n".join(
            d.format() for d in diagnostics
        )

    def test_module_invocation_from_checkout_root(self):
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", "src", "tests", "benchmarks"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestOutputFormats:
    def _violation_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            '"""Doc."""\n'
            "__all__ = []\n"
            "def f(g: object) -> None:\n"
            "    g.indptr = None\n"
        )
        return bad

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = self._violation_file(tmp_path)
        code = main([str(bad), "--format", "json", "--select", "R1"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["violations"] == 1
        assert report["summary"]["rules"] == 1
        (diag,) = report["diagnostics"]
        assert diag["rule_id"] == "R1"
        assert diag["line"] == 4
        assert diag["path"].endswith("example.py")
        assert "message" in diag

    def test_json_format_clean_report(self, tmp_path, capsys):
        import json

        clean = tmp_path / "clean.py"
        clean.write_text('"""Doc."""\nX = 1\n')
        code = main([str(clean), "--format", "json", "--select", "R1"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["diagnostics"] == []
        assert report["summary"]["violations"] == 0

    def test_github_format(self, tmp_path, capsys):
        bad = self._violation_file(tmp_path)
        code = main([str(bad), "--format", "github", "--select", "R1"])
        assert code == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert ",line=4," in out
        assert "title=R1[csr-immutable]" in out

    def test_github_format_warning_level(self):
        from reprolint.diagnostics import Diagnostic

        diag = Diagnostic(
            rule_id="W1",
            rule_name="unused-suppression",
            path="src/repro/example.py",
            line=3,
            col=0,
            message="stale % and\nnewline",
        )
        rendered = diag.format_github()
        assert rendered.startswith("::warning ")
        # GitHub annotation payloads must escape % and newlines.
        assert "%25" in rendered and "%0A" in rendered
        assert "\n" not in rendered

    def test_text_format_unchanged_by_default(self, tmp_path, capsys):
        bad = self._violation_file(tmp_path)
        code = main([str(bad), "--select", "R1"])
        assert code == 1
        out = capsys.readouterr().out
        assert "R1[csr-immutable]" in out
        assert not out.startswith("::")
