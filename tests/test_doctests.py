"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.core.ifecc


@pytest.mark.parametrize(
    "module",
    [repro.core.ifecc],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, tested = doctest.testmod(
        module, verbose=False, raise_on_error=False
    )
    assert tested > 0, "no doctests found"
    assert failures == 0
