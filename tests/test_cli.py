"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph.generators import paper_example_graph
from repro.graph.io import write_edge_list


@pytest.fixture()
def example_file(tmp_path):
    path = tmp_path / "example.txt"
    write_edge_list(paper_example_graph(), path)
    return str(path)


class TestEcc:
    def test_ecc_on_file(self, example_file, capsys):
        assert main(["ecc", example_file]) == 0
        out = capsys.readouterr().out
        assert "radius=3 diameter=5" in out
        assert "IFECC-1" in out

    def test_ecc_references_flag(self, example_file, capsys):
        assert main(["ecc", example_file, "-r", "2"]) == 0
        assert "IFECC-2" in capsys.readouterr().out

    def test_ecc_output_file(self, example_file, tmp_path, capsys):
        out_path = tmp_path / "ecc.txt"
        assert main(["ecc", example_file, "-o", str(out_path)]) == 0
        values = np.loadtxt(out_path, dtype=int)
        assert values.tolist() == [5, 4, 3, 3, 4, 5, 4, 5, 3, 4, 5, 5, 4]

    def test_ecc_on_dataset_name(self, capsys):
        assert main(["ecc", "DBLP"]) == 0
        assert "radius=" in capsys.readouterr().out


class TestApprox:
    def test_approx(self, example_file, capsys):
        assert main(["approx", example_file, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "kIFECC(k=4)" in out
        assert "resolved=" in out


class TestTrace:
    def test_ecc_trace_round_trip(self, example_file, tmp_path, capsys):
        """--trace writes a record whose contents match the live run."""
        from repro.obs.record import RunRecord

        trace_path = tmp_path / "run.jsonl"
        assert main(
            ["ecc", example_file, "--trace", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "radius=3 diameter=5" in out
        assert "run record written" in out

        record = RunRecord.read_jsonl(str(trace_path))
        assert record.result["radius"] == 3
        assert record.result["diameter"] == 5
        assert record.result["exact"] is True
        assert record.result["resolved"] == 13
        assert record.config == {
            "command": "ecc",
            "references": 1,
            "backend": "numpy",
            "workers": None,
            "source": example_file,
        }
        assert len(record.probe_events()) == record.result["num_traversals"]
        assert record.counters["traversal_runs"] == record.result[
            "num_traversals"
        ]

    def test_approx_trace(self, example_file, tmp_path):
        from repro.obs.record import RunRecord

        trace_path = tmp_path / "approx.jsonl"
        assert main(
            ["approx", example_file, "-k", "4", "--trace", str(trace_path)]
        ) == 0
        record = RunRecord.read_jsonl(str(trace_path))
        assert record.config["command"] == "approx"
        assert record.config["k"] == 4

    def test_trace_summarize(self, example_file, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        main(["ecc", example_file, "--trace", str(trace_path)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "convergence:" in out
        assert "radius=3" in out
        assert "diameter=5" in out

    def test_no_trace_flag_writes_nothing(self, example_file, tmp_path):
        before = set(tmp_path.iterdir())
        assert main(["ecc", example_file]) == 0
        assert set(tmp_path.iterdir()) == before


class TestDiameter:
    def test_diameter(self, example_file, capsys):
        assert main(["diameter", example_file]) == 0
        assert "diameter=5" in capsys.readouterr().out

    def test_diameter_with_snap(self, example_file, capsys):
        assert main(
            ["diameter", example_file, "--snap-sample", "5"]
        ) == 0
        assert "SNAP sampling estimate" in capsys.readouterr().out


class TestStats:
    def test_stats(self, example_file, capsys):
        assert main(["stats", example_file]) == 0
        out = capsys.readouterr().out
        assert "|F1|=6" in out
        assert "|F2|=2" in out
        assert "S_4: 1" in out


class TestTable3:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "DBLP" in out and "UKUN" in out
        assert "4,653,174,411" in out


class TestErrors:
    def test_missing_file_reports_error(self, capsys):
        with pytest.raises((SystemExit, FileNotFoundError, OSError)):
            main(["ecc", "/nonexistent/file.txt"])

    def test_dataset_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("not an edge list\n")
        assert main(["ecc", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCompare:
    def test_compare_runs_all(self, example_file, capsys):
        assert main(["compare", example_file]) == 0
        out = capsys.readouterr().out
        for label in ("IFECC-1", "IFECC-16", "BoundECC", "PLLECC"):
            assert label in out

    def test_compare_with_naive(self, example_file, capsys):
        assert main(["compare", example_file, "--naive"]) == 0
        assert "Naive" in capsys.readouterr().out

    def test_compare_budget_dnf(self, capsys):
        # a tiny budget forces the PLLECC row to DNF on a dataset graph
        assert main(["compare", "DBLP", "--budget", "0.0001"]) == 0
        out = capsys.readouterr().out
        assert "DNF" in out


class TestGenerate:
    def test_generate_round_trips(self, tmp_path, capsys):
        out_path = tmp_path / "dblp.txt"
        assert main(["generate", "DBLP", str(out_path)]) == 0
        from repro.graph.io import read_edge_list

        graph = read_edge_list(out_path)
        assert graph.num_edges > 0
        assert "wrote DBLP stand-in" in capsys.readouterr().out

    def test_generate_unknown_dataset(self, tmp_path, capsys):
        assert main(["generate", "NOPE", str(tmp_path / "x.txt")]) == 1
        assert "error:" in capsys.readouterr().err


class TestApproxEstimator:
    def test_estimator_flag(self, example_file, capsys):
        assert main(
            ["approx", example_file, "-k", "2", "--estimator", "midpoint"]
        ) == 0
        assert "midpoint" in capsys.readouterr().out

    def test_bad_estimator_rejected(self, example_file):
        with pytest.raises(SystemExit):
            main(["approx", example_file, "--estimator", "magic"])


class TestStore:
    @pytest.fixture(autouse=True)
    def _isolated_store(self, tmp_path, monkeypatch):
        from repro.datasets import reset_default_collection

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "stores"))
        reset_default_collection()
        yield
        reset_default_collection()

    def test_store_build_and_info(self, capsys):
        assert main(["store", "build", "DBLP"]) == 0
        out = capsys.readouterr().out
        assert "DBLP" in out
        assert main(["store", "info", "store://DBLP"]) == 0
        out = capsys.readouterr().out
        assert "kind" in out and "fingerprint" in out

    def test_store_build_is_cached(self, capsys):
        assert main(["store", "build", "DBLP"]) == 0
        first = capsys.readouterr().out
        assert main(["store", "build", "DBLP"]) == 0
        second = capsys.readouterr().out
        assert "cached" in second or first != ""  # second run hits the file

    def test_store_verify(self, capsys):
        assert main(["store", "build", "DBLP"]) == 0
        capsys.readouterr()
        assert main(["store", "verify", "DBLP"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_store_verify_detects_corruption(self, tmp_path, capsys):
        from repro.datasets import default_collection

        assert main(["store", "build", "DBLP"]) == 0
        path = default_collection().path_for("DBLP")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert main(["store", "verify", "DBLP"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_ecc_on_store_url(self, capsys):
        assert main(["store", "build", "DBLP"]) == 0
        capsys.readouterr()
        assert main(["ecc", "store://DBLP"]) == 0
        assert "radius=" in capsys.readouterr().out

    def test_ecc_on_rcsr_path(self, tmp_path, capsys):
        from repro.graph.io import save_store

        path = tmp_path / "example.rcsr"
        save_store(paper_example_graph(), path)
        assert main(["ecc", str(path)]) == 0
        assert "radius=3 diameter=5" in capsys.readouterr().out

    def test_store_trace_records_fingerprint(self, tmp_path):
        import json

        from repro.datasets import default_collection

        assert main(["store", "build", "DBLP"]) == 0
        trace_path = tmp_path / "rec.jsonl"
        assert main(
            ["ecc", "store://DBLP", "--trace", str(trace_path)]
        ) == 0
        with trace_path.open() as handle:
            header = json.loads(handle.readline())
        store_meta = header["config"]["store"]
        assert store_meta["path"] == str(
            default_collection().path_for("DBLP")
        )
        assert len(store_meta["fingerprint"]) == 16

    def test_store_url_matches_dataset_result(self, tmp_path, capsys):
        store_out = tmp_path / "store.txt"
        dataset_out = tmp_path / "dataset.txt"
        assert main(["ecc", "store://DBLP", "-o", str(store_out)]) == 0
        assert main(["ecc", "DBLP", "-o", str(dataset_out)]) == 0
        assert (
            np.loadtxt(store_out).tolist() == np.loadtxt(dataset_out).tolist()
        )

    def test_store_build_unknown_name(self, capsys):
        assert main(["store", "build", "NOPE"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_store_info_missing_target(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "absent.rcsr")]) == 1
        assert "error:" in capsys.readouterr().err


class TestBackendFlags:
    def test_backend_defaults_to_numpy_in_config(self, example_file, tmp_path):
        import json

        trace_path = tmp_path / "rec.jsonl"
        assert main(["ecc", example_file, "--trace", str(trace_path)]) == 0
        with trace_path.open() as handle:
            header = json.loads(handle.readline())
        assert header["config"]["backend"] == "numpy"
        assert header["config"]["workers"] is None

    def test_process_backend_matches_numpy(self, example_file, tmp_path, capsys):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.parallel import shutdown_pools

        numpy_out = tmp_path / "numpy.txt"
        process_out = tmp_path / "process.txt"
        assert main(["ecc", example_file, "-o", str(numpy_out)]) == 0
        assert main(
            [
                "ecc", example_file, "-o", str(process_out),
                "--backend", "process", "--workers", "2",
            ]
        ) == 0
        shutdown_pools()
        assert np.loadtxt(numpy_out).tolist() == np.loadtxt(process_out).tolist()

    def test_backend_recorded_in_run_record(self, example_file, tmp_path):
        import json

        pytest.importorskip("multiprocessing.shared_memory")
        from repro.parallel import shutdown_pools

        trace_path = tmp_path / "rec.jsonl"
        assert main(
            [
                "approx", example_file, "-k", "2",
                "--backend", "process", "--workers", "2",
                "--trace", str(trace_path),
            ]
        ) == 0
        shutdown_pools()
        with trace_path.open() as handle:
            header = json.loads(handle.readline())
        assert header["config"]["backend"] == "process"
        assert header["config"]["workers"] == 2

    def test_diameter_accepts_backend(self, example_file, capsys):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.parallel import shutdown_pools

        assert main(
            ["diameter", example_file, "--backend", "process", "--workers", "1"]
        ) == 0
        shutdown_pools()
        assert "radius=3 diameter=5" in capsys.readouterr().out

    def test_bad_backend_rejected(self, example_file):
        with pytest.raises(SystemExit):
            main(["ecc", example_file, "--backend", "cuda"])


class TestProgress:
    def test_ecc_progress_renders_on_stderr(self, example_file, capsys):
        assert main(["ecc", example_file, "--progress"]) == 0
        captured = capsys.readouterr()
        assert "radius=3 diameter=5" in captured.out
        assert "[progress]" in captured.err
        assert "done" in captured.err
        assert captured.err.endswith("\n")

    def test_progress_composes_with_trace(
        self, example_file, tmp_path, capsys
    ):
        from repro.obs.record import RunRecord

        trace_path = tmp_path / "run.jsonl"
        assert main(
            ["ecc", example_file, "--progress", "--trace", str(trace_path)]
        ) == 0
        captured = capsys.readouterr()
        assert "[progress]" in captured.err
        record = RunRecord.read_jsonl(str(trace_path))
        assert record.probe_events()

    def test_approx_and_diameter_accept_progress(
        self, example_file, capsys
    ):
        assert main(["approx", example_file, "-k", "4", "--progress"]) == 0
        assert "[progress]" in capsys.readouterr().err
        assert main(["diameter", example_file, "--progress"]) == 0
        assert "[progress]" in capsys.readouterr().err


class TestBench:
    """CLI surface of the regression gate (semantics in tests/tools)."""

    def _artifact(self, tmp_path, name, ecc_speedup):
        import json

        doc = {
            "schema": "bench_msbfs_engine/v1",
            "mode": "smoke",
            "target_speedup": 2.0,
            "rows_target_speedup": 1.5,
            "bit_identical": True,
            "graphs": [
                {
                    "name": "powerlaw-4k",
                    "speedup_ecc_vs_loop": ecc_speedup,
                    "speedup_rows_vs_loop": ecc_speedup,
                }
            ],
            "aggregate": {"powerlaw_speedup_ecc_vs_loop": ecc_speedup},
        }
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_bench_check_passes_good_artifact(self, tmp_path, capsys):
        path = self._artifact(tmp_path, "BENCH_msbfs_engine.json", 3.0)
        assert main(["bench", "check", path]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_bench_check_fails_missed_target(self, tmp_path, capsys):
        path = self._artifact(tmp_path, "BENCH_msbfs_engine.json", 1.1)
        assert main(["bench", "check", path]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_compare_gates_regression(self, tmp_path, capsys):
        fresh = self._artifact(tmp_path, "fresh.json", 1.0)
        base = self._artifact(tmp_path, "base.json", 3.0)
        assert main(["bench", "compare", fresh, base]) == 1
        capsys.readouterr()
        assert main(
            ["bench", "compare", fresh, base, "--tolerance", "0.8"]
        ) == 0

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["bench"])
