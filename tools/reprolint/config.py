"""Repository-specific policy knobs for the rule set.

Rules read these constants instead of hard-coding paths so the policy is
reviewable in one place.  Paths are repository-relative posix strings.
"""

from __future__ import annotations

__all__ = [
    "SRC_PREFIX",
    "SRC_ROOT",
    "CSR_MUTATION_ALLOWLIST",
    "BOUNDS_MODULE",
    "BOUNDS_PROTECTED_MODULES",
    "BANNED_SRC_IMPORTS",
    "ALLOWED_SRC_IMPORT_ROOTS",
    "HOT_PATH_PREFIXES",
    "PUBLIC_API_EXEMPT",
    "CANONICAL_DTYPES",
    "KNOWN_DTYPES",
    "TIMING_EXEMPT_PREFIXES",
    "POOLED_BUFFER_ATTRS",
    "WORKSPACE_PRODUCERS",
    "PROTOCOL_WORKSPACE_METHODS",
    "WORKSPACE_RULE_EXEMPT",
    "MUTATION_CONTRACT_TYPES",
    "SHARED_STATE",
    "JUSTIFICATION_REQUIRED",
]

#: Everything under here is shipped library code and held to the
#: strictest standard.
SRC_PREFIX = "src/repro/"

#: Import root of the shipped package; ``repro.x.y`` resolves to
#: ``src/repro/x/y.py`` for the cross-module dataflow analysis.
SRC_ROOT = "src"

#: The only modules allowed to create or (re)mark CSR arrays.  They are
#: the constructors: everything else must treat ``Graph.indptr`` /
#: ``Graph.indices`` as frozen (Theorem 4.5's O(m+n) immutable layout).
CSR_MUTATION_ALLOWLIST = frozenset(
    {
        "src/repro/graph/builder.py",
        "src/repro/graph/csr.py",
        "src/repro/directed/graph.py",
        "src/repro/weighted/graph.py",
        # Rebuilds frozen zero-copy graph views on shared-memory attach;
        # a constructor in everything but name.
        "src/repro/parallel/shm.py",
        # Same pattern over mmap'd .rcsr store pages (graph_from_arrays).
        "src/repro/store/format.py",
    }
)

#: The one module allowed to assign to eccentricity bound arrays; all
#: other code must go through the BoundState API (Lemma 3.1 / 3.3).
BOUNDS_MODULE = "src/repro/core/bounds.py"

#: Solver-core modules where even *bare* ``lower`` / ``upper`` local
#: names count as bound arrays for R2.  These are the metric-generic
#: Algorithm-2 loop and its weighted/directed instantiations — the
#: modules where a raw bound write would bypass the tolerance-aware
#: invariant checks the unification introduced.
BOUNDS_PROTECTED_MODULES = frozenset(
    {
        "src/repro/core/solver.py",
        "src/repro/weighted/eccentricity.py",
        "src/repro/directed/eccentricity.py",
    }
)

#: Heavyweight graph libraries that must never leak into shipped code;
#: they are test/bench-only oracles.
BANNED_SRC_IMPORTS = frozenset({"networkx", "scipy", "pandas", "matplotlib"})

#: Import roots shipped code may use: the standard library is detected
#: dynamically; beyond it only these are allowed.
ALLOWED_SRC_IMPORT_ROOTS = frozenset({"numpy", "repro"})

#: Modules whose loops dominate the paper's measured runtimes.  Nested
#: Python-level loops here silently demote "scalable" to "quadratic
#: interpreter time".
#: (weighted/dijkstra.py is deliberately absent: binary-heap Dijkstra is
#: an inherently scalar loop; its cost is the metric's price, not an
#: accidental de-vectorisation.)
HOT_PATH_PREFIXES = (
    "src/repro/core/",
    "src/repro/graph/engine.py",
    "src/repro/graph/traversal.py",
    "src/repro/graph/msbfs.py",
    "src/repro/graph/msengine.py",
    "src/repro/weighted/eccentricity.py",
    "src/repro/directed/eccentricity.py",
    "src/repro/directed/traversal.py",
    "src/repro/parallel/",
)

#: Modules exempt from the ``__all__`` requirement (script entry points).
PUBLIC_API_EXEMPT = frozenset({"src/repro/__main__.py"})

#: Canonical dtypes for the CSR arrays (Theorem 4.5 memory accounting):
#: variables with these exact names must be constructed with the matching
#: dtype whenever an explicit dtype appears at the construction site.
CANONICAL_DTYPES = {"indptr": "int64", "indices": "int32"}

#: The observability subsystem is the only shipped code allowed to call
#: ``time.perf_counter()`` directly (R8 ``no-adhoc-timing``): it *is*
#: the clock abstraction.  Everything else measures wall time through
#: ``repro.obs.trace.Stopwatch`` or a tracer span, so timings stay
#: consistent, mockable, and visible to the trace/metrics layer.
TIMING_EXEMPT_PREFIXES = ("src/repro/obs/",)

# ---------------------------------------------------------------------------
# Buffer-ownership policy (R9 / R10 / R11, tools/reprolint/dataflow.py)
# ---------------------------------------------------------------------------

#: Pooled workspace buffers, keyed by owning class.  An expression whose
#: provenance reaches one of these attributes is treated as a *loan* of
#: the pool: valid until the owner's next run, never to be returned or
#: stored without an explicit ``.copy()``.
POOLED_BUFFER_ATTRS = {
    "repro.graph.engine.BFSEngine": frozenset(
        {"_dist", "_frontier_mask", "_dedupe_mask", "_owner", "_priority"}
    ),
    "repro.graph.msbfs._LaneWorkspace": frozenset(
        {"seen", "frontier", "next_mask"}
    ),
    "repro.graph.msengine._MSWorkspace": frozenset(
        {"seen", "frontier", "next_mask"}
    ),
}

#: Functions *documented* to return pooled buffers — the producer API.
#: R9 does not flag their own ``return`` statements; every caller is
#: still analysed as receiving a loan.  Keys are ``module-qualified``
#: function names.
WORKSPACE_PRODUCERS = frozenset(
    {
        "repro.graph.engine.BFSEngine.run",
        "repro.graph.engine.BFSEngine._run_impl",
        "repro.graph.engine.BFSEngine.run_multi",
        "repro.graph.engine.BFSEngine._run_multi_impl",
        "repro.core.oracles.BFSOracle.sweep_probe",
        "repro.sanitize.WorkspaceGuard.loan",
    }
)

#: ``DistanceOracle`` protocol methods that may return pooled-workspace
#: views regardless of the concrete receiver; the tuple lists each
#: returned slot as ``"workspace"`` or ``None``.  Keeps consumers honest
#: even when the receiver's concrete class cannot be resolved.
PROTOCOL_WORKSPACE_METHODS = {
    "sweep_probe": (None, "workspace"),
}

#: Files exempt from R9: the sanitizer *is* the guard layer and handles
#: raw pooled buffers by design.
WORKSPACE_RULE_EXEMPT = frozenset({"src/repro/sanitize.py"})

#: Annotation base names that put a parameter in scope for the R11
#: ``:mutates name:`` docstring contract: ndarrays plus the registered
#: pooled-workspace owner types.
MUTATION_CONTRACT_TYPES = frozenset(
    {"ndarray", "BFSEngine", "_LaneWorkspace", "MSBFSEngine", "_MSWorkspace"}
)

#: Registered module-level mutable state (R10): every mutable module
#: global and weak-keyed cache in shipped code must appear here, mapped
#: to the guard helpers that are allowed to touch it.  Everything else
#: must treat these names as private to their accessors.
SHARED_STATE = {
    "src/repro/graph/engine.py": {
        "_ENGINES": ("engine_for",),
    },
    "src/repro/graph/msengine.py": {
        "_ENGINES": ("msengine_for",),
    },
    "src/repro/parallel/pool.py": {
        "_POOLS": ("pool_for", "shutdown_pools"),
    },
    "src/repro/datasets/loader.py": {
        "_CACHE": ("load_dataset", "clear_cache"),
    },
    "src/repro/datasets/collection.py": {
        "_DEFAULT_COLLECTION": (
            "default_collection",
            "reset_default_collection",
        ),
    },
    "src/repro/store/format.py": {
        "_SOURCES": ("register_source", "source_of"),
    },
    "src/repro/obs/trace.py": {
        "_ACTIVE": ("get_tracer", "set_tracer", "tracing"),
    },
    "src/repro/obs/benchguard.py": {
        "SCHEMAS": ("extractor_for", "known_schemas"),
    },
    "src/repro/sanitize.py": {
        "_ENABLED": ("enabled", "enable", "disable", "sanitized"),
    },
    "tools/reprolint/registry.py": {
        "RULE_REGISTRY": ("rule", "all_rules"),
    },
}

#: Suppressions of these rules must carry a justification comment after
#: the code list, e.g. ``disable=R9 (returns the documented loan)``.
JUSTIFICATION_REQUIRED = frozenset(
    {
        "r9",
        "workspace-escape",
        "r10",
        "guarded-shared-state",
        "r11",
        "inplace-mutation-contract",
    }
)

#: Dtype spellings understood by the ``:dtype name: <dtype>`` docstring
#: contract grammar.
KNOWN_DTYPES = frozenset(
    {
        "bool_",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "float32",
        "float64",
    }
)
