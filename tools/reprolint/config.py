"""Repository-specific policy knobs for the rule set.

Rules read these constants instead of hard-coding paths so the policy is
reviewable in one place.  Paths are repository-relative posix strings.
"""

from __future__ import annotations

__all__ = [
    "SRC_PREFIX",
    "CSR_MUTATION_ALLOWLIST",
    "BOUNDS_MODULE",
    "BOUNDS_PROTECTED_MODULES",
    "BANNED_SRC_IMPORTS",
    "ALLOWED_SRC_IMPORT_ROOTS",
    "HOT_PATH_PREFIXES",
    "PUBLIC_API_EXEMPT",
    "CANONICAL_DTYPES",
    "KNOWN_DTYPES",
    "TIMING_EXEMPT_PREFIXES",
]

#: Everything under here is shipped library code and held to the
#: strictest standard.
SRC_PREFIX = "src/repro/"

#: The only modules allowed to create or (re)mark CSR arrays.  They are
#: the constructors: everything else must treat ``Graph.indptr`` /
#: ``Graph.indices`` as frozen (Theorem 4.5's O(m+n) immutable layout).
CSR_MUTATION_ALLOWLIST = frozenset(
    {
        "src/repro/graph/builder.py",
        "src/repro/graph/csr.py",
        "src/repro/directed/graph.py",
        "src/repro/weighted/graph.py",
    }
)

#: The one module allowed to assign to eccentricity bound arrays; all
#: other code must go through the BoundState API (Lemma 3.1 / 3.3).
BOUNDS_MODULE = "src/repro/core/bounds.py"

#: Solver-core modules where even *bare* ``lower`` / ``upper`` local
#: names count as bound arrays for R2.  These are the metric-generic
#: Algorithm-2 loop and its weighted/directed instantiations — the
#: modules where a raw bound write would bypass the tolerance-aware
#: invariant checks the unification introduced.
BOUNDS_PROTECTED_MODULES = frozenset(
    {
        "src/repro/core/solver.py",
        "src/repro/weighted/eccentricity.py",
        "src/repro/directed/eccentricity.py",
    }
)

#: Heavyweight graph libraries that must never leak into shipped code;
#: they are test/bench-only oracles.
BANNED_SRC_IMPORTS = frozenset({"networkx", "scipy", "pandas", "matplotlib"})

#: Import roots shipped code may use: the standard library is detected
#: dynamically; beyond it only these are allowed.
ALLOWED_SRC_IMPORT_ROOTS = frozenset({"numpy", "repro"})

#: Modules whose loops dominate the paper's measured runtimes.  Nested
#: Python-level loops here silently demote "scalable" to "quadratic
#: interpreter time".
#: (weighted/dijkstra.py is deliberately absent: binary-heap Dijkstra is
#: an inherently scalar loop; its cost is the metric's price, not an
#: accidental de-vectorisation.)
HOT_PATH_PREFIXES = (
    "src/repro/core/",
    "src/repro/graph/engine.py",
    "src/repro/graph/traversal.py",
    "src/repro/graph/msbfs.py",
    "src/repro/weighted/eccentricity.py",
    "src/repro/directed/eccentricity.py",
    "src/repro/directed/traversal.py",
)

#: Modules exempt from the ``__all__`` requirement (script entry points).
PUBLIC_API_EXEMPT = frozenset({"src/repro/__main__.py"})

#: Canonical dtypes for the CSR arrays (Theorem 4.5 memory accounting):
#: variables with these exact names must be constructed with the matching
#: dtype whenever an explicit dtype appears at the construction site.
CANONICAL_DTYPES = {"indptr": "int64", "indices": "int32"}

#: The observability subsystem is the only shipped code allowed to call
#: ``time.perf_counter()`` directly (R8 ``no-adhoc-timing``): it *is*
#: the clock abstraction.  Everything else measures wall time through
#: ``repro.obs.trace.Stopwatch`` or a tracer span, so timings stay
#: consistent, mockable, and visible to the trace/metrics layer.
TIMING_EXEMPT_PREFIXES = ("src/repro/obs/",)

#: Dtype spellings understood by the ``:dtype name: <dtype>`` docstring
#: contract grammar.
KNOWN_DTYPES = frozenset(
    {
        "bool_",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "float32",
        "float64",
    }
)
