"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
import sys
from typing import Iterator, List, Optional

__all__ = [
    "assignment_targets",
    "attribute_name",
    "dtype_token",
    "iter_functions",
    "stdlib_modules",
    "walk_with_loops",
]


def assignment_targets(node: ast.AST) -> List[ast.expr]:
    """Target expressions written by an assignment-like statement.

    Tuple/list destructuring and starred targets are flattened; for
    ``AugAssign``/``AnnAssign`` the single target is returned.
    """
    raw: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        raw.extend(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        raw.append(node.target)
    elif isinstance(node, ast.For):
        raw.append(node.target)
    elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
        raw.append(node.optional_vars)
    out: List[ast.expr] = []
    stack = list(raw)
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Starred):
            stack.append(target.value)
        else:
            out.append(target)
    return out


def attribute_name(node: ast.expr) -> Optional[str]:
    """``attr`` for an ``ast.Attribute``, else ``None``."""
    return node.attr if isinstance(node, ast.Attribute) else None


def dtype_token(node: ast.expr) -> Optional[str]:
    """Canonical dtype spelling for an expression, if recognisable.

    Handles ``np.int32``/``numpy.int32`` attributes, bare names
    (``int32``), and string literals (``"int32"``); returns ``None`` for
    anything dynamic.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def iter_functions(
    tree: ast.AST,
) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_with_loops(
    node: ast.AST, loop_depth: int = 0
) -> Iterator["tuple[ast.AST, int]"]:
    """Yield ``(node, enclosing_python_loop_depth)`` pairs.

    ``for``/``while`` bodies increase the depth; nested function and
    class definitions reset it (a closure's loop is not the caller's
    loop).
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield child, loop_depth
            yield from walk_with_loops(child, 0)
        elif isinstance(child, (ast.For, ast.While)):
            yield child, loop_depth
            yield from walk_with_loops(child, loop_depth + 1)
        else:
            yield child, loop_depth
            yield from walk_with_loops(child, loop_depth)


def stdlib_modules() -> "frozenset[str]":
    """Names of standard-library top-level modules."""
    if hasattr(sys, "stdlib_module_names"):
        return frozenset(sys.stdlib_module_names)
    # Python < 3.10 fallback: a conservative hand list of what the repo
    # could plausibly import from the stdlib.
    return frozenset(
        {
            "abc", "argparse", "array", "ast", "bisect", "collections",
            "contextlib", "copy", "csv", "dataclasses", "enum", "functools",
            "gzip", "hashlib", "heapq", "importlib", "io", "itertools",
            "json", "logging", "math", "operator", "os", "pathlib",
            "pickle", "random", "re", "shutil", "string", "struct", "sys",
            "tempfile", "textwrap", "time", "types", "typing", "unittest",
            "urllib", "warnings", "zlib",
        }
    )
