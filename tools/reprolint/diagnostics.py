"""Diagnostic records emitted by lint rules."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Union

__all__ = ["Diagnostic"]


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at one source location.

    Attributes
    ----------
    rule_id:
        Short rule code (``"R1"`` .. ``"R7"``).
    rule_name:
        Human-readable slug (``"csr-immutable"``).
    path:
        Repository-relative posix path of the offending file.
    line:
        1-based line number of the violation.
    col:
        0-based column offset.
    message:
        What was violated and why it matters.
    """

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render in the conventional ``path:line:col: CODE message`` shape."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id}[{self.rule_name}] {self.message}"
        )

    def sort_key(self) -> "tuple[str, int, int, str]":
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready mapping (``--format json``); ``col`` stays 0-based."""
        return asdict(self)

    def format_github(self) -> str:
        """Render as a GitHub Actions workflow annotation command."""
        level = "warning" if self.rule_id.startswith("W") else "error"
        title = f"{self.rule_id}[{self.rule_name}]"
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (
            f"::{level} file={self.path},line={self.line},"
            f"col={self.col + 1},title={title}::{message}"
        )
