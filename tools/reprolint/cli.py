"""Command-line interface: ``python -m reprolint [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from reprolint.diagnostics import Diagnostic
from reprolint.engine import lint_paths
from reprolint.registry import Rule, all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Invariant-aware static analysis for the IFECC reproduction. "
            "Exits 1 when any rule fires."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line; print diagnostics only",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output mode: 'text' (path:line:col lines, default), 'json' "
            "(machine-readable report), or 'github' (Actions workflow "
            "annotations so PRs are annotated in place)"
        ),
    )
    return parser


def _match(rule_obj: Rule, tokens: List[str]) -> bool:
    return rule_obj.rule_id.lower() in tokens or rule_obj.rule_name in tokens


def _filter_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    rules = all_rules()
    if select:
        tokens = [tok.strip().lower() for tok in select.split(",")]
        rules = [r for r in rules if _match(r, tokens)]
    if ignore:
        tokens = [tok.strip().lower() for tok in ignore.split(",")]
        rules = [r for r in rules if not _match(r, tokens)]
    return rules


def _print_catalogue() -> None:
    for rule_obj in all_rules():
        print(f"{rule_obj.rule_id}  {rule_obj.rule_name}")
        print(f"    {rule_obj.summary}")
        if rule_obj.protects:
            print(f"    protects: {rule_obj.protects}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalogue()
        return 0
    rules = _filter_rules(args.select, args.ignore)
    if not rules:
        print("reprolint: no rules selected", file=sys.stderr)
        return 2
    try:
        diagnostics = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    _emit(diagnostics, rules, args)
    return 1 if diagnostics else 0


def _emit(
    diagnostics: List[Diagnostic],
    rules: List[Rule],
    args: argparse.Namespace,
) -> None:
    if args.output_format == "json":
        report = {
            "diagnostics": [diag.to_dict() for diag in diagnostics],
            "summary": {
                "violations": len(diagnostics),
                "rules": len(rules),
            },
        }
        print(json.dumps(report, indent=2))
        return
    if args.output_format == "github":
        for diag in diagnostics:
            print(diag.format_github())
    else:
        for diag in diagnostics:
            print(diag.format())
    if not args.quiet:
        noun = "violation" if len(diagnostics) == 1 else "violations"
        print(
            f"reprolint: {len(diagnostics)} {noun} "
            f"({len(rules)} rules)",
            file=sys.stderr,
        )


if __name__ == "__main__":
    sys.exit(main())
