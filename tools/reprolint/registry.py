"""Rule base class and registry.

A rule is a class with ``rule_id``/``rule_name``/``protects`` metadata and
a ``check(ctx)`` generator yielding :class:`~reprolint.diagnostics.Diagnostic`
objects.  Registering is done with the :func:`rule` decorator; the CLI and
engine discover rules through :data:`RULE_REGISTRY`.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Type

from reprolint.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from reprolint.engine import ModuleContext

__all__ = ["Rule", "RULE_REGISTRY", "rule", "all_rules"]


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes below and implement
    :meth:`check`; :meth:`applies_to` may narrow the rule to a subset of
    files (hot paths, shipped code, ...).
    """

    #: Short stable code used in reports and suppressions ("R1").
    rule_id: str = ""
    #: Slug name, usable in suppressions ("csr-immutable").
    rule_name: str = ""
    #: One-line description of the invariant.
    summary: str = ""
    #: The paper statement this rule protects ("Theorem 4.5").
    protects: str = ""

    def applies_to(self, ctx: "ModuleContext") -> bool:
        """Whether this rule scans ``ctx``; default: every file."""
        return True

    def check(self, ctx: "ModuleContext") -> Iterator[Diagnostic]:
        """Yield diagnostics for ``ctx``.  Subclasses must override."""
        raise NotImplementedError

    # Helper shared by subclasses -------------------------------------
    def diagnostic(
        self, ctx: "ModuleContext", node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=self.rule_id,
            rule_name=self.rule_name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass."""
    if not cls.rule_id or not cls.rule_name:
        raise ValueError(f"rule {cls.__name__} must set rule_id and rule_name")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, in rule-id order."""
    import reprolint.rules  # noqa: F401  (registration side effect)

    return [RULE_REGISTRY[key]() for key in sorted(RULE_REGISTRY)]
