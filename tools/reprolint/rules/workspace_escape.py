"""R9 — pooled workspace buffers must not escape their owner.

``BFSEngine`` and ``_LaneWorkspace`` own reusable buffers that are
overwritten by every run; any view of them that is *returned*, *yielded*
or *stored* outside the owner outlives its validity window and becomes a
silent-wrong-answer bug (and a data race under the planned parallel
backend).  The rule runs the buffer-provenance dataflow analysis
(:mod:`reprolint.dataflow`) over every shipped function and flags escape
events, with two sanctioned exits:

* the documented producer API (``config.WORKSPACE_PRODUCERS``) — the
  functions whose contract *is* "returns the pooled buffer, copy before
  the next call";
* an explicit ``.copy()`` (which severs provenance), or a justified
  ``# reprolint: disable=R9`` for the rare deliberate loan.

Stores onto a registered workspace-owner instance (the msbfs
buffer-swap idiom) are part of the pooling discipline and are allowed.
"""

from __future__ import annotations

from typing import Iterator

from reprolint.config import (
    SRC_PREFIX,
    WORKSPACE_PRODUCERS,
    WORKSPACE_RULE_EXEMPT,
)
from reprolint.dataflow import (
    FunctionAnalyzer,
    ProjectIndex,
    iter_module_functions,
)
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["WorkspaceEscapeRule"]

_VERBS = {
    "return": "returns",
    "yield": "yields",
    "store": "stores",
    "stash": "stashes",
}


@rule
class WorkspaceEscapeRule(Rule):
    rule_id = "R9"
    rule_name = "workspace-escape"
    summary = (
        "Pooled workspace buffers (BFSEngine/_LaneWorkspace) may not be "
        "returned, yielded, or stored without an explicit .copy()."
    )
    protects = (
        "pooled-kernel reuse discipline (PR 2): loans are valid only "
        "until the owner's next run"
    )

    def __init__(self) -> None:
        # One index per lint run: cross-module summaries are shared by
        # every file this rule instance scans.
        self._index = ProjectIndex()

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.is_under(SRC_PREFIX) and ctx.path not in WORKSPACE_RULE_EXEMPT

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        module = self._index.module_for_source(ctx.path, ctx.tree)
        for qualname, func, _owner_node in iter_module_functions(ctx.tree):
            owner = None
            if "." in qualname:
                owner = module.classes.get(qualname.split(".")[0])
            summary = FunctionAnalyzer(func, owner, module).analyze()
            producer = f"{module.qual}.{qualname}" in WORKSPACE_PRODUCERS
            for event in summary.events:
                if producer and event.kind in ("return", "yield"):
                    continue
                verb = _VERBS.get(event.kind, event.kind)
                yield self.diagnostic(
                    ctx,
                    event.node,
                    f"'{qualname}' {verb} a view of pooled workspace "
                    f"buffer {event.desc}, which the next engine run "
                    f"overwrites; .copy() it or register the function "
                    f"as a documented producer",
                )
