"""R11 — in-place mutation of array/workspace arguments must be declared.

A function that writes into an ndarray argument (or clobbers a
workspace-owner argument such as a ``BFSEngine``) changes state its
caller also sees — the exact behaviour that must be explicit before the
parallel backend can reason about which calls commute.  The contract is
a docstring field line, machine-checked like the ``:dtype`` contracts::

    :mutates work:

Checked both ways with the dataflow analysis
(:mod:`reprolint.dataflow`):

* a parameter in contract scope (annotated with a type in
  ``config.MUTATION_CONTRACT_TYPES``) that the body mutates — directly,
  through a local alias, through ``np.<ufunc>.at`` / ``out=``, or
  transitively through an intra-package call — must be declared;
* a declared parameter must exist and must actually be mutated, so
  stale contracts cannot linger after a refactor.

``self``/``cls`` are exempt: mutating your own object is what methods
are for; the pooled-buffer lifecycle of ``self`` state is R9's domain.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from reprolint.config import MUTATION_CONTRACT_TYPES, SRC_PREFIX
from reprolint.dataflow import (
    FunctionAnalyzer,
    ProjectIndex,
    annotation_names,
    iter_module_functions,
    parse_mutates,
)
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["MutationContractRule"]


@rule
class MutationContractRule(Rule):
    rule_id = "R11"
    rule_name = "inplace-mutation-contract"
    summary = (
        "Functions mutating an ndarray/workspace argument in place must "
        "declare ':mutates <name>:' in their docstring (and vice versa)."
    )
    protects = (
        "call-commutativity reasoning for the parallel backend; "
        "explicit aliasing contracts at API boundaries"
    )

    def __init__(self) -> None:
        self._index = ProjectIndex()

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.is_under(SRC_PREFIX)

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        module = self._index.module_for_source(ctx.path, ctx.tree)
        for qualname, func, _owner_node in iter_module_functions(ctx.tree):
            owner = None
            if "." in qualname:
                owner = module.classes.get(qualname.split(".")[0])
            in_scope = self._contract_scope(func)
            docstring = ctx.docstring_of(func) or ""
            declared = parse_mutates(docstring)
            if not in_scope and not declared:
                continue
            summary = FunctionAnalyzer(func, owner, module).analyze()
            mutated_in_scope: Set[str] = {
                name for name in summary.mutates if name in in_scope
            }
            for name in sorted(mutated_in_scope - set(declared)):
                yield self.diagnostic(
                    ctx,
                    func,
                    f"'{qualname}' mutates argument '{name}' in place "
                    f"but its docstring does not declare "
                    f"':mutates {name}:'",
                )
            param_names = set(summary.params)
            for name in sorted(declared):
                if name not in param_names:
                    yield self.diagnostic(
                        ctx,
                        func,
                        f"'{qualname}' declares ':mutates {name}:' but "
                        f"has no parameter named '{name}'",
                    )
                elif name not in summary.mutates:
                    yield self.diagnostic(
                        ctx,
                        func,
                        f"'{qualname}' declares ':mutates {name}:' but "
                        f"no in-place mutation of '{name}' was detected; "
                        f"drop the stale contract",
                    )

    @staticmethod
    def _contract_scope(func) -> List[str]:
        """Parameter names whose annotations put them in contract scope."""
        args = func.args
        ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        in_scope: List[str] = []
        for i, arg in enumerate(ordered):
            if i == 0 and arg.arg in ("self", "cls"):
                continue
            names = set(annotation_names(arg.annotation))
            if names & MUTATION_CONTRACT_TYPES:
                in_scope.append(arg.arg)
        return in_scope
