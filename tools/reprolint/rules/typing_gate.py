"""R7 — shipped code is fully annotated (the local typing gate).

``mypy --strict``-grade annotation coverage, enforced without needing
mypy installed: every function and method under ``src/repro/`` must
annotate each parameter (``self``/``cls`` excepted) and its return type.
This keeps the ``py.typed`` promise honest and lets downstream users
type-check against the package; CI additionally runs real mypy under
the ``[tool.mypy]`` config in ``pyproject.toml``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from reprolint.astutil import iter_functions
from reprolint.config import SRC_PREFIX
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["TypingGateRule"]


def _unannotated_params(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[str]:
    args = func.args
    missing: List[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return missing


@rule
class TypingGateRule(Rule):
    rule_id = "R7"
    rule_name = "typing-gate"
    summary = (
        "Every function/method in src/repro annotates all parameters "
        "and its return type (mypy-strict-grade coverage)."
    )
    protects = "the py.typed contract (PEP 561) and mypy gating"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.is_under(SRC_PREFIX)

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for func in iter_functions(ctx.tree):
            missing = _unannotated_params(func)
            if missing:
                listed = ", ".join(f"'{name}'" for name in missing)
                yield self.diagnostic(
                    ctx,
                    func,
                    f"function '{func.name}' has unannotated "
                    f"parameter(s): {listed}",
                )
            if func.returns is None:
                yield self.diagnostic(
                    ctx,
                    func,
                    f"function '{func.name}' has no return annotation",
                )
