"""R5 — every public module declares an accurate ``__all__``.

``__all__`` is the contract the package re-exports are built from; a
stale entry turns ``from repro.x import *`` and the API docs into
runtime errors.  The rule requires a literal list/tuple of strings and
verifies each listed name is actually bound at module top level
(definitions, assignments, imports — including inside top-level
``if``/``try`` blocks).  Names served lazily by a module-level
``__getattr__`` (PEP 562 — the deprecation-alias pattern) count as
bound when they appear as string literals inside that function.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from reprolint.config import PUBLIC_API_EXEMPT, SRC_PREFIX
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["PublicApiRule", "module_bindings"]


def module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module scope, descending into top-level blocks."""
    bound: Set[str] = set()

    def visit_block(statements: "list[ast.stmt]") -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            bound.add(node.id)
            elif isinstance(stmt, (ast.If,)):
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit_block(stmt.body)
                visit_block(stmt.orelse)
                visit_block(stmt.finalbody)
                for handler in stmt.handlers:
                    visit_block(handler.body)
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                visit_block(stmt.body)
                if hasattr(stmt, "orelse"):
                    visit_block(stmt.orelse)

    visit_block(tree.body)
    bound.update(_pep562_names(tree))
    return bound


def _pep562_names(tree: ast.Module) -> Set[str]:
    """Names a module-level ``__getattr__`` (PEP 562) can serve.

    Approximated as the string literals mentioned inside the function —
    exactly how the repo's deprecation aliases spell the names they
    forward (``if name == "BFSCounter": ...``).
    """
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__":
            for node in ast.walk(stmt):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    names.add(node.value)
    return names


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return stmt
    return None


@rule
class PublicApiRule(Rule):
    rule_id = "R5"
    rule_name = "public-api"
    summary = (
        "Every public module under src/repro defines a literal __all__ "
        "whose entries all exist at module scope."
    )
    protects = "the package API surface (README / docs import contract)"

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not ctx.is_under(SRC_PREFIX):
            return False
        if ctx.path in PUBLIC_API_EXEMPT:
            return False
        return not ctx.module_name.startswith("_") or ctx.module_name == "__init__.py"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        assignment = _find_all_assignment(ctx.tree)
        if assignment is None:
            yield self.diagnostic(
                ctx,
                ctx.tree,
                "public module does not define __all__",
            )
            return
        value = assignment.value
        if not isinstance(value, (ast.List, ast.Tuple)) or not all(
            isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            for elt in value.elts
        ):
            yield self.diagnostic(
                ctx,
                assignment,
                "__all__ must be a literal list/tuple of string names",
            )
            return
        names = [elt.value for elt in value.elts]  # type: ignore[union-attr]
        seen: Set[str] = set()
        bound = module_bindings(ctx.tree)
        for elt, name in zip(value.elts, names):
            if name in seen:
                yield self.diagnostic(
                    ctx, elt, f"duplicate __all__ entry '{name}'"
                )
            seen.add(name)
            if name not in bound:
                yield self.diagnostic(
                    ctx,
                    elt,
                    f"__all__ lists '{name}' but no such name is bound "
                    f"at module scope",
                )
