"""R2 — eccentricity bounds change only through the BoundState API.

Lemma 3.1 and Lemma 3.3 updates are monotone: lower bounds only rise,
upper bounds only fall, and ``lower <= upper`` always holds.
:class:`repro.core.bounds.BoundState` re-checks that invariant on every
update; raw writes to ``state.lower`` / ``state.upper`` (or to arrays
named ``ecc_lower`` / ``ecc_upper``) bypass the check and can turn an
inconsistent distance vector into a silently wrong eccentricity.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from reprolint import astutil
from reprolint.config import BOUNDS_MODULE, BOUNDS_PROTECTED_MODULES
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["BoundsApiRule"]

_BOUND_ATTRS = frozenset({"lower", "upper"})
_BOUND_NAMES = frozenset({"ecc_lower", "ecc_upper"})
#: In the solver-core modules (BOUNDS_PROTECTED_MODULES) even bare
#: ``lower`` / ``upper`` locals are treated as bound arrays.
_PROTECTED_BARE_NAMES = _BOUND_NAMES | _BOUND_ATTRS


def _bound_target(node: ast.expr, strict_names: bool) -> Optional[str]:
    """Describe the written bound array, or ``None`` if not one."""
    if isinstance(node, ast.Subscript):
        return _bound_target(node.value, strict_names)
    if isinstance(node, ast.Attribute) and node.attr in _BOUND_ATTRS:
        return f".{node.attr}"
    names = _PROTECTED_BARE_NAMES if strict_names else _BOUND_NAMES
    if isinstance(node, ast.Name) and node.id in names:
        return node.id
    return None


@rule
class BoundsApiRule(Rule):
    rule_id = "R2"
    rule_name = "bounds-api"
    summary = (
        "ecc_lower/ecc_upper arrays are mutated only through the "
        "BoundState methods in core/bounds.py."
    )
    protects = "Lemma 3.1 / Lemma 3.3 (monotone, consistent bound updates)"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path != BOUNDS_MODULE

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        strict_names = ctx.path in BOUNDS_PROTECTED_MODULES
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            # Class-level field declarations (`lower: np.ndarray`) inside a
            # dataclass body are Name targets, not bound-array writes.
            for target in astutil.assignment_targets(node):
                described = _bound_target(target, strict_names)
                if described is None:
                    continue
                if isinstance(target, ast.Name) and isinstance(
                    node, ast.AnnAssign
                ):
                    continue
                yield self.diagnostic(
                    ctx,
                    node,
                    f"direct write to bound array '{described}' outside "
                    f"BoundState; use set_exact/apply_lemma31/"
                    f"apply_lower_only/apply_lemma33_tail or a dedicated "
                    f"BoundState method",
                )
