"""R6 — docstring dtype contracts match the dtypes actually constructed.

The memory accounting of Theorem 4.5 (and Figure 10's measurements)
fixes the array layout: ``int64`` row pointers, ``int32`` neighbor ids
and distances.  Docstrings declare these contracts with an explicit
field line::

    :dtype dist: int32

The rule cross-checks every such declaration against the numpy
construction sites of that variable inside the same function (``np.zeros``,
``np.full``, ``.astype`` …) and flags mismatches.  Independently, the
canonically named CSR variables ``indptr``/``indices`` must always be
constructed with their canonical dtypes wherever an explicit ``dtype=``
appears.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Tuple

from reprolint.astutil import dtype_token, iter_functions
from reprolint.config import CANONICAL_DTYPES, KNOWN_DTYPES, SRC_PREFIX
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["DtypeContractsRule", "parse_contracts"]

_CONTRACT_RE = re.compile(r"^\s*:dtype\s+(\w+):\s*([\w.]+)\s*$", re.MULTILINE)

_NUMPY_CTORS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "array",
        "asarray",
        "arange",
        "ascontiguousarray",
        "fromiter",
        "frombuffer",
    }
)


def parse_contracts(docstring: str) -> Dict[str, Tuple[str, int]]:
    """``{var_name: (dtype, offset_line)}`` from ``:dtype var: dt`` lines."""
    out: Dict[str, Tuple[str, int]] = {}
    for match in _CONTRACT_RE.finditer(docstring):
        line = docstring.count("\n", 0, match.start())
        out[match.group(1)] = (match.group(2).split(".")[-1], line)
    return out


def _constructed_dtype(value: ast.expr) -> Optional[str]:
    """Dtype explicitly requested by a numpy construction expression."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        if value.args:
            return dtype_token(value.args[0])
        for keyword in value.keywords:
            if keyword.arg == "dtype":
                return dtype_token(keyword.value)
        return None
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name in _NUMPY_CTORS:
        for keyword in value.keywords:
            if keyword.arg == "dtype":
                return dtype_token(keyword.value)
    return None


def _assigned_name(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@rule
class DtypeContractsRule(Rule):
    rule_id = "R6"
    rule_name = "dtype-contract"
    summary = (
        "':dtype name: <dtype>' docstring contracts (and the canonical "
        "indptr=int64 / indices=int32 naming) match constructed dtypes."
    )
    protects = "Theorem 4.5 / Figure 10 (fixed int64/int32 memory layout)"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.is_under(SRC_PREFIX)

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for func in iter_functions(ctx.tree):
            docstring = ctx.docstring_of(func)
            contracts = parse_contracts(docstring) if docstring else {}
            for var, (declared, _line) in contracts.items():
                if declared not in KNOWN_DTYPES:
                    yield self.diagnostic(
                        ctx,
                        func,
                        f"docstring contract ':dtype {var}: {declared}' "
                        f"uses an unknown dtype spelling",
                    )
            yield from self._check_body(ctx, func, contracts)

    def _check_body(
        self,
        ctx: ModuleContext,
        func: ast.AST,
        contracts: Dict[str, Tuple[str, int]],
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(func):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            constructed = _constructed_dtype(value)
            if constructed is None or constructed not in KNOWN_DTYPES:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = _assigned_name(target)
                if name is None:
                    continue
                if name in contracts:
                    declared = contracts[name][0]
                    if declared in KNOWN_DTYPES and constructed != declared:
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"'{name}' is constructed as {constructed} but "
                            f"its docstring contract declares "
                            f"':dtype {name}: {declared}'",
                        )
                elif name in CANONICAL_DTYPES:
                    canonical = CANONICAL_DTYPES[name]
                    if constructed != canonical:
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"CSR array '{name}' constructed as "
                            f"{constructed}; the canonical layout is "
                            f"{canonical} (Theorem 4.5)",
                        )
