"""R8 — no ad-hoc timing: shipped code uses the obs stopwatch.

The observability layer (:mod:`repro.obs`) gives every wall-clock
measurement one home: ``Stopwatch`` for result timings, spans for traced
work.  A bare ``time.perf_counter()`` pair scattered in library code is
invisible to the tracer, unmockable in tests, and — as the pre-obs code
base demonstrated — drifts into subtly different start/stop conventions
per module.  R8 flags every direct ``perf_counter`` call in shipped code
outside :mod:`repro.obs` itself (the one module that *implements* the
clock abstraction and must read the raw counter).

Both spellings are caught: ``time.perf_counter()`` and a bare
``perf_counter()`` reached via ``from time import perf_counter``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from reprolint.config import SRC_PREFIX, TIMING_EXEMPT_PREFIXES
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["AdhocTimingRule"]

#: ``time`` module clock functions R8 polices.  ``perf_counter`` is the
#: one the repo's timing pairs used; the nanosecond variant and
#: ``monotonic`` are the obvious workarounds.
_CLOCK_NAMES = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
)


def _imported_clock_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to ``time`` clock functions via from-imports."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for name in node.names:
                if name.name in _CLOCK_NAMES:
                    aliases.add(name.asname or name.name)
    return aliases


@rule
class AdhocTimingRule(Rule):
    rule_id = "R8"
    rule_name = "no-adhoc-timing"
    summary = (
        "Shipped code must not call time.perf_counter()/monotonic() "
        "directly; measure through repro.obs.trace.Stopwatch or a span."
    )
    protects = (
        "one wall-clock convention, visible to the tracing/metrics layer"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not ctx.is_under(SRC_PREFIX):
            return False
        return not any(
            ctx.is_under(prefix) for prefix in TIMING_EXEMPT_PREFIXES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        aliases = _imported_clock_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            clock = None
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOCK_NAMES
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                clock = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in aliases:
                clock = func.id
            if clock is not None:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"ad-hoc {clock}() call in shipped code; use "
                    "repro.obs.trace.Stopwatch (or a tracer span) so the "
                    "measurement is uniform and trace-visible",
                )
