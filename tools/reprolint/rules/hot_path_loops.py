"""R4 — hot paths stay vectorised: no nested Python loops.

The "scalable" claim (Figures 8 and 15) holds because frontier
expansion, bound updates, and MS-BFS lane bookkeeping are whole-array
numpy operations.  A nested Python-level ``for`` over ``range(...)`` in
a hot module reintroduces interpreter-speed ``O(n * deg)`` work; so does
materialising per-vertex neighbor lists inside a loop.

Deliberate small-graph oracles (e.g. the Table 2 probe replay) carry a
file-level waiver with a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.astutil import walk_with_loops
from reprolint.config import HOT_PATH_PREFIXES
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["HotPathLoopsRule"]


def _is_range_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


def _is_neighbors_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "neighbors"
    )


@rule
class HotPathLoopsRule(Rule):
    rule_id = "R4"
    rule_name = "hot-path-loops"
    summary = (
        "No Python-level for-over-range nested inside another loop, and "
        "no per-vertex neighbors() calls in loops, in hot-path modules."
    )
    protects = "Section 7.2 scalability results (vectorised O(m+n) sweeps)"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return any(ctx.is_under(prefix) for prefix in HOT_PATH_PREFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node, loop_depth in walk_with_loops(ctx.tree):
            if loop_depth < 1:
                continue
            if isinstance(node, ast.For) and _is_range_call(node.iter):
                yield self.diagnostic(
                    ctx,
                    node,
                    "for-over-range nested inside another loop in a "
                    "hot-path module; vectorise with numpy array "
                    "operations instead",
                )
            elif isinstance(node, ast.Call) and _is_neighbors_call(node):
                yield self.diagnostic(
                    ctx,
                    node,
                    "per-vertex neighbors() call inside a loop in a "
                    "hot-path module; expand whole frontiers via "
                    "indptr/indices slicing instead",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                for gen in node.generators:
                    if _is_range_call(gen.iter):
                        yield self.diagnostic(
                            ctx,
                            node,
                            "comprehension over range(...) inside a loop "
                            "in a hot-path module; vectorise instead",
                        )
