"""R1 — CSR graphs are immutable outside their constructors.

Theorem 4.5's ``O(m + n)`` accounting assumes one shared, frozen CSR
structure per graph.  Any code that writes ``graph.indptr`` /
``graph.indices`` (or re-enables numpy write access) can corrupt every
algorithm holding a reference to the same graph.  Only the constructor
modules in :data:`reprolint.config.CSR_MUTATION_ALLOWLIST` may touch
these arrays.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint import astutil
from reprolint.config import CSR_MUTATION_ALLOWLIST
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["CsrImmutableRule"]

_CSR_ATTRS = frozenset({"indptr", "indices", "_indptr", "_indices"})


def _is_csr_attribute(node: ast.expr) -> bool:
    """True for ``<expr>.indptr``-style attributes, or subscripts of them."""
    if isinstance(node, ast.Subscript):
        return _is_csr_attribute(node.value)
    return isinstance(node, ast.Attribute) and node.attr in _CSR_ATTRS


@rule
class CsrImmutableRule(Rule):
    rule_id = "R1"
    rule_name = "csr-immutable"
    summary = (
        "Graph.indptr/indices may only be written by the CSR constructor "
        "modules; setflags(write=True) is forbidden everywhere else."
    )
    protects = "Theorem 4.5 (shared immutable O(m+n) CSR layout)"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path not in CSR_MUTATION_ALLOWLIST

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in astutil.assignment_targets(node):
                    if _is_csr_attribute(target):
                        attr = target
                        while isinstance(attr, ast.Subscript):
                            attr = attr.value
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"write to CSR array attribute "
                            f"'.{attr.attr}' outside the constructor "
                            f"modules; Graph adjacency is immutable",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setflags"
                ):
                    for keyword in node.keywords:
                        value = keyword.value
                        is_false = (
                            isinstance(value, ast.Constant)
                            and value.value is False
                        )
                        if keyword.arg == "write" and not is_false:
                            yield self.diagnostic(
                                ctx,
                                node,
                                "setflags(write=...) re-enabling array "
                                "writes outside the constructor modules",
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if _is_csr_attribute(target):
                        yield self.diagnostic(
                            ctx,
                            node,
                            "deleting a CSR array attribute outside the "
                            "constructor modules",
                        )
