"""R10 — module-level mutable state must be manifest-registered and guarded.

Weak-keyed caches (``engine_for``'s ``_ENGINES``), dataset caches, and
rebindable module globals are exactly the state that turns into a data
race when the parallel backend and the long-running service land.  The
rule enforces three things:

1. every module-level mutable binding in shipped code (a mutable
   container, or any name rebound via ``global``) appears in the
   ``SHARED_STATE`` manifest in :mod:`reprolint.config`;
2. manifest-registered names are touched only inside their registered
   guard helpers (module level — the definition site — is free);
3. the manifest itself stays honest: entries naming a binding that no
   longer exists in the file are reported.

ALL_CAPS bindings that are *never* mutated from function scope (rule
tables, dataset registries) are constants in spirit and stay exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from reprolint.config import SHARED_STATE, SRC_PREFIX
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["SharedStateRule"]

_MUTABLE_CTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "WeakKeyDictionary",
        "WeakValueDictionary",
    }
)

_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "insert",
        "extend",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "appendleft",
    }
)


def _ctor_name(value: ast.expr) -> Optional[str]:
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _is_mutable_value(value: Optional[ast.expr]) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    return _ctor_name(value) in _MUTABLE_CTORS


def _module_level_bindings(
    tree: ast.Module,
) -> Dict[str, Tuple[ast.stmt, bool]]:
    """``{name: (defining stmt, value is a mutable container)}``."""
    out: Dict[str, Tuple[ast.stmt, bool]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.setdefault(
                        target.id, (stmt, _is_mutable_value(stmt.value))
                    )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            out.setdefault(
                stmt.target.id, (stmt, _is_mutable_value(stmt.value))
            )
    return out


def _functions_with_bodies(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Every def in the module (methods included), innermost name last."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(node, ast.FunctionDef):
                yield node.name, node


def _names_mutated_in_functions(tree: ast.Module) -> Set[str]:
    """Module globals written from function scope (the race surface)."""
    mutated: Set[str] = set()
    for _name, func in _functions_with_bodies(tree):
        local_globals: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                local_globals.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in local_globals
                    ):
                        mutated.add(target.id)
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        mutated.add(target.value.id)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        mutated.add(target.value.id)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATING_METHODS and isinstance(
                    node.func.value, ast.Name
                ):
                    mutated.add(node.func.value.id)
    return mutated


@rule
class SharedStateRule(Rule):
    rule_id = "R10"
    rule_name = "guarded-shared-state"
    summary = (
        "Module-level mutable state (caches, registries, rebindable "
        "globals) must be registered in config.SHARED_STATE and touched "
        "only by its guard helpers."
    )
    protects = (
        "thread-safety precondition for the parallel backend and the "
        "eccentricity service (ROADMAP)"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.is_under(SRC_PREFIX) or ctx.is_under("tools/")

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        manifest = SHARED_STATE.get(ctx.path, {})
        bindings = _module_level_bindings(ctx.tree)
        mutated = _names_mutated_in_functions(ctx.tree)

        # 1. unregistered shared state
        for name, (stmt, is_mutable) in sorted(bindings.items()):
            if name in manifest:
                continue
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends are interpreter conventions
            container_state = is_mutable and (
                not name.isupper() or name in mutated
            )
            if container_state or name in mutated:
                yield self.diagnostic(
                    ctx,
                    stmt,
                    f"module-level mutable state '{name}' is not "
                    f"registered in config.SHARED_STATE; register it "
                    f"with its guard helpers (or make it immutable)",
                )

        # 2. manifest hygiene: stale entries
        for name in sorted(manifest):
            if name not in bindings:
                yield Diagnostic(
                    rule_id=self.rule_id,
                    rule_name=self.rule_name,
                    path=ctx.path,
                    line=1,
                    col=0,
                    message=(
                        f"config.SHARED_STATE registers '{name}' for this "
                        f"module, but no such module-level binding exists; "
                        f"update the manifest"
                    ),
                )

        # 3. accessor confinement
        for name, accessors in manifest.items():
            if name not in bindings:
                continue
            allowed = set(accessors)
            for func_name, func in _functions_with_bodies(ctx.tree):
                if func_name in allowed:
                    continue
                for node in ast.walk(func):
                    if isinstance(node, ast.Name) and node.id == name:
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"shared state '{name}' accessed outside its "
                            f"guard helpers ({', '.join(accessors)}); "
                            f"route the access through them",
                        )
                        break  # one diagnostic per function is enough
