"""Rule modules.  Importing this package registers every rule."""

from reprolint.rules import (  # noqa: F401  (registration side effects)
    adhoc_timing,
    bounds_api,
    csr_immutable,
    dtype_contracts,
    hot_path_loops,
    import_hygiene,
    mutation_contract,
    public_api,
    shared_state,
    typing_gate,
    workspace_escape,
)

__all__ = [
    "adhoc_timing",
    "bounds_api",
    "csr_immutable",
    "dtype_contracts",
    "hot_path_loops",
    "import_hygiene",
    "mutation_contract",
    "public_api",
    "shared_state",
    "typing_gate",
    "workspace_escape",
]
