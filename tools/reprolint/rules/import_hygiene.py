"""R3 — shipped code imports only the stdlib, numpy, and itself.

The paper's pitch is an *index-free* algorithm whose only substrate is a
CSR array pair and a vectorised BFS.  ``networkx``/``scipy`` (and other
heavyweight packages) are test- and benchmark-only oracles; importing
them under ``src/repro/`` would add a hidden dependency to the shipped
wheel and invite accidental fallbacks to non-scalable code paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint import astutil
from reprolint.config import (
    ALLOWED_SRC_IMPORT_ROOTS,
    BANNED_SRC_IMPORTS,
    SRC_PREFIX,
)
from reprolint.diagnostics import Diagnostic
from reprolint.engine import ModuleContext
from reprolint.registry import Rule, rule

__all__ = ["ImportHygieneRule"]


@rule
class ImportHygieneRule(Rule):
    rule_id = "R3"
    rule_name = "import-hygiene"
    summary = (
        "src/repro/ may import only the standard library, numpy, and "
        "repro itself; networkx/scipy are test-only oracles."
    )
    protects = "Section 1 contribution 2 (index-free, dependency-free core)"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.is_under(SRC_PREFIX)

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        stdlib = astutil.stdlib_modules()
        for node in ast.walk(ctx.tree):
            roots = []
            if isinstance(node, ast.Import):
                roots = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import stays inside repro
                    continue
                if node.module:
                    roots = [node.module.split(".")[0]]
            for root in roots:
                if root in BANNED_SRC_IMPORTS:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"import of '{root}' in shipped code; heavyweight "
                        f"graph/scientific libraries are test- and "
                        f"benchmark-only oracles",
                    )
                elif root not in stdlib and root not in ALLOWED_SRC_IMPORT_ROOTS:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"import of third-party module '{root}' in shipped "
                        f"code; src/repro depends on numpy only",
                    )
