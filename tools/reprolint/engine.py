"""File collection, module contexts, and the lint driver."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from reprolint.config import JUSTIFICATION_REQUIRED
from reprolint.diagnostics import Diagnostic
from reprolint.registry import RULE_REGISTRY, Rule, all_rules
from reprolint.suppressions import SuppressionIndex, parse_suppressions

__all__ = ["ModuleContext", "lint_paths", "lint_source", "collect_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "results", ".mypy_cache"}


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module."""

    path: str  # repository-relative posix path
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.suppressions is None:
            self.suppressions = parse_suppressions(self.source)

    @property
    def module_name(self) -> str:
        return os.path.basename(self.path)

    def is_under(self, prefix: str) -> bool:
        return self.path.startswith(prefix)

    def docstring_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(
            node,
            (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            return ast.get_docstring(node, clean=False)
        return None


def _normalise(path: str) -> str:
    rel = os.path.relpath(path)
    return rel.replace(os.sep, "/")


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(_normalise(path))
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(_normalise(os.path.join(root, name)))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(out))


def _build_context(path: str) -> ModuleContext:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    return ModuleContext(path=path, source=source, tree=tree)


def _run_rules(
    ctx: ModuleContext, rules: Iterable[Rule]
) -> List[Diagnostic]:
    active = list(rules)
    found: List[Diagnostic] = []
    for rule_obj in active:
        if not rule_obj.applies_to(ctx):
            continue
        for diag in rule_obj.check(ctx):
            if not ctx.suppressions.is_suppressed(
                diag.line, diag.rule_id, diag.rule_name
            ):
                found.append(diag)
    found.extend(_meta_diagnostics(ctx, active))
    return found


def _meta_diagnostics(
    ctx: ModuleContext, active: List[Rule]
) -> List[Diagnostic]:
    """Suppression-inventory checks (run after the rules have matched).

    ``W1`` flags ``# reprolint: disable=`` comments that suppressed
    nothing — judged only for rules that actually ran, so a partial
    ``--select`` never produces false alarms — and ``W2`` flags
    justification-free waivers of the rules listed in
    ``config.JUSTIFICATION_REQUIRED``.
    """
    active_keys = {r.rule_id.lower() for r in active} | {
        r.rule_name.lower() for r in active
    }
    known_keys = {key.lower() for key in RULE_REGISTRY} | {
        cls.rule_name.lower() for cls in RULE_REGISTRY.values()
    }
    out: List[Diagnostic] = []
    for line, code, known in ctx.suppressions.unused(active_keys, known_keys):
        if known:
            message = (
                f"suppression 'disable={code}' no longer suppresses "
                f"anything here; remove it to keep the waiver "
                f"inventory honest"
            )
        else:
            message = (
                f"suppression 'disable={code}' references no known rule"
            )
        out.append(
            Diagnostic(
                rule_id="W1",
                rule_name="unused-suppression",
                path=ctx.path,
                line=line,
                col=0,
                message=message,
            )
        )
    required = frozenset(code.lower() for code in JUSTIFICATION_REQUIRED)
    for line, code in ctx.suppressions.missing_justification(
        required, active_keys
    ):
        out.append(
            Diagnostic(
                rule_id="W2",
                rule_name="unjustified-suppression",
                path=ctx.path,
                line=line,
                col=0,
                message=(
                    f"suppressing {code} requires a justification after "
                    f"the code list, e.g. '# reprolint: disable={code} "
                    f"(why this loan is safe)'"
                ),
            )
        )
    return out


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint files/directories; returns diagnostics sorted by location.

    ``SyntaxError`` in a scanned file is reported as a diagnostic (code
    ``E0``) rather than crashing the run.
    """
    active = list(rules) if rules is not None else all_rules()
    diagnostics: List[Diagnostic] = []
    for path in collect_files(paths):
        try:
            ctx = _build_context(path)
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    rule_id="E0",
                    rule_name="syntax-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"cannot parse module: {exc.msg}",
                )
            )
            continue
        diagnostics.extend(_run_rules(ctx, active))
    return sorted(diagnostics, key=Diagnostic.sort_key)


def lint_source(
    source: str,
    path: str = "src/repro/example.py",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint a source string as if it lived at ``path`` (test helper)."""
    active = list(rules) if rules is not None else all_rules()
    ctx = ModuleContext(
        path=path, source=source, tree=ast.parse(source, filename=path)
    )
    return sorted(_run_rules(ctx, active), key=Diagnostic.sort_key)
