"""Suppression-comment parsing and bookkeeping.

Two escape hatches, mirroring common linter conventions:

* line-level — ``# reprolint: disable=R1`` (or the rule's slug name, or a
  comma-separated list, or ``all``) on the offending line, or alone on the
  line directly above it;
* file-level — ``# reprolint: disable-file=R4`` anywhere in the module,
  silencing that rule for the entire file.

Comments are located with :mod:`tokenize`, so suppression-shaped text
inside string literals (rule-fixture sources in tests, docs) is ignored
— only real comments count.

Suppressions are deliberately loud in the source: grep for ``reprolint:``
to audit every waiver in the repository.  Two meta-checks keep that
inventory honest:

* the index records which entries actually matched a diagnostic, so the
  engine can report *unused* suppressions (``W1``) once rules evolve;
* text after the code list is the *justification*; rules listed in
  ``config.JUSTIFICATION_REQUIRED`` refuse unexplained waivers (``W2``).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

__all__ = ["SuppressionEntry", "SuppressionIndex", "parse_suppressions"]

_CODES = r"[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*"
_LINE_RE = re.compile(rf"#\s*reprolint:\s*disable=({_CODES})\s*(.*)$")
_FILE_RE = re.compile(rf"#\s*reprolint:\s*disable-file=({_CODES})\s*(.*)$")


def _split_codes(raw: str) -> Set[str]:
    return {code.strip().lower() for code in raw.split(",") if code.strip()}


@dataclass
class SuppressionEntry:
    """One ``# reprolint: disable[-file]=...`` comment."""

    line: int
    codes: FrozenSet[str]
    justification: str
    file_level: bool
    comment_only: bool  # alone on its line ⇒ guards the statement below
    used: Set[str] = field(default_factory=set)


class SuppressionIndex:
    """Answers "is rule X suppressed at line N of this file?"."""

    def __init__(self, entries: List[SuppressionEntry]) -> None:
        self._entries = entries
        self._file_level = [e for e in entries if e.file_level]
        self._by_line: Dict[int, SuppressionEntry] = {
            e.line: e for e in entries if not e.file_level
        }

    def entries(self) -> List[SuppressionEntry]:
        return list(self._entries)

    def is_suppressed(self, line: int, rule_id: str, rule_name: str) -> bool:
        keys = {rule_id.lower(), rule_name.lower(), "all"}
        for entry in self._file_level:
            match = entry.codes & keys
            if match:
                entry.used |= match
                return True
        for candidate in (self._by_line.get(line),):
            if candidate is not None:
                match = candidate.codes & keys
                if match:
                    candidate.used |= match
                    return True
        # A stand-alone suppression comment guards the statement below it.
        above = self._by_line.get(line - 1)
        if above is not None and above.comment_only:
            match = above.codes & keys
            if match:
                above.used |= match
                return True
        return False

    # -- meta checks ---------------------------------------------------
    def unused(
        self, active_keys: Set[str], known_keys: Set[str]
    ) -> Iterator[Tuple[int, str, bool]]:
        """``(line, code, known)`` for codes that suppressed nothing.

        A code is judged only when its rule ran (``active_keys``); codes
        naming no registered rule at all are reported with
        ``known=False`` regardless, since they can never match.
        """
        for entry in self._entries:
            for code in sorted(entry.codes):
                if code in entry.used:
                    continue
                if code == "all":
                    if not entry.used:
                        yield entry.line, code, True
                    continue
                if code not in known_keys:
                    yield entry.line, code, False
                elif code in active_keys:
                    yield entry.line, code, True

    def missing_justification(
        self, required: FrozenSet[str], active_keys: Set[str]
    ) -> Iterator[Tuple[int, str]]:
        """``(line, code)`` for justification-free waivers of strict rules."""
        for entry in self._entries:
            if entry.justification:
                continue
            for code in sorted(entry.codes & required):
                if code in active_keys:
                    yield entry.line, code


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """``(line, col, text)`` of every real comment token in ``source``."""
    out: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable source (the engine reports E0 separately): fall
        # back to a plain line scan so suppressions still resolve.
        out = [
            (lineno, text.index("#"), text[text.index("#"):])
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "#" in text
        ]
    return out


def parse_suppressions(source: str) -> SuppressionIndex:
    """Build the suppression index for one module's source text."""
    lines = source.splitlines()
    entries: List[SuppressionEntry] = []
    for lineno, col, text in _comment_tokens(source):
        file_match = _FILE_RE.search(text)
        line_match = None if file_match else _LINE_RE.search(text)
        match = file_match or line_match
        if match is None:
            continue
        prefix = lines[lineno - 1][:col] if lineno - 1 < len(lines) else ""
        entries.append(
            SuppressionEntry(
                line=lineno,
                codes=frozenset(_split_codes(match.group(1))),
                justification=match.group(2).strip(),
                file_level=file_match is not None,
                comment_only=not prefix.strip(),
            )
        )
    return SuppressionIndex(entries)
