"""Suppression-comment parsing.

Two escape hatches, mirroring common linter conventions:

* line-level — ``# reprolint: disable=R1`` (or the rule's slug name, or a
  comma-separated list, or ``all``) on the offending line, or alone on the
  line directly above it;
* file-level — ``# reprolint: disable-file=R4`` anywhere in the module,
  silencing that rule for the entire file.

Suppressions are deliberately loud in the source: grep for ``reprolint:``
to audit every waiver in the repository.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

__all__ = ["SuppressionIndex", "parse_suppressions"]

_LINE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")
_FILE_RE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\- ]+)")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


def _split_codes(raw: str) -> Set[str]:
    return {code.strip().lower() for code in raw.split(",") if code.strip()}


class SuppressionIndex:
    """Answers "is rule X suppressed at line N of this file?"."""

    def __init__(
        self,
        line_level: Dict[int, FrozenSet[str]],
        file_level: FrozenSet[str],
        comment_only_lines: FrozenSet[int],
    ) -> None:
        self._line_level = line_level
        self._file_level = file_level
        self._comment_only = comment_only_lines

    def is_suppressed(self, line: int, rule_id: str, rule_name: str) -> bool:
        keys = {rule_id.lower(), rule_name.lower(), "all"}
        if self._file_level & keys:
            return True
        direct = self._line_level.get(line, frozenset())
        if direct & keys:
            return True
        # A stand-alone suppression comment guards the statement below it.
        above = line - 1
        if above in self._comment_only:
            return bool(self._line_level.get(above, frozenset()) & keys)
        return False


def parse_suppressions(source: str) -> SuppressionIndex:
    """Build the suppression index for one module's source text."""
    line_level: Dict[int, FrozenSet[str]] = {}
    file_level: Set[str] = set()
    comment_only: Set[int] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        file_match = _FILE_RE.search(text)
        if file_match:
            file_level |= _split_codes(file_match.group(1))
            continue
        line_match = _LINE_RE.search(text)
        if line_match:
            line_level[lineno] = frozenset(_split_codes(line_match.group(1)))
            if _COMMENT_ONLY_RE.match(text):
                comment_only.add(lineno)
    return SuppressionIndex(line_level, frozenset(file_level), comment_only)
