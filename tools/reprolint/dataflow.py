"""Buffer-provenance dataflow analysis over the intra-package call graph.

The pooled-workspace architecture (``BFSEngine``, ``_LaneWorkspace``)
trades allocation cost for aliasing risk: a pooled buffer that *escapes*
its engine — returned as a view, stashed on an object, read after the
next run overwrites it — is a silent-wrong-answer bug today and a data
race once the parallel backend lands.  This module gives reprolint the
machinery to reason about that statically:

* a small **provenance lattice** over AST expressions — each value is
  summarised by the set of things it may alias: a pooled workspace
  buffer, an engine/workspace instance, a parameter, an attribute of a
  parameter, or a module global;
* per-function :class:`FunctionSummary` records — which parameters the
  function mutates in place, what its return value aliases, and the
  escape :class:`Event` s observed in its body;
* a lazy :class:`ProjectIndex` that resolves ``repro.x.y`` imports to
  files under ``src/`` and propagates summaries across the intra-package
  call graph (with a cycle guard), so ``dist = engine.run(s)`` is known
  to alias ``BFSEngine._dist`` from any module.

The analysis is deliberately *approximate* (flow-sensitive straight-line
interpretation, two passes to stabilise loop-carried bindings, no branch
joins beyond ``if``-expressions) but errs on the side the rules need:
copies (``.copy()``, ``np.array``, ``astype`` without ``copy=False``,
fancy/boolean indexing) sever provenance; views (basic slices,
``.view``/``.reshape``, ``np.asarray``) preserve it.

Rules R9/R10/R11 are built on top of this module; it has no rule logic
of its own and emits no diagnostics.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from reprolint.config import (
    POOLED_BUFFER_ATTRS,
    PROTOCOL_WORKSPACE_METHODS,
    SRC_ROOT,
)

__all__ = [
    "Prov",
    "Event",
    "FunctionSummary",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "FunctionAnalyzer",
    "parse_mutates",
    "module_qualname",
    "iter_module_functions",
    "annotation_names",
]

# ---------------------------------------------------------------------------
# Provenance tokens
# ---------------------------------------------------------------------------
# A provenance is a frozenset of tokens; each token is a tuple whose first
# element is the kind:
#   ("workspace", desc)        value may alias a pooled workspace buffer
#   ("instance", qualclass)    value is an instance of an intra-package class
#   ("param", name)            value aliases parameter `name` itself
#   ("paramattr", name, attr)  value aliases `name.attr` of a parameter
#   ("global", name)           value is/aliases a module-level binding
#   ("carrier", desc)          object constructed with a workspace argument
Token = Tuple[str, ...]
Prov = FrozenSet[Token]

EMPTY: Prov = frozenset()

#: ndarray methods that mutate the receiver in place.  ``setflags`` is
#: deliberately absent: it flips metadata, not data, and R1 already
#: polices the CSR freeze sites.
MUTATING_ARRAY_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "itemset", "byteswap"}
)

#: Container methods that both mutate the receiver and stash the argument.
CONTAINER_STASH_METHODS = frozenset(
    {"append", "add", "insert", "extend", "update", "setdefault"}
)

#: ndarray methods returning a view of the receiver.
VIEW_METHODS = frozenset(
    {"view", "reshape", "ravel", "squeeze", "transpose", "swapaxes"}
)

#: ``np.<func>(x)`` calls that may return ``x`` or a view of it.
VIEW_FUNCS = frozenset(
    {"asarray", "ascontiguousarray", "atleast_1d", "ravel", "transpose",
     "broadcast_to"}
)

_MUTATES_RE = re.compile(r"^\s*:mutates\s+([A-Za-z_][\w]*(?:\s*,\s*[\w]+)*):",
                         re.MULTILINE)


def parse_mutates(docstring: str) -> Dict[str, int]:
    """``{param_name: docstring_line_offset}`` from ``:mutates a, b:`` lines."""
    out: Dict[str, int] = {}
    for match in _MUTATES_RE.finditer(docstring):
        line = docstring.count("\n", 0, match.start())
        for name in match.group(1).split(","):
            out[name.strip()] = line
    return out


def module_qualname(path: str) -> str:
    """Dotted module name of a repo-relative path (``src/repro/a/b.py``)."""
    trimmed = path
    if trimmed.startswith(SRC_ROOT + "/"):
        trimmed = trimmed[len(SRC_ROOT) + 1:]
    if trimmed.endswith("/__init__.py"):
        trimmed = trimmed[: -len("/__init__.py")]
    elif trimmed.endswith(".py"):
        trimmed = trimmed[:-3]
    return trimmed.replace("/", ".")


def annotation_names(node: Optional[ast.expr]) -> List[str]:
    """Plain identifiers mentioned by an annotation expression.

    ``Optional["BFSEngine"]`` → ``["Optional", "BFSEngine"]``; string
    annotations are parsed; ``np.ndarray`` contributes ``ndarray``.
    """
    if node is None:
        return []
    names: List[str] = []

    def visit(expr: ast.AST) -> None:
        if isinstance(expr, ast.Name):
            names.append(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.append(expr.attr)
        elif isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                visit(ast.parse(expr.value, mode="eval").body)
            except SyntaxError:
                pass
        else:
            for child in ast.iter_child_nodes(expr):
                visit(child)

    visit(node)
    return names


# ---------------------------------------------------------------------------
# Summaries and events
# ---------------------------------------------------------------------------


@dataclass
class Event:
    """One observation a rule may care about (escape, stash, ...)."""

    kind: str  # "return" | "yield" | "store" | "stash"
    node: ast.AST
    desc: str  # which workspace buffer is involved


@dataclass
class FunctionSummary:
    """What a function does to provenance, seen from a call site."""

    qualname: str  # "module-local" qualified name: "f" or "Class.method"
    params: List[str]
    #: Per-element return provenance; length > 1 means a tuple return.
    returns: List[Prov] = field(default_factory=list)
    #: Parameter names mutated in place (``self`` included for methods).
    mutates: Set[str] = field(default_factory=set)
    events: List[Event] = field(default_factory=list)

    def joined_return(self) -> Prov:
        out: Set[Token] = set()
        for prov in self.returns:
            out |= prov
        return frozenset(out)


@dataclass
class ClassInfo:
    """Intra-package class: methods, attribute types, pooled buffers."""

    name: str
    qual: str  # "repro.graph.engine.BFSEngine"
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    _attr_types: Optional[Dict[str, str]] = None
    _attr_types_in_progress: bool = False

    @property
    def pooled(self) -> FrozenSet[str]:
        return POOLED_BUFFER_ATTRS.get(self.qual, frozenset())

    def attr_types(self) -> Dict[str, str]:
        """``{attr: qualclass}`` for instance attributes with known types."""
        if self._attr_types is not None:
            return self._attr_types
        if self._attr_types_in_progress:
            return {}
        self._attr_types_in_progress = True
        try:
            found: Dict[str, str] = {}
            for stmt in self.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    qual = self.module.resolve_class_annotation(stmt.annotation)
                    if qual:
                        found[stmt.target.id] = qual
            init = self.methods.get("__init__")
            if init is not None:
                sink: Dict[str, str] = {}
                FunctionAnalyzer(
                    init, self, self.module, attr_sink=sink
                ).analyze()
                for attr, qual in sink.items():
                    found.setdefault(attr, qual)
            self._attr_types = found
            return found
        finally:
            self._attr_types_in_progress = False


def iter_module_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef, Optional[ast.ClassDef]]]:
    """Top-level functions and methods as ``(qualname, node, class node)``."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(stmt, ast.FunctionDef):
                yield stmt.name, stmt, None
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    yield f"{stmt.name}.{sub.name}", sub, stmt


@dataclass
class ModuleInfo:
    """Parsed module plus its import map, ready for summary queries."""

    qual: str
    path: str
    tree: ast.Module
    index: "ProjectIndex"
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local name -> (module qual, attr-or-None)
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    #: names bound at module level (assignment targets).
    globals: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.FunctionDef):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(
                    name=stmt.name,
                    qual=f"{self.qual}.{stmt.name}",
                    node=stmt,
                    module=self,
                )
                for sub in stmt.body:
                    if isinstance(sub, ast.FunctionDef):
                        info.methods[sub.name] = sub
                self.classes[stmt.name] = info
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name, None)
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    parts = self.qual.split(".")
                    parts = parts[: len(parts) - stmt.level]
                    base = ".".join(parts + ([stmt.module] if stmt.module else []))
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    self.imports[local] = (base, alias.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.globals.add(target.id)

    # -- name resolution -------------------------------------------------
    def resolve(
        self, name: str
    ) -> Optional[Tuple[str, object]]:
        """Resolve a local name to ``("class", ClassInfo)``,
        ``("func", (modqual, funcname))`` or ``("module", qual)``."""
        if name in self.classes:
            return ("class", self.classes[name])
        if name in self.functions:
            return ("func", (self.qual, name))
        entry = self.imports.get(name)
        if entry is None:
            return None
        modqual, attr = entry
        if attr is None:
            return ("module", modqual)
        submodule = f"{modqual}.{attr}" if modqual else attr
        if self.index.module(submodule) is not None:
            return ("module", submodule)
        target = self.index.module(modqual)
        if target is None:
            return None
        if attr in target.classes:
            return ("class", target.classes[attr])
        if attr in target.functions:
            return ("func", (modqual, attr))
        return None

    def resolve_class_annotation(self, node: Optional[ast.expr]) -> Optional[str]:
        """Qualified class name an annotation refers to, if intra-package."""
        for name in annotation_names(node):
            resolved = self.resolve(name)
            if resolved is not None and resolved[0] == "class":
                info = resolved[1]
                assert isinstance(info, ClassInfo)
                return info.qual
        return None


class ProjectIndex:
    """Lazy loader of intra-package modules and their function summaries.

    Modules are resolved relative to the repository root (``src/`` for
    the ``repro`` package), parsed on first use, and cached for the
    lifetime of the index — one lint run shares a single index across
    files.  A summary requested while it is being computed (recursive
    call chains) resolves to an empty summary, which terminates the
    fixpoint conservatively.
    """

    def __init__(self) -> None:
        self._modules: Dict[str, Optional[ModuleInfo]] = {}
        self._summaries: Dict[Tuple[str, str], FunctionSummary] = {}
        self._in_progress: Set[Tuple[str, str]] = set()

    # -- modules ---------------------------------------------------------
    def module(self, qual: str) -> Optional[ModuleInfo]:
        if qual in self._modules:
            return self._modules[qual]
        info: Optional[ModuleInfo] = None
        rel = qual.replace(".", "/")
        for candidate in (
            os.path.join(SRC_ROOT, rel + ".py"),
            os.path.join(SRC_ROOT, rel, "__init__.py"),
            rel + ".py",
            os.path.join(rel, "__init__.py"),
        ):
            if os.path.isfile(candidate):
                try:
                    with open(candidate, "r", encoding="utf-8") as handle:
                        tree = ast.parse(handle.read(), filename=candidate)
                except (OSError, SyntaxError):
                    break
                info = ModuleInfo(
                    qual=qual,
                    path=candidate.replace(os.sep, "/"),
                    tree=tree,
                    index=self,
                )
                break
        self._modules[qual] = info
        return info

    def module_for_source(self, path: str, tree: ast.Module) -> ModuleInfo:
        """Register an already-parsed module (the file being linted)."""
        qual = module_qualname(path)
        existing = self._modules.get(qual)
        if existing is not None and existing.path == path:
            return existing
        info = ModuleInfo(qual=qual, path=path, tree=tree, index=self)
        self._modules[qual] = info
        return info

    def class_by_qual(self, qual: str) -> Optional[ClassInfo]:
        modqual, _, clsname = qual.rpartition(".")
        mod = self.module(modqual)
        if mod is None:
            return None
        return mod.classes.get(clsname)

    # -- summaries -------------------------------------------------------
    def summary(
        self, module: ModuleInfo, qualname: str
    ) -> Optional[FunctionSummary]:
        """Summary of ``qualname`` (``"f"`` or ``"Class.method"``)."""
        key = (module.qual, qualname)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:
            return None
        owner: Optional[ClassInfo] = None
        func: Optional[ast.FunctionDef] = None
        if "." in qualname:
            clsname, _, methname = qualname.partition(".")
            owner = module.classes.get(clsname)
            if owner is not None:
                func = owner.methods.get(methname)
        else:
            func = module.functions.get(qualname)
        if func is None:
            return None
        self._in_progress.add(key)
        try:
            summary = FunctionAnalyzer(func, owner, module).analyze()
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def summary_for_method(
        self, qualclass: str, method: str
    ) -> Optional[FunctionSummary]:
        info = self.class_by_qual(qualclass)
        if info is None or method not in info.methods:
            return None
        return self.summary(info.module, f"{info.name}.{method}")


# ---------------------------------------------------------------------------
# The per-function abstract interpreter
# ---------------------------------------------------------------------------


def _is_numpy_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def _index_has_slice(node: ast.expr) -> bool:
    if isinstance(node, ast.Slice):
        return True
    if isinstance(node, ast.Tuple):
        return any(isinstance(elt, ast.Slice) for elt in node.elts)
    return False


def _workspace_descs(prov: Prov) -> List[str]:
    return sorted(
        token[1] for token in prov if token[0] in ("workspace", "carrier")
    )


class FunctionAnalyzer:
    """Interprets one function body over the provenance lattice.

    Two passes over the statements: the first stabilises loop-carried
    bindings, the second records mutations, returns, and escape events.
    """

    def __init__(
        self,
        func: ast.FunctionDef,
        owner: Optional[ClassInfo],
        module: ModuleInfo,
        attr_sink: Optional[Dict[str, str]] = None,
    ) -> None:
        self.func = func
        self.owner = owner
        self.module = module
        self.index = module.index
        self.attr_sink = attr_sink
        self.env: Dict[str, Prov] = {}
        self.mutates: Set[str] = set()
        self.events: List[Event] = []
        self.returns: List[List[Prov]] = []
        self._collect = False

    # -- entry point -----------------------------------------------------
    def analyze(self) -> FunctionSummary:
        params = self._seed_params()
        self._exec_block(self.func.body)
        self._collect = True
        self.mutates.clear()
        self._exec_block(self.func.body)
        returns = self._fold_returns()
        if not any(returns):
            qual = self.module.resolve_class_annotation(self.func.returns)
            if qual:
                returns = [frozenset({("instance", qual)})]
        qualname = (
            f"{self.owner.name}.{self.func.name}"
            if self.owner is not None
            else self.func.name
        )
        return FunctionSummary(
            qualname=qualname,
            params=params,
            returns=returns,
            mutates=set(self.mutates),
            events=list(self.events),
        )

    def _seed_params(self) -> List[str]:
        args = self.func.args
        ordered = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ]
        names: List[str] = []
        for i, arg in enumerate(ordered):
            names.append(arg.arg)
            tokens: Set[Token] = {("param", arg.arg)}
            if i == 0 and self.owner is not None and arg.arg in ("self", "cls"):
                tokens.add(("instance", self.owner.qual))
            else:
                qual = self.module.resolve_class_annotation(arg.annotation)
                if qual:
                    tokens.add(("instance", qual))
            self.env[arg.arg] = frozenset(tokens)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                names.append(vararg.arg)
                self.env[vararg.arg] = frozenset({("param", vararg.arg)})
        return names

    def _fold_returns(self) -> List[Prov]:
        if not self.returns:
            return []
        width = {len(shape) for shape in self.returns}
        if len(width) == 1 and width != {1}:
            folded = []
            for i in range(width.pop()):
                out: Set[Token] = set()
                for shape in self.returns:
                    out |= shape[i]
                folded.append(frozenset(out))
            return folded
        out_all: Set[Token] = set()
        for shape in self.returns:
            for prov in shape:
                out_all |= prov
        return [frozenset(out_all)]

    # -- statements ------------------------------------------------------
    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt)
        elif isinstance(stmt, ast.Return):
            shape = self._eval_shaped(stmt.value) if stmt.value else [EMPTY]
            if self._collect:
                self.returns.append(shape)
                for prov in shape:
                    for desc in _workspace_descs(prov):
                        self.events.append(
                            Event("return", stmt, desc)
                        )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_block(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self._exec_block(stmt.orelse)
            self._merge_env(after_body)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            self._merge_env(before)
        elif isinstance(stmt, ast.For):
            self._eval(stmt.iter)
            before = dict(self.env)
            self._bind_target(stmt.target, EMPTY)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            self._merge_env(before)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, EMPTY)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested defs/classes are not descended into: their bodies run in
        # another scope and are summarised on their own when called.

    def _exec_assign(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
            target_prov = self._eval(stmt.target)
            self._record_mutation(target_prov)
            return
        if isinstance(stmt, ast.AnnAssign):
            targets: List[ast.expr] = [stmt.target]
            value = stmt.value
        else:
            assert isinstance(stmt, ast.Assign)
            targets = stmt.targets
            value = stmt.value
        if value is None:
            return
        needs_shape = any(isinstance(t, ast.Tuple) for t in targets)
        shape = self._eval_shaped(value) if needs_shape else [self._eval(value)]
        for target in targets:
            self._bind_target(target, shape[0] if len(shape) == 1 else None,
                              shape=shape)

    def _bind_target(
        self,
        target: ast.expr,
        prov: Optional[Prov],
        shape: Optional[List[Prov]] = None,
    ) -> None:
        if isinstance(target, ast.Name):
            joined = prov if prov is not None else self._join(shape or [])
            self.env[target.id] = joined
        elif isinstance(target, ast.Tuple):
            elts = target.elts
            if shape is not None and len(shape) == len(elts):
                for elt, sub in zip(elts, shape):
                    self._bind_target(elt, sub)
            else:
                joined = prov if prov is not None else self._join(shape or [])
                for elt in elts:
                    self._bind_target(elt, joined)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, prov, shape)
        elif isinstance(target, ast.Attribute):
            recv = self._eval(target.value)
            self._record_mutation(recv)
            value_prov = prov if prov is not None else self._join(shape or [])
            if self.attr_sink is not None and self._is_self(target.value):
                for token in value_prov:
                    if token[0] == "instance":
                        self.attr_sink[target.attr] = token[1]
            if self._collect:
                for desc in _workspace_descs(value_prov):
                    if not self._is_workspace_owner(recv):
                        self.events.append(
                            Event(
                                "store",
                                target,
                                desc,
                            )
                        )
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value)
            self._record_mutation(base)
            value_prov = prov if prov is not None else self._join(shape or [])
            if self._collect:
                stashy = any(
                    token[0] in ("param", "paramattr", "global", "instance")
                    for token in base
                )
                if stashy:
                    for desc in _workspace_descs(value_prov):
                        self.events.append(Event("stash", target, desc))

    def _is_self(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in ("self", "cls")

    def _is_workspace_owner(self, prov: Prov) -> bool:
        return any(
            token[0] == "instance" and token[1] in POOLED_BUFFER_ATTRS
            for token in prov
        )

    def _merge_env(self, other: Dict[str, Prov]) -> None:
        """Join another env into the live one (branch/loop confluence)."""
        for name, prov in other.items():
            self.env[name] = self.env.get(name, EMPTY) | prov

    def _join(self, provs: Sequence[Prov]) -> Prov:
        out: Set[Token] = set()
        for prov in provs:
            out |= prov
        return frozenset(out)

    def _record_mutation(self, prov: Prov) -> None:
        for token in prov:
            if token[0] in ("param", "paramattr"):
                self.mutates.add(token[1])

    # -- expressions -----------------------------------------------------
    def _eval_shaped(self, expr: Optional[ast.expr]) -> List[Prov]:
        if expr is None:
            return [EMPTY]
        if isinstance(expr, ast.Tuple):
            return [self._eval(elt) for elt in expr.elts]
        if isinstance(expr, ast.Call):
            shaped = self._eval_call(expr, shaped=True)
            assert isinstance(shaped, list)
            return shaped
        return [self._eval(expr)]

    def _eval(self, expr: Optional[ast.expr]) -> Prov:
        if expr is None:
            return EMPTY
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            if expr.id in self.module.globals:
                return frozenset({("global", expr.id)})
            return EMPTY
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            result = self._eval_call(expr, shaped=False)
            assert isinstance(result, frozenset)
            return result
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value)
            self._eval(expr.slice)
            if _index_has_slice(expr.slice):
                return base  # basic slicing returns a view
            return EMPTY  # scalar reads and fancy/boolean indexing copy
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            # A container literal aliases its elements: packing a loan
            # into a tuple must not launder its provenance.
            return self._join([self._eval(elt) for elt in expr.elts])
        if isinstance(expr, ast.Dict):
            return self._join(
                [self._eval(v) for v in expr.values if v is not None]
            )
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._join([self._eval(expr.body), self._eval(expr.orelse)])
        if isinstance(expr, ast.BoolOp):
            return self._join([self._eval(v) for v in expr.values])
        if isinstance(expr, ast.NamedExpr):
            prov = self._eval(expr.value)
            self._bind_target(expr.target, prov)
            return prov
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            inner = self._eval(expr.value) if expr.value is not None else EMPTY
            if self._collect:
                for desc in _workspace_descs(inner):
                    self.events.append(Event("yield", expr, desc))
            return EMPTY
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        # Arithmetic, comparisons, literals, f-strings, comprehensions:
        # these allocate fresh values; evaluate children for side effects.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child)
        return EMPTY

    def _eval_attribute(self, expr: ast.Attribute) -> Prov:
        base = self._eval(expr.value)
        out: Set[Token] = set()
        for token in base:
            if token[0] == "instance":
                info = self.index.class_by_qual(token[1])
                if info is not None:
                    if expr.attr in info.pooled:
                        out.add(("workspace", f"{info.name}.{expr.attr}"))
                    attr_qual = info.attr_types().get(expr.attr)
                    if attr_qual:
                        out.add(("instance", attr_qual))
            elif token[0] == "param":
                out.add(("paramattr", token[1], expr.attr))
        return frozenset(out)

    # -- calls -----------------------------------------------------------
    def _eval_call(self, node: ast.Call, shaped: bool):
        arg_provs = [self._eval(arg) for arg in node.args]
        kw_provs = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)
        # out= mutates whatever it aliases, whoever the callee is.
        if "out" in kw_provs:
            self._record_mutation(kw_provs["out"])

        result = self._dispatch_call(node, arg_provs, kw_provs)
        if shaped:
            return result if isinstance(result, list) else [result]
        if isinstance(result, list):
            return self._join(result)
        return result

    def _dispatch_call(
        self,
        node: ast.Call,
        arg_provs: List[Prov],
        kw_provs: Dict[str, Prov],
    ):
        func = node.func
        if isinstance(func, ast.Attribute):
            return self._dispatch_method(node, func, arg_provs, kw_provs)
        if isinstance(func, ast.Name):
            resolved = self.module.resolve(func.id)
            if resolved is None:
                return EMPTY
            kind, payload = resolved
            if kind == "class":
                info = payload
                assert isinstance(info, ClassInfo)
                tokens: Set[Token] = {("instance", info.qual)}
                carried = [
                    desc
                    for prov in (*arg_provs, *kw_provs.values())
                    for desc in _workspace_descs(prov)
                ]
                # Constructing an object from a pooled buffer stashes it
                # unless the class is itself a registered workspace owner.
                if carried and info.qual not in POOLED_BUFFER_ATTRS:
                    for desc in carried:
                        tokens.add(("carrier", desc))
                return frozenset(tokens)
            if kind == "func":
                modqual, funcname = payload  # type: ignore[misc]
                target = self.index.module(modqual)
                if target is None:
                    return EMPTY
                summary = self.index.summary(target, funcname)
                if summary is None:
                    return EMPTY
                return self._apply_summary(
                    summary, node, arg_provs, kw_provs, recv=None
                )
        return EMPTY

    def _dispatch_method(
        self,
        node: ast.Call,
        func: ast.Attribute,
        arg_provs: List[Prov],
        kw_provs: Dict[str, Prov],
    ):
        meth = func.attr
        # module-qualified function call: traversal.bfs_distances(...)
        if isinstance(func.value, ast.Name):
            resolved = self.module.resolve(func.value.id)
            if resolved is not None and resolved[0] == "module":
                target = self.index.module(str(resolved[1]))
                if target is not None:
                    summary = self.index.summary(target, meth)
                    if summary is not None:
                        return self._apply_summary(
                            summary, node, arg_provs, kw_provs, recv=None
                        )
                return EMPTY
        recv = self._eval(func.value)
        if meth == "copy":
            return EMPTY
        if meth == "astype":
            copy_false = any(
                kw.arg == "copy"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            )
            return recv if copy_false else EMPTY
        if meth in VIEW_METHODS:
            return recv
        if meth in MUTATING_ARRAY_METHODS:
            self._record_mutation(recv)
            return EMPTY
        if meth in CONTAINER_STASH_METHODS:
            self._record_mutation(recv)
            if self._collect:
                stashy = any(
                    token[0] in ("param", "paramattr", "global", "instance")
                    for token in recv
                )
                if stashy:
                    for prov in (*arg_provs, *kw_provs.values()):
                        for desc in _workspace_descs(prov):
                            self.events.append(Event("stash", node, desc))
            return EMPTY
        if meth == "at" and len(node.args) >= 2:
            # np.<ufunc>.at(target, ...) mutates target in place.
            self._record_mutation(arg_provs[0])
            return EMPTY
        if _is_numpy_name(func.value):
            if meth in VIEW_FUNCS and arg_provs:
                return arg_provs[0]
            if meth == "array" and arg_provs:
                copy_false = any(
                    kw.arg == "copy"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                )
                return arg_provs[0] if copy_false else EMPTY
            return EMPTY
        if meth in PROTOCOL_WORKSPACE_METHODS:
            shape_spec = PROTOCOL_WORKSPACE_METHODS[meth]
            shaped = [
                frozenset({("workspace", f"{meth}()")})
                if slot == "workspace"
                else EMPTY
                for slot in shape_spec
            ]
            return shaped
        for token in recv:
            if token[0] == "instance":
                summary = self.index.summary_for_method(token[1], meth)
                if summary is not None:
                    return self._apply_summary(
                        summary, node, arg_provs, kw_provs, recv=recv
                    )
        return EMPTY

    def _apply_summary(
        self,
        summary: FunctionSummary,
        node: ast.Call,
        arg_provs: List[Prov],
        kw_provs: Dict[str, Prov],
        recv: Optional[Prov],
    ):
        binding: Dict[str, Prov] = {}
        params = list(summary.params)
        if recv is not None and params and params[0] in ("self", "cls"):
            binding[params[0]] = recv
            params = params[1:]
        for i, prov in enumerate(arg_provs):
            if i < len(params):
                binding[params[i]] = prov
        for name, prov in kw_provs.items():
            if name in summary.params:
                binding[name] = prov
        for mutated in summary.mutates:
            self._record_mutation(binding.get(mutated, EMPTY))
        shaped = [
            self._map_return(prov, binding) for prov in summary.returns
        ]
        return shaped if len(shaped) > 1 else (shaped[0] if shaped else EMPTY)

    def _map_return(self, prov: Prov, binding: Dict[str, Prov]) -> Prov:
        out: Set[Token] = set()
        for token in prov:
            if token[0] == "param":
                out |= binding.get(token[1], EMPTY)
            elif token[0] == "paramattr":
                for bound in binding.get(token[1], EMPTY):
                    if bound[0] == "instance":
                        info = self.index.class_by_qual(bound[1])
                        if info is not None and token[2] in info.pooled:
                            out.add(
                                ("workspace", f"{info.name}.{token[2]}")
                            )
                    elif bound[0] == "param":
                        out.add(("paramattr", bound[1], token[2]))
            elif token[0] in ("workspace", "instance", "carrier"):
                out.add(token)
        return frozenset(out)
