"""reprolint — invariant-aware static analysis for the IFECC reproduction.

The repository's correctness rests on invariants the paper states but
Python cannot enforce at runtime (immutable CSR graphs, monotone bound
tightening, vectorised hot paths, fixed numpy dtypes).  ``reprolint``
encodes each invariant as an AST-level rule so that refactors and
performance work cannot silently regress them.

Usage::

    python -m reprolint src tests benchmarks
    python -m reprolint --list-rules

Each rule has a short code (``R1`` .. ``R7``) and a slug name; both work
in suppression comments::

    graph.indptr[0] = 1  # reprolint: disable=R1
    state.lower[0] = 5   # reprolint: disable=bounds-api

A file-level waiver (``# reprolint: disable-file=R4``) near the top of a
module silences one rule for the whole file.  See the "Static analysis &
invariants" section of ``CONTRIBUTING.md`` for the rule catalogue and the
paper lemma each rule protects.
"""

from reprolint.diagnostics import Diagnostic
from reprolint.engine import lint_paths, lint_source
from reprolint.registry import RULE_REGISTRY, Rule, all_rules
from reprolint.cli import main

__version__ = "1.0.0"

__all__ = [
    "Diagnostic",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "__version__",
]
