"""Entry point for ``python tools/benchguard`` (and ``-m`` variants).

Splices the checkout's ``src/`` onto ``sys.path`` so the shared gate
implementation in :mod:`repro.obs.benchguard` resolves without an
installed package.
"""

import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.obs.benchguard import main  # noqa: E402 - after the path splice

if __name__ == "__main__":
    sys.exit(main())
