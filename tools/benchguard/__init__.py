"""Checkout shim for the benchmark regression gate.

The implementation lives in :mod:`repro.obs.benchguard` (so ``repro
bench check`` and this tool share one gate); this package exists so
``python tools/benchguard check`` works from a repository checkout
without installing anything or exporting ``PYTHONPATH``.  Keep it free
of logic beyond the path splice and the re-exports.
"""

import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.obs.benchguard import (  # noqa: E402 - after the path splice
    Finding,
    Headline,
    check_paths,
    compare_docs,
    default_artifacts,
    format_findings,
    main,
)

__all__ = [
    "Finding",
    "Headline",
    "check_paths",
    "compare_docs",
    "default_artifacts",
    "format_findings",
    "main",
]
