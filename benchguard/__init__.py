"""Checkout shim for :mod:`benchguard`.

The implementation lives in ``tools/benchguard/`` (itself a thin
re-export of :mod:`repro.obs.benchguard`, so ``repro bench check`` and
the tool share one gate); this package exists so ``python -m
benchguard check`` works from a repository checkout without installing
anything or exporting ``PYTHONPATH``.  It extends the package search
path to the real location, mirroring the ``reprolint`` shim.

Keep this file free of logic beyond the path splice and the re-exports
mirrored from ``tools/benchguard/__init__.py``.
"""

import os

_TOOLS_PACKAGE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "benchguard",
)
__path__ = [_TOOLS_PACKAGE] + list(__path__)  # noqa: F821 - package var

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if os.path.isdir(_SRC):
    import sys

    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.obs.benchguard import (  # noqa: E402 - after the path splice
    Finding,
    Headline,
    check_paths,
    compare_docs,
    default_artifacts,
    format_findings,
    main,
)

__all__ = [
    "Finding",
    "Headline",
    "check_paths",
    "compare_docs",
    "default_artifacts",
    "format_findings",
    "main",
]
