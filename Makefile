# Convenience targets for the IFECC reproduction.

.PHONY: install test test-sanitized tier-guard bench bench-smoke bench-parallel bench-msbfs bench-store bench-guard obs-overhead examples results clean lint typecheck check

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Guard: the weighted and directed suites ride in the default pytest
# tier (pyproject testpaths = ["tests"]).  Fails if a config change
# silently stops collecting them — the metric-generic solver's
# value-identity guarantees live in those suites.
tier-guard:
	@out=$$(pytest tests/weighted tests/directed --collect-only -q); \
	echo "$$out" | grep -Eq "tests/weighted/.+: [1-9]" \
		&& echo "$$out" | grep -Eq "tests/directed/.+: [1-9]" \
		|| { echo "tier-guard: tests/weighted + tests/directed collect no tests"; exit 1; }

# Invariant-aware static analysis (tools/reprolint); exits non-zero on
# any rule violation.  Self-lints tools/reprolint.  Run
# `python -m reprolint --list-rules` for the rule catalogue.
lint:
	python -m reprolint src tests benchmarks tools

# Tier-1 suite with the runtime workspace sanitizer armed: pooled
# buffers become guarded loans, CSR arrays trap writes, stale reads
# raise SanitizerError.  CI runs this as a separate job.
test-sanitized:
	REPRO_SANITIZE=1 pytest tests/

# mypy under the [tool.mypy] config in pyproject.toml.  Skips (exit 0)
# when mypy is not installed; `pip install -e .[dev]` provides it.
# reprolint's R7 rule enforces annotation coverage even without mypy.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed (pip install -e '.[dev]'); skipping typecheck"; \
	fi

# Everything a PR must pass: tier-1 tests (weighted/directed tier
# membership included), the sanitized rerun, reprolint, the type gate,
# and the benchmark regression gate over the committed scorecards.
check: test test-sanitized tier-guard lint typecheck bench-guard

bench:
	pytest benchmarks/ --benchmark-only

# Quick BFS-engine perf check (CI runs this and uploads the files):
# seed kernel vs. top-down-only vs. direction-optimizing hybrid on the
# generator suite, then the backend shootout (seed vs. hybrid vs.
# process backend).  Writes BENCH_bfs_engine.json,
# BENCH_parallel_backend.json, and the structured run-record artifact
# BENCH_trace_ifecc.jsonl at the repo root.
bench-smoke:
	python benchmarks/bench_bfs_engine.py --smoke --workers 1,2

# Backend shootout only, at full scale (powerlaw-50k, sampled sources).
# Honest on constrained hosts: the JSON records effective_cpus.
bench-parallel:
	python benchmarks/bench_bfs_engine.py --shootout-only --repeats 1

# MS-BFS engine shootout at full scale: seed lane kernel vs. the
# direction-optimizing lane engine vs. the looped single-source hybrid
# on 64-source batches (plus the 128/256-lane width-scaling ladder).
# Writes BENCH_msbfs_engine.json; exits non-zero if the hybrid lanes
# miss the 2x ecc-batch target on the power-law graph.
bench-msbfs:
	PYTHONPATH=src:benchmarks python benchmarks/bench_msbfs_engine.py

# Graph-store cold-open ladder (parse vs. npz vs. mmap open) on the
# full stand-in ladder; writes BENCH_graph_store.json at the repo root
# and exits non-zero if store open drops below 10x faster than parse.
# CI runs the --smoke variant and uploads the JSON.
bench-store:
	python benchmarks/bench_graph_store.py

# Benchmark regression gate (tools/benchguard == `repro bench check`):
# parses every committed BENCH_*.json, re-verifies the recorded
# speedup/bit-identity claims, and exits non-zero on any failure.
# `repro bench compare fresh.json baseline.json` adds the A/B leg.
bench-guard:
	python tools/benchguard check

# Tracing-overhead gate: A/Bs a null-sink IFECC run against a fully
# captured one (interleaved, min-of-CPU-time) and fails if capture
# exceeds the documented 3% budget.  Writes BENCH_obs_overhead.json.
obs-overhead:
	PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke

examples:
	python examples/quickstart.py
	python examples/facility_placement.py
	python examples/anytime_estimation.py
	python examples/diameter_case_study.py
	python examples/weighted_travel_times.py
	python examples/centrality_comparison.py

results:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_benchmark .benchmarks
