# Convenience targets for the IFECC reproduction.

.PHONY: install test bench examples results clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/facility_placement.py
	python examples/anytime_estimation.py
	python examples/diameter_case_study.py
	python examples/weighted_travel_times.py
	python examples/centrality_comparison.py

results:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_benchmark .benchmarks
