"""Result objects returned by eccentricity algorithms.

Exact algorithms (IFECC, PLLECC, BoundECC, the naive baseline) and
approximate ones (kIFECC, kBFS) all return an :class:`EccentricityResult`
so downstream analysis (accuracy, radius/diameter, plots) is uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.counters import TraversalCounter

__all__ = ["EccentricityResult", "ProgressSnapshot"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """State emitted after each BFS of an anytime run.

    Attributes
    ----------
    bfs_runs:
        Total BFS runs performed so far (reference BFS included).
    source:
        The vertex the last BFS was sourced from.
    resolved:
        Number of vertices whose bounds have met.
    num_vertices:
        Total vertex count (so ``resolved / num_vertices`` is progress).
    """

    bfs_runs: int
    source: int
    resolved: int
    num_vertices: int

    @property
    def fraction_resolved(self) -> float:
        if self.num_vertices == 0:
            return 1.0
        return self.resolved / self.num_vertices


@dataclass
class EccentricityResult:
    """Outcome of an eccentricity-distribution computation.

    Attributes
    ----------
    eccentricities:
        Per-vertex eccentricity.  Exact when ``exact`` is true, otherwise
        the algorithm's estimate (for the anytime algorithms this is the
        lower bound, matching Algorithm 3's return value).
    lower / upper:
        The final bound arrays (``upper`` may contain the int32 "infinity"
        sentinel for never-touched vertices of approximate runs).
    exact:
        True when every vertex's bounds met, so ``eccentricities`` is the
        exact eccentricity distribution ED(G).
    algorithm:
        Human-readable algorithm tag, e.g. ``"IFECC-1"``.
    num_bfs:
        Number of BFS traversals performed (the paper's cost unit).
    elapsed_seconds:
        Wall-clock time of the run.
    reference_nodes:
        The reference set Z (empty for algorithms without one).
    counter:
        The detailed traversal-work meter.
    """

    eccentricities: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    exact: bool
    algorithm: str
    num_bfs: int
    elapsed_seconds: float
    reference_nodes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32)
    )
    counter: Optional[TraversalCounter] = None

    @property
    def num_vertices(self) -> int:
        return len(self.eccentricities)

    @property
    def radius(self) -> float:
        """Minimum eccentricity (only meaningful for exact results).

        A python ``int`` for hop metrics, ``float`` for weighted ones
        (the value keeps the metric's numeric type via ``.item()``).
        """
        return self.eccentricities.min().item() if self.num_vertices else 0

    @property
    def diameter(self) -> float:
        """Maximum eccentricity (only meaningful for exact results).

        Numeric type follows the metric, as for :attr:`radius`.
        """
        return self.eccentricities.max().item() if self.num_vertices else 0

    def accuracy_against(self, truth: np.ndarray) -> float:
        """Paper's Accuracy metric: % of vertices with exactly correct ecc.

        ``Accuracy = |{v : est(v) == ecc(v)}| / |V| * 100`` (Section 7).
        """
        if len(truth) != self.num_vertices:
            raise ValueError("truth array length mismatch")
        if self.num_vertices == 0:
            return 100.0
        correct = np.count_nonzero(self.eccentricities == truth)
        return 100.0 * correct / self.num_vertices

    def __repr__(self) -> str:
        kind = "exact" if self.exact else "approx"
        return (
            f"EccentricityResult({self.algorithm}, {kind}, "
            f"n={self.num_vertices}, bfs={self.num_bfs}, "
            f"time={self.elapsed_seconds:.3f}s)"
        )
