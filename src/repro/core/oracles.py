"""Pluggable distance oracles for the metric-generic solver core.

Lemmas 3.1 and 3.3 are pure triangle inequalities — valid for *any*
shortest-path metric — so the whole of Algorithm 2 is really one
bound-tightening loop parameterised over "how do I get single-source
distances and an eccentricity?".  :class:`DistanceOracle` is that
parameter: the structural protocol every metric back-end implements so
:class:`repro.core.solver.EccentricitySolver` (and the generic extremes
driver in :mod:`repro.core.extremes`) can run unchanged over

* unweighted BFS hops — :class:`BFSOracle` (this module), wrapping the
  pooled direction-optimizing :class:`repro.graph.engine.BFSEngine`;
* non-negative edge weights — ``DijkstraOracle``
  (:mod:`repro.weighted.dijkstra`);
* directed reachability — ``DirectedBFSOracle``
  (:mod:`repro.directed.traversal`), whose probes are *backward* BFS
  runs (the reverse-distance hook).

The two probe flavours mirror how Algorithm 2 consumes traversals:

``source_probe``
    The full Lemma 3.1 package for a source ``t``: exact ``ecc(t)``,
    the forward distances ``dist(t, .)`` (which seed FFOs and
    territories) and the reverse distances ``dist(., t)`` (which drive
    both bound directions).  Symmetric metrics return the *same* array
    for both — one traversal; the directed oracle pays a
    forward + backward pair.

``sweep_probe``
    The cheap per-probe traversal of the FFO sweep: the reverse
    distances ``dist(., t)`` plus ``ecc(t)`` *when the traversal
    happens to yield it* (symmetric metrics: yes; the directed
    backward BFS: no — it returns ``None`` and the solver simply skips
    the ``set_exact`` step, exactly as the directed Lemma 3.3 argument
    requires).

Distance vectors returned by ``sweep_probe`` may alias a pooled
workspace; the solver consumes them before the next traversal and
copies only when memoising — the same discipline the BFS engine
established.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.counters import TraversalCounter
from repro.core.reference import get_strategy
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.engine import BFSEngine, engine_for

if TYPE_CHECKING:  # runtime import is lazy (multiprocessing is heavy)
    from repro.parallel.pool import TraversalPool

__all__ = ["DistanceOracle", "BFSOracle", "BACKENDS"]

#: The traversal backends a :class:`BFSOracle` can select.
BACKENDS = ("numpy", "process")


@runtime_checkable
class DistanceOracle(Protocol):
    """Metric back-end of the generic eccentricity solver.

    Attributes
    ----------
    num_vertices:
        Vertex count of the underlying graph.
    dtype:
        Distance dtype (``int32`` hops or ``float64`` weights); the
        solver sizes its :class:`repro.core.bounds.BoundState` with it.
    tolerance:
        Bound-comparison slack (0 for integer metrics).
    symmetric:
        ``True`` when ``dist(u, v) == dist(v, u)`` — lets the solver
        skip redundant reverse traversals and connectivity checks.
    metric_name:
        Tag prefix for :class:`repro.core.result.EccentricityResult`.
    trace_kind:
        Traversal-kind tag carried on ``solver.probe`` spans (``"bfs"``,
        ``"dijkstra"``, ``"bfs-directed"``) so trace consumers can tell
        what kind of traversal each span timed.
    """

    num_vertices: int
    dtype: np.dtype
    tolerance: float
    symmetric: bool
    metric_name: str
    trace_kind: str

    def select_references(
        self, strategy: str, count: int, seed: int
    ) -> np.ndarray:
        """The reference set ``Z`` (Algorithm 2, line 1).

        :dtype references: int32
        """
        ...  # pragma: no cover - protocol

    def source_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """``(ecc(source), dist(source, .), dist(., source))``.

        Symmetric oracles return the same (caller-owned) array twice;
        the directed oracle runs a forward + backward traversal pair.
        """
        ...  # pragma: no cover - protocol

    def sweep_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[Optional[float], np.ndarray]:
        """``(ecc(source) or None, dist(., source))`` — one traversal.

        The distance vector may alias a pooled workspace valid until
        the next traversal on this oracle.
        """
        ...  # pragma: no cover - protocol

    def disconnected_error(self) -> DisconnectedGraphError:
        """The error describing why the metric's solver cannot run."""
        ...  # pragma: no cover - protocol

    def gap_cap(self) -> float:
        """A finite bound on any vertex's eccentricity (gap accounting)."""
        ...  # pragma: no cover - protocol


class BFSOracle:
    """The unweighted hop-count oracle (the paper's own setting).

    Wraps the per-graph cached, pooled-workspace
    :class:`repro.graph.engine.BFSEngine`: ``sweep_probe`` returns the
    engine's pooled distance buffer (the FFO-ordered sweep runs one BFS
    per probed source, all on this graph, so per-run allocation would
    dominate at scale), while ``source_probe`` copies — its vector is
    retained by FFOs and territories.

    ``backend`` selects how the *batched* entry points
    (:meth:`ecc_all`, :meth:`distance_rows`) execute: ``"numpy"`` (the
    default) loops the in-process engine, ``"process"`` fans the batch
    across a :class:`repro.parallel.pool.TraversalPool` of ``workers``
    processes.  Single probes (``source_probe``/``sweep_probe``) always
    stay on the in-process engine — one BFS is cheaper than its IPC
    round-trip — so the solver's sequential bound-tightening loop is
    bit-identical under every backend by construction.
    """

    dtype = np.dtype(np.int32)
    tolerance = 0.0
    symmetric = True
    metric_name = "IFECC"
    trace_kind = "bfs"

    def __init__(
        self,
        graph: Graph,
        engine: Optional[BFSEngine] = None,
        backend: str = "numpy",
        workers: Optional[int] = None,
        pool: Optional["TraversalPool"] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.graph = graph
        self.num_vertices = graph.num_vertices
        self.engine = engine if engine is not None else engine_for(graph)
        self.backend = backend
        self.workers = workers
        self._pool = pool

    @property
    def pool(self) -> "TraversalPool":
        """The worker pool backing batched dispatch (process backend only)."""
        if self.backend != "process":
            raise InvalidParameterError(
                "pool is only available with backend='process'"
            )
        if self._pool is None or self._pool.closed:
            from repro.parallel.pool import pool_for

            self._pool = pool_for(self.graph, workers=self.workers)
        return self._pool

    # -- batched entry points ------------------------------------------
    def ecc_all(
        self,
        sources: Optional[Sequence[int]] = None,
        counter: Optional[TraversalCounter] = None,
    ) -> np.ndarray:
        """Eccentricity of every source (default: all vertices).

        The naive full-ED sweep behind one call: the numpy backend
        loops :meth:`BFSEngine.ecc_batch` in-process, the process
        backend fans chunks across the pool.  Bit-identical either way.

        :dtype ecc: int32
        """
        if self.backend == "process":
            return self.pool.eccentricities(sources, counter=counter)
        src = (
            np.arange(self.num_vertices, dtype=np.int64)
            if sources is None
            else np.ascontiguousarray(sources, dtype=np.int64)
        )
        return self.engine.ecc_batch(src, counter=counter)

    def distance_rows(
        self,
        sources: Sequence[int],
        counter: Optional[TraversalCounter] = None,
    ) -> np.ndarray:
        """Full distance vectors, one caller-owned row per source.

        Used by reference scans that need every ``dist(z, .)`` — the
        batched sibling of calling :meth:`source_probe` in a loop.  The
        numpy backend runs the bit-parallel lane sweeps of
        :func:`repro.graph.msengine.batch_distance_rows` (identical
        rows, one sweep per lane group instead of one BFS per source).

        :dtype rows: int32
        """
        if self.backend == "process":
            return self.pool.distance_rows(sources, counter=counter)
        from repro.graph.msengine import batch_distance_rows

        src = np.ascontiguousarray(sources, dtype=np.int64)
        return batch_distance_rows(self.graph, src, counter=counter)

    def select_references(
        self, strategy: str, count: int, seed: int
    ) -> np.ndarray:
        return get_strategy(strategy)(self.graph, count, seed)

    def source_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        dist = self.engine.run(source, counter=counter).copy()
        return self.engine.last_ecc, dist, dist

    def sweep_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[Optional[float], np.ndarray]:
        dist = self.engine.run(source, counter=counter)
        return self.engine.last_ecc, dist

    def disconnected_error(self) -> DisconnectedGraphError:
        from repro.graph.components import split_components

        return DisconnectedGraphError(
            num_components=len(split_components(self.graph))
        )

    def gap_cap(self) -> float:
        # Any hop eccentricity is < n.
        return float(self.num_vertices)
