"""kIFECC — the anytime/approximate adaptation (Algorithm 3, Section 4.3).

kIFECC is IFECC with one reference node, terminated after ``k`` nodes of
the FFO have run their BFS.  The returned estimate is the lower-bound
array ``{ecc_lower(v)}`` — line 4 of Algorithm 3.

Because the estimate only ever *tightens* as ``k`` grows (the bound
updates are monotone), kIFECC's accuracy is non-decreasing in ``k`` when
the runs share a prefix, and it converges to the exact ED.  That is the
stability advantage over kBFS that Figure 11 demonstrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ifecc import IFECC
from repro.core.result import EccentricityResult
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter
from repro.obs.trace import Stopwatch

__all__ = ["approximate_eccentricities", "kifecc_sweep"]


#: Estimators for unresolved vertices: Algorithm 3 returns the lower
#: bound; "upper" and "midpoint" are extension variants (the midpoint
#: halves the worst-case absolute error of either bound).
_ESTIMATORS = ("lower", "upper", "midpoint")


def _estimate(
    lower: np.ndarray, upper: np.ndarray, estimator: str
) -> np.ndarray:

    if estimator == "lower":
        return lower.copy()
    # Untouched vertices may still carry the +inf sentinel; fall back to
    # the lower bound there.
    capped = np.minimum(upper.astype(np.int64), 2**30 - 1)
    usable = capped < 2**30 - 1
    if estimator == "upper":
        return np.where(usable, capped, lower).astype(lower.dtype)
    mid = (lower.astype(np.int64) + capped) // 2
    return np.where(usable, mid, lower).astype(lower.dtype)


def approximate_eccentricities(
    graph: Graph,
    k: int,
    strategy: str = "degree",
    seed: int = 0,
    estimator: str = "lower",
    counter: Optional[TraversalCounter] = None,
    backend: str = "numpy",
    workers: Optional[int] = None,
) -> EccentricityResult:
    """Approximate the ED with ``k`` FFO-front BFS runs (Algorithm 3).

    Parameters
    ----------
    graph:
        Connected input graph.
    k:
        Sample size — the number of BFS runs sourced from the front of the
        single reference node's FFO (the reference node's own initial BFS
        is not counted, matching Algorithm 3's loop bounds).
    strategy / seed:
        Reference selection; the paper uses the highest-degree node
        (Algorithm 3, line 1).
    estimator:
        What to report for unresolved vertices: ``"lower"`` (the paper's
        Algorithm 3), ``"upper"``, or ``"midpoint"`` (extension variants;
        the midpoint halves the worst-case error of either bound).
    backend / workers:
        Traversal backend threaded to the oracle (see
        :class:`repro.core.ifecc.IFECC`); estimates are identical under
        every backend.

    Returns
    -------
    EccentricityResult
        ``eccentricities`` holds the chosen estimate; ``exact`` is true
        when the bounds happened to all close within the budget (common
        in practice — Section 7.4 reports that ``|F2|`` BFS runs already
        finish 19 of 20 real graphs).
    """
    if k < 0:
        raise InvalidParameterError("sample size k must be >= 0")
    if estimator not in _ESTIMATORS:
        raise InvalidParameterError(
            f"unknown estimator {estimator!r}; choose from {_ESTIMATORS}"
        )
    engine = IFECC(
        graph,
        num_references=1,
        strategy=strategy,
        seed=seed,
        counter=counter,
        backend=backend,
        workers=workers,
    )
    # Budget = 1 reference BFS + k FFO BFS runs.
    result = engine.run_budgeted(max_bfs=k + 1)
    result.eccentricities = _estimate(
        result.lower, result.upper, estimator
    )
    suffix = "" if estimator == "lower" else f", {estimator}"
    result.algorithm = f"kIFECC(k={k}{suffix})"
    return result


def kifecc_sweep(
    graph: Graph,
    sample_sizes: Sequence[int],
    truth: Optional[np.ndarray] = None,
    strategy: str = "degree",
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Run kIFECC for several ``k`` values, reusing one engine.

    Because Algorithm 3's runs for increasing ``k`` share their prefix,
    the sweep resumes the same engine instead of restarting — the sweep
    over ``k = 2 .. 128`` of Figure 11 then costs one 128-BFS run total.

    Returns a list of dicts with keys ``k``, ``result`` and (when
    ``truth`` is given) ``accuracy``.
    """
    sizes = sorted(set(int(k) for k in sample_sizes))
    if any(k < 0 for k in sizes):
        raise InvalidParameterError("sample sizes must be >= 0")
    engine = IFECC(
        graph, num_references=1, strategy=strategy, seed=seed
    )
    steps = engine.steps()
    out = []
    watch = Stopwatch()
    done = False
    for k in sizes:
        target = k + 1  # + the reference node's own BFS
        while not done and engine.counter.bfs_runs < target:
            try:
                next(steps)
            except StopIteration:
                done = True
        result = EccentricityResult(
            eccentricities=engine.bounds.lower.copy(),
            lower=engine.bounds.lower.copy(),
            upper=engine.bounds.upper.copy(),
            exact=engine.bounds.all_resolved(),
            algorithm=f"kIFECC(k={k})",
            num_bfs=engine.counter.bfs_runs,
            elapsed_seconds=watch.elapsed(),
            reference_nodes=engine.references.copy(),
            counter=engine.counter,
        )
        entry = {"k": k, "result": result}
        if truth is not None:
            entry["accuracy"] = result.accuracy_against(truth)
        out.append(entry)
    return out
