"""Radius- and diameter-only computation with early termination.

The related work the paper builds on (Takes & Kosters 2011 [33]; Akiba,
Iwata, Kawata 2015 [2]) observed that when only the *extremes* of the
eccentricity distribution are needed — the radius and/or diameter —
the bound-based loop can stop long before every vertex's bounds meet:

* the **diameter** is certified once ``max(lower) == max(upper)`` over
  all vertices — no unresolved vertex can exceed the best eccentricity
  already witnessed;
* the **radius** is certified once some vertex's *exact* eccentricity
  is ``<= min(lower)`` over all vertices — no vertex can beat it.

Both rules are statements about Lemma 3.1 bounds, not about BFS, so the
driver is written against the :class:`repro.core.oracles.DistanceOracle`
protocol: :func:`oracle_radius_and_diameter` certifies the extremes of
any metric back-end (weighted distances via
:func:`repro.weighted.eccentricity.weighted_radius_and_diameter`,
directed reachability via
:func:`repro.directed.eccentricity.directed_radius_and_diameter`), while
:func:`radius_and_diameter` keeps the historical unweighted signature —
bit-identical to the pre-unification implementation.

On small-world graphs this typically needs a small constant number of
traversals — the mode SNAP's diameter feature would call after the
Section 7.5 case study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.bounds import BoundState
from repro.core.ffo import farthest_first_order
from repro.core.oracles import BFSOracle, DistanceOracle
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter
from repro.obs.trace import Stopwatch
from repro.sentinels import unreached_mask

__all__ = ["ExtremesResult", "radius_and_diameter", "oracle_radius_and_diameter"]


@dataclass(frozen=True)
class ExtremesResult:
    """Certified radius and diameter of a (strongly) connected graph.

    Attributes
    ----------
    radius / diameter:
        The exact values — python ``int`` for hop metrics, ``float``
        for weighted ones (certified within the oracle's tolerance).
    center_vertex:
        A vertex attaining the radius.
    peripheral_vertex:
        A vertex attaining the diameter.
    num_bfs:
        Traversals spent (including the reference probe; a directed
        probe counts its forward + backward pair as two).
    elapsed_seconds:
        Wall time.
    """

    radius: float
    diameter: float
    center_vertex: int
    peripheral_vertex: int
    num_bfs: int
    elapsed_seconds: float


def _certify_state(
    bounds: BoundState, exact_ecc: "Dict[int, float]"
) -> "Tuple[bool, bool]":
    """Current certification status: (diameter_done, radius_done)."""
    dia_lb = bounds.lower.max().item()
    dia_ub = bounds.upper.max().item()
    rad_lb = bounds.lower.min().item()
    dia_done = bool(bounds.bounds_met(dia_lb, dia_ub))
    rad_done = bool(exact_ecc) and bool(
        bounds.bounds_met(rad_lb, min(exact_ecc.values()))
    )
    return dia_done, rad_done


def oracle_radius_and_diameter(
    oracle: DistanceOracle,
    counter: Optional[TraversalCounter] = None,
) -> ExtremesResult:
    """Certified radius and diameter without the full ED, any metric.

    Alternates two source heuristics until both extremes are certified:

    * *periphery probe* — the unresolved vertex of largest upper bound
      (its probe can only raise ``max(lower)`` or prove the upper bounds
      slack), seeded by the reference's FFO front;
    * *center probe* — the unresolved vertex of smallest lower bound
      (its exact eccentricity is the best radius candidate).

    Every probe is a :meth:`DistanceOracle.source_probe` — the full
    Lemma 3.1 package, so asymmetric metrics pay a forward + backward
    pair per probed vertex.
    """
    n = oracle.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    counter = counter if counter is not None else TraversalCounter()
    watch = Stopwatch()

    reference = int(oracle.select_references("degree", 1, 0)[0])
    ecc_z, dist_from, dist_into = oracle.source_probe(
        reference, counter=counter
    )
    if bool(np.any(unreached_mask(dist_from))) or (
        dist_into is not dist_from
        and bool(np.any(unreached_mask(dist_into)))
    ):
        raise oracle.disconnected_error()
    ffo = farthest_first_order(dist_from, reference)
    bounds = BoundState(n, dtype=oracle.dtype, tolerance=oracle.tolerance)
    bounds.set_exact(reference, ffo.eccentricity)
    if dist_into is dist_from:
        bounds.apply_lemma31(dist_into, ffo.eccentricity)
    else:
        bounds.apply_lemma31(
            dist_into, ffo.eccentricity, dist_from_t=dist_from
        )
    exact_ecc: Dict[int, float] = {reference: ffo.eccentricity}

    ffo_cursor = 0
    pick_periphery = True
    while True:
        dia_done, rad_done = _certify_state(bounds, exact_ecc)
        if dia_done and rad_done:
            break
        unresolved = np.flatnonzero(~bounds.resolved_mask())
        if len(unresolved) == 0:
            break
        if pick_periphery and not dia_done:
            # Prefer the FFO front (far vertices realise the diameter);
            # fall back to the largest upper bound.
            source = None
            while ffo_cursor < len(ffo.order):
                candidate = int(ffo.order[ffo_cursor])
                ffo_cursor += 1
                if not bool(
                    bounds.bounds_met(
                        bounds.lower[candidate], bounds.upper[candidate]
                    )
                ):
                    source = candidate
                    break
            if source is None:
                source = int(
                    unresolved[np.argmax(bounds.upper[unresolved])]
                )
        else:
            source = int(unresolved[np.argmin(bounds.lower[unresolved])])
        pick_periphery = not pick_periphery

        ecc_s, dist_from_s, dist_into_s = oracle.source_probe(
            source, counter=counter
        )
        bounds.set_exact(source, ecc_s)
        if dist_into_s is dist_from_s:
            bounds.apply_lemma31(dist_into_s, ecc_s)
        else:
            bounds.apply_lemma31(dist_into_s, ecc_s, dist_from_t=dist_from_s)
        exact_ecc[source] = ecc_s

    dia = bounds.lower.max().item()
    rad_vertex = min(exact_ecc, key=exact_ecc.get)  # type: ignore[arg-type]
    dia_vertex = int(np.argmax(bounds.lower))
    elapsed = watch.elapsed()
    return ExtremesResult(
        radius=exact_ecc[rad_vertex],
        diameter=dia,
        center_vertex=int(rad_vertex),
        peripheral_vertex=dia_vertex,
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
    )


def radius_and_diameter(
    graph: Graph,
    counter: Optional[TraversalCounter] = None,
) -> ExtremesResult:
    """Certified radius and diameter of an unweighted connected graph.

    The historical entry point, now a :class:`BFSOracle` instantiation of
    :func:`oracle_radius_and_diameter` (bit-identical results and BFS
    counts).
    """
    return oracle_radius_and_diameter(BFSOracle(graph), counter=counter)
