"""Radius- and diameter-only computation with early termination.

The related work the paper builds on (Takes & Kosters 2011 [33]; Akiba,
Iwata, Kawata 2015 [2]) observed that when only the *extremes* of the
eccentricity distribution are needed — the radius and/or diameter —
the bound-based loop can stop long before every vertex's bounds meet:

* the **diameter** is certified once ``max(lower) == max(upper)`` over
  all vertices — no unresolved vertex can exceed the best eccentricity
  already witnessed;
* the **radius** is certified once some vertex's *exact* eccentricity
  is ``<= min(lower)`` over all vertices — no vertex can beat it.

:func:`radius_and_diameter` runs IFECC's machinery (one reference BFS,
Lemma 3.1 updates, FFO-guided source order interleaved with a
center-guided order for the radius side) under these relaxed stopping
rules.  On small-world graphs this typically needs a small constant
number of BFS traversals — the mode SNAP's diameter feature would call
after the Section 7.5 case study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bounds import BoundState
from repro.core.ffo import compute_ffo
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import (
    UNREACHED,
    BFSCounter,
    eccentricity_and_distances,
)

__all__ = ["ExtremesResult", "radius_and_diameter"]


@dataclass(frozen=True)
class ExtremesResult:
    """Certified radius and diameter of a connected graph.

    Attributes
    ----------
    radius / diameter:
        The exact values.
    center_vertex:
        A vertex attaining the radius.
    peripheral_vertex:
        A vertex attaining the diameter.
    num_bfs:
        BFS traversals spent (including the reference BFS).
    elapsed_seconds:
        Wall time.
    """

    radius: int
    diameter: int
    center_vertex: int
    peripheral_vertex: int
    num_bfs: int
    elapsed_seconds: float


def _certify_state(
    bounds: BoundState, exact_ecc: "dict[int, int]"
) -> "tuple[bool, bool, int, Optional[int]]":
    """Current certification status: (dia_done, rad_done, dia, rad)."""
    dia_lb = int(bounds.lower.max())
    dia_ub = int(bounds.upper.max())
    rad_ub = min(exact_ecc.values()) if exact_ecc else None
    rad_lb = int(bounds.lower.min())
    dia_done = dia_lb == dia_ub
    rad_done = rad_ub is not None and rad_ub <= rad_lb
    return dia_done, rad_done, dia_lb, rad_ub


def radius_and_diameter(
    graph: Graph,
    counter: Optional[BFSCounter] = None,
) -> ExtremesResult:
    """Certified radius and diameter without the full ED.

    Alternates two source heuristics until both extremes are certified:

    * *periphery probe* — the unresolved vertex of largest upper bound
      (its BFS can only raise ``max(lower)`` or prove the upper bounds
      slack), seeded by the reference's FFO front;
    * *center probe* — the unresolved vertex of smallest lower bound
      (its exact eccentricity is the best radius candidate).
    """
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    counter = counter if counter is not None else BFSCounter()
    start = time.perf_counter()

    reference = graph.max_degree_vertex()
    ffo = compute_ffo(graph, reference, counter=counter)
    if np.any(ffo.distances == UNREACHED):
        from repro.graph.components import connected_components

        raise DisconnectedGraphError(
            connected_components(graph).num_components
        )
    bounds = BoundState(n)
    bounds.set_exact(reference, ffo.eccentricity)
    bounds.apply_lemma31(ffo.distances, ffo.eccentricity)
    exact_ecc = {reference: ffo.eccentricity}

    ffo_cursor = 0
    pick_periphery = True
    while True:
        dia_done, rad_done, _dia, _rad = _certify_state(bounds, exact_ecc)
        if dia_done and rad_done:
            break
        unresolved = np.flatnonzero(bounds.lower != bounds.upper)
        if len(unresolved) == 0:
            break
        if pick_periphery and not dia_done:
            # Prefer the FFO front (far vertices realise the diameter);
            # fall back to the largest upper bound.
            source = None
            while ffo_cursor < len(ffo.order):
                candidate = int(ffo.order[ffo_cursor])
                ffo_cursor += 1
                if bounds.lower[candidate] != bounds.upper[candidate]:
                    source = candidate
                    break
            if source is None:
                source = int(
                    unresolved[np.argmax(bounds.upper[unresolved])]
                )
        else:
            source = int(unresolved[np.argmin(bounds.lower[unresolved])])
        pick_periphery = not pick_periphery

        ecc_s, dist_s = eccentricity_and_distances(
            graph, source, counter=counter
        )
        bounds.set_exact(source, ecc_s)
        bounds.apply_lemma31(dist_s, ecc_s)
        exact_ecc[source] = ecc_s

    dia = int(bounds.lower.max())
    rad_vertex = min(exact_ecc, key=exact_ecc.get)
    dia_vertex = int(np.argmax(bounds.lower))
    elapsed = time.perf_counter() - start
    return ExtremesResult(
        radius=exact_ecc[rad_vertex],
        diameter=dia,
        center_vertex=int(rad_vertex),
        peripheral_vertex=dia_vertex,
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
    )
