"""The metric-generic Algorithm-2 solver core.

Section 3.1's observation — formalised by Dragan et al.'s certificate
view — is that *every* bound-based eccentricity algorithm is the same
loop: pick references, order probes farthest-first, tighten Lemma
3.1/3.3 bounds until every gap closes.  The repository used to
implement that loop three times (unweighted BFS, weighted Dijkstra,
directed forward/backward BFS); :class:`EccentricitySolver` implements
it once, parameterised over a :class:`repro.core.oracles.DistanceOracle`:

1. select ``r`` reference nodes ``Z`` (Algorithm 2, line 1);
2. one *source probe* per ``z`` in ``Z`` yields ``ecc(z)``, the forward
   distances (hence the FFO ``L^z``) and the reverse distances
   (lines 2-4; symmetric metrics get both vectors from one traversal);
3. every other vertex joins the *territory* ``V^z`` of its closest
   reference and has its bounds seeded by Lemma 3.1 (lines 5-9);
4. for each ``z``, *sweep probes* walk ``L^z`` front-to-back; each
   probe yields exact reverse distances, so Lemma 3.1 raises lower
   bounds and Lemma 3.3 caps upper bounds for the territory, until
   every territory member's bounds meet (lines 10-18).

Because the loop is shared, every capability built on it — the anytime
:meth:`EccentricitySolver.steps` protocol, kIFECC-style budgeting
(:meth:`run_budgeted`), extremes early-stop
(:func:`repro.core.extremes.oracle_radius_and_diameter`) and the
convergence instrumentation of :mod:`repro.analysis.convergence` —
works identically for unweighted, weighted, and directed inputs.

The unweighted instantiation (:class:`repro.core.ifecc.IFECC`) is
bit-identical to the historical implementation: same traversal
sequence, same counters, same snapshots, same results.  Weighted and
directed instantiations are value-identical to their pre-unification
ancestors within the oracle's documented tolerance.

Space stays ``O(m + n)`` (Theorem 4.5): the graph, the bound arrays,
and the ``r`` reference distance vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import sanitize
from repro.core.bounds import BoundState
from repro.core.ffo import FarthestFirstOrder, farthest_first_order
from repro.core.oracles import DistanceOracle
from repro.core.result import EccentricityResult, ProgressSnapshot
from repro.counters import TraversalCounter
from repro.errors import InvalidParameterError
from repro.obs.trace import Stopwatch, Tracer, get_tracer
from repro.sentinels import unreached_mask

__all__ = ["EccentricitySolver", "Territory"]


@dataclass
class Territory:
    """A reference node's working state during the main loop.

    ``dist_into`` holds ``dist(v, z)`` for every ``v`` — the vector the
    Lemma 3.3 tail cap reads.  For symmetric metrics it is the FFO's
    own distance vector; the directed oracle supplies the backward-BFS
    vector.
    """

    reference: int
    ffo: FarthestFirstOrder
    members: np.ndarray  # vertex ids owned by this reference
    dist_into: np.ndarray  # dist(., reference)


class EccentricitySolver:
    """Generic Algorithm-2 engine over a pluggable distance oracle.

    Parameters
    ----------
    oracle:
        The metric back-end (see :mod:`repro.core.oracles`).
    num_references:
        ``r``, the reference-node count.  The paper's headline
        configuration is ``r = 1`` (Section 4.3).
    strategy:
        Reference-selection rule, resolved by the oracle (``"degree"``
        is every metric's default; the unweighted oracle also offers
        ``"random"`` and ``"center"``).
    seed:
        Seed for stochastic strategies; ignored by ``"degree"``.
    memoize_distances:
        Cache each probe's distance vector and replay it when a vertex
        sits at the FFO front of several references (the Section 4.3
        space/time trade-off; reference vectors are always retained).
    counter:
        Optional shared :class:`repro.counters.TraversalCounter`.
    tracer:
        Optional explicit :class:`repro.obs.trace.Tracer`; by default the
        process-wide active tracer (:func:`repro.obs.trace.get_tracer`)
        is consulted at :meth:`steps` time, so ``with tracing(sink):``
        around a run captures its spans without touching this signature.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        num_references: int = 1,
        strategy: str = "degree",
        seed: int = 0,
        memoize_distances: bool = False,
        counter: Optional[TraversalCounter] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if num_references < 1:
            raise InvalidParameterError("num_references must be >= 1")
        if oracle.num_vertices == 0:
            raise InvalidParameterError("graph must have at least one vertex")
        self.oracle = oracle
        self.num_references = min(num_references, oracle.num_vertices)
        self.strategy = strategy
        self.seed = seed
        self.memoize_distances = memoize_distances
        self.counter = counter if counter is not None else TraversalCounter()
        self._tracer = tracer
        # Scratch for the traced-probe gap-mass reduction; see
        # _finish_probe_span.
        self._gap_buf: Optional[np.ndarray] = None
        self.bounds = BoundState(
            oracle.num_vertices,
            dtype=oracle.dtype,
            tolerance=oracle.tolerance,
        )
        self.references = oracle.select_references(
            strategy, self.num_references, seed
        )
        self._territories: List[Territory] = []
        # source id -> (ecc-or-None, dist(., source)) for probes whose
        # result is retained: always the references, plus every probe
        # when memoize_distances is on.
        self._known: Dict[int, Tuple[Optional[float], np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Phase 1: reference probes + territory assignment (Alg. 2, 1-9)
    # ------------------------------------------------------------------
    def _initialise(self) -> Iterator[ProgressSnapshot]:
        oracle = self.oracle
        tracer = self._active_tracer()
        ffos: List[FarthestFirstOrder] = []
        reverse: List[np.ndarray] = []
        for z in self.references:
            z = int(z)
            span = tracer.span(
                "solver.probe",
                probe="reference",
                source=z,
                territory=z,
                ffo_rank=None,
                metric=oracle.metric_name,
                oracle=getattr(oracle, "trace_kind", oracle.metric_name),
            )
            ecc_z, dist_from, dist_into = oracle.source_probe(
                z, counter=self.counter
            )
            if bool(np.any(unreached_mask(dist_from))) or (
                dist_into is not dist_from
                and bool(np.any(unreached_mask(dist_into)))
            ):
                raise oracle.disconnected_error()
            ffo = farthest_first_order(dist_from, z)
            ffos.append(ffo)
            reverse.append(dist_into)
            self.bounds.set_exact(z, ffo.eccentricity)
            # Memoising relies on source_probe's caller-owned contract;
            # under REPRO_SANITIZE=1 a pooled loan slipping in raises
            # here, at the retention site, not at some later stale read.
            self._known[z] = (
                ffo.eccentricity,
                sanitize.assert_owned(dist_into),
            )
            snap = self._snapshot(z)
            if tracer.enabled:
                self._finish_probe_span(tracer, span, ffo.eccentricity, snap)
            yield snap

        # Closest reference per vertex (by forward distance); ties go to
        # the earlier entry of Z (the higher-degree reference),
        # matching Example 4.6.
        dist_matrix = np.stack([f.distances for f in ffos])  # (r, n)
        owner_idx = np.argmin(dist_matrix, axis=0)

        for idx, ffo in enumerate(ffos):
            z = int(self.references[idx])
            members = np.flatnonzero(owner_idx == idx)
            members = members[~np.isin(members, self.references)]
            dist_into_z = reverse[idx]
            # Lemma 3.1 seed from the territory's own reference
            # (lines 8-9); asymmetric metrics split the two directions.
            if dist_into_z is ffo.distances:
                self.bounds.apply_lemma31_subset(
                    members, ffo.distances[members], ffo.eccentricity
                )
            else:
                self.bounds.apply_lemma31_subset(
                    members,
                    dist_into_z[members],
                    ffo.eccentricity,
                    dist_from_subset=ffo.distances[members],
                )
            self._territories.append(
                Territory(
                    reference=z,
                    ffo=ffo,
                    members=members.astype(np.int64),
                    dist_into=dist_into_z,
                )
            )
            tracer.event(
                "solver.territory", reference=z, size=int(len(members))
            )

    # ------------------------------------------------------------------
    # Phase 2: FFO-ordered probe sweep (Algorithm 2, 10-18)
    # ------------------------------------------------------------------
    def steps(self) -> Iterator[ProgressSnapshot]:
        """Run the algorithm, yielding a snapshot after every traversal.

        Exhausting the iterator completes the exact computation; stopping
        early leaves valid (possibly unresolved) bounds in
        :attr:`bounds` — that is the anytime mode kIFECC builds on, now
        available for every metric.
        """
        yield from self._initialise()
        for territory in self._territories:
            yield from self._sweep_territory(territory)

    def _sweep_territory(
        self, territory: Territory
    ) -> Iterator[ProgressSnapshot]:
        bounds = self.bounds
        tracer = self._active_tracer()
        ffo = territory.ffo
        dist_into_z = territory.dist_into
        unresolved = bounds.unresolved_subset(territory.members)
        if len(unresolved) == 0:
            return
        for rank, source in enumerate(ffo.order):
            source = int(source)
            if source == territory.reference:
                continue
            tail_radius = ffo.distance_of_rank(rank + 1)
            if source in self._known:
                # Replay the retained distance vector instead of
                # re-running the traversal.  Lemma 3.3 stays sound
                # because the replayed Lemma 3.1 update makes `source` a
                # probed node of this territory, exactly as a fresh
                # traversal would.
                ecc_s, dist_s = self._known[source]
                fresh_probe = False
                span = None
                tracer.event(
                    "solver.replay",
                    source=source,
                    territory=territory.reference,
                    ffo_rank=rank,
                )
            else:
                span = (
                    tracer.span(
                        "solver.probe",
                        probe="sweep",
                        source=source,
                        territory=territory.reference,
                        ffo_rank=rank,
                        metric=self.oracle.metric_name,
                        oracle=getattr(
                            self.oracle, "trace_kind", self.oracle.metric_name
                        ),
                    )
                    if tracer.enabled
                    else None
                )
                # The vector may alias the oracle's pooled workspace; it
                # is consumed before the next traversal and only the
                # memoised copy outlives this iteration.
                ecc_s, dist_s = self.oracle.sweep_probe(
                    source, counter=self.counter
                )
                if ecc_s is not None:
                    # The probe determined ecc(source) exactly, even if
                    # `source` belongs to another territory.  (The
                    # directed oracle's backward BFS yields no forward
                    # eccentricity; its probes skip this step.)
                    bounds.set_exact(source, ecc_s)
                if self.memoize_distances:
                    self._known[source] = (
                        ecc_s,
                        sanitize.assert_owned(dist_s.copy()),
                    )
                fresh_probe = True
            # Lemma 3.1 (lower) for the territory...
            bounds.raise_lower_subset(unresolved, dist_s[unresolved])
            # ... and Lemma 3.3's shrinking tail cap (upper).
            bounds.apply_lemma33_tail(
                dist_into_z, tail_radius, subset=unresolved
            )
            if fresh_probe:
                snap = self._snapshot(source)
                if span is not None:
                    self._finish_probe_span(tracer, span, ecc_s, snap)
                yield snap
            unresolved = bounds.unresolved_subset(unresolved)
            if len(unresolved) == 0:
                break

    def _active_tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def _finish_probe_span(
        self,
        tracer: Tracer,
        span: Any,
        ecc_value: Optional[float],
        snap: ProgressSnapshot,
    ) -> None:
        """Attach post-traversal facts to a probe span and close it.

        Only called when tracing is enabled; the gauges mirror the
        event stream so metric consumers see convergence without
        replaying events.  ``gap`` is the remaining bound-gap mass —
        per-vertex ``upper - lower`` capped at the oracle's finite
        eccentricity bound (untouched vertices carry an infinity
        sentinel) and summed — the certificate-size signal the live
        progress monitor plots.
        """
        remaining = snap.num_vertices - snap.resolved
        if ecc_value is None:
            ecc_out: Optional[float] = None
        else:
            ecc_out = (
                int(ecc_value)
                if float(ecc_value).is_integer()
                else float(ecc_value)
            )
        buf = self._gap_buf
        if buf is None or len(buf) != snap.num_vertices:
            buf = self._gap_buf = np.empty(snap.num_vertices, np.float64)
        # In-place fused equivalent of
        # ``np.minimum(self.bounds.gap(), self.oracle.gap_cap()).sum()``
        # — this runs once per traced traversal, and the temporaries the
        # spelled-out form allocates are the single largest slice of the
        # capture overhead budget enforced by bench_obs_overhead.
        np.subtract(self.bounds.upper, self.bounds.lower, out=buf)
        np.minimum(buf, self.oracle.gap_cap(), out=buf)
        gap_mass = float(buf.sum())
        gap_out = int(gap_mass) if gap_mass.is_integer() else gap_mass
        span.set(
            ecc=ecc_out,
            traversals=snap.bfs_runs,
            resolved=snap.resolved,
            remaining=remaining,
            gap=gap_out,
        ).finish()
        tracer.metrics.gauge("solver.unresolved").set(remaining)
        tracer.metrics.gauge("solver.gap_mass").set(gap_mass)

    def _snapshot(self, source: int) -> ProgressSnapshot:
        return ProgressSnapshot(
            bfs_runs=self.counter.bfs_runs,
            source=source,
            resolved=self.bounds.num_resolved(),
            num_vertices=self.oracle.num_vertices,
        )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def _algorithm_tag(self) -> str:
        return f"{self.oracle.metric_name}-{self.num_references}"

    def run(self, algorithm: Optional[str] = None) -> EccentricityResult:
        """Run to completion and return the exact ED (Algorithm 2)."""
        tracer = self._active_tracer()
        watch = Stopwatch()
        with tracer.span(
            "solver.run",
            algorithm=(
                algorithm if algorithm is not None else self._algorithm_tag()
            ),
            metric=self.oracle.metric_name,
        ) as run_span:
            for _ in self.steps():
                pass
            run_span.set(traversals=self.counter.bfs_runs)
        elapsed = watch.elapsed()
        if tracer.enabled:
            tracer.metrics.ingest_traversal_counter(self.counter)
        return EccentricityResult(
            eccentricities=self.bounds.eccentricities(),
            lower=self.bounds.lower.copy(),
            upper=self.bounds.upper.copy(),
            exact=True,
            algorithm=(
                algorithm if algorithm is not None else self._algorithm_tag()
            ),
            num_bfs=self.counter.bfs_runs,
            elapsed_seconds=elapsed,
            reference_nodes=self.references.copy(),
            counter=self.counter,
        )

    def run_budgeted(
        self, max_bfs: int, algorithm: Optional[str] = None
    ) -> EccentricityResult:
        """Stop after ``max_bfs`` total traversals; lower bounds become
        the estimate (the anytime by-product of Section 1,
        contribution 5)."""
        if max_bfs < 0:
            raise InvalidParameterError("max_bfs must be non-negative")
        tracer = self._active_tracer()
        watch = Stopwatch()
        exact = True
        with tracer.span(
            "solver.run",
            algorithm=(
                algorithm
                if algorithm is not None
                else f"{self._algorithm_tag()}(budget={max_bfs})"
            ),
            metric=self.oracle.metric_name,
            budget=max_bfs,
        ) as run_span:
            for snapshot in self.steps():
                if snapshot.bfs_runs >= max_bfs:
                    exact = self.bounds.all_resolved()
                    break
            else:
                exact = True
            run_span.set(traversals=self.counter.bfs_runs, exact=exact)
        elapsed = watch.elapsed()
        if tracer.enabled:
            tracer.metrics.ingest_traversal_counter(self.counter)
        return EccentricityResult(
            eccentricities=self.bounds.lower.copy(),
            lower=self.bounds.lower.copy(),
            upper=self.bounds.upper.copy(),
            exact=exact,
            algorithm=(
                algorithm
                if algorithm is not None
                else f"{self._algorithm_tag()}(budget={max_bfs})"
            ),
            num_bfs=self.counter.bfs_runs,
            elapsed_seconds=elapsed,
            reference_nodes=self.references.copy(),
            counter=self.counter,
        )
