"""Probe numbers (Definition 4.1) — the measure motivating IFECC.

For a reference node ``z`` and the ``i``-th node ``v_i`` of its FFO
``L^z``, the probe number ``PN^z(v_i)`` counts how many vertices ``v``
(with reference ``z``) queried the distance ``dist(v, v_i)`` during
PLLECC's probing before their bounds closed.  Lemma 4.3 shows the probe
number is non-increasing along the FFO — which is why only the FFO *front*
matters and the all-pair index is an overkill.

:func:`probe_numbers` replays PLLECC's probing loop (Algorithm 1, lines
6–14) with BFS-supplied distances, producing the exact probe numbers of
Table 2 for any graph small enough to afford |V| BFS runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bounds import INFINITE_ECC
from repro.core.ffo import FarthestFirstOrder, compute_ffos
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter, bfs_distances

__all__ = ["ProbeProfile", "probe_numbers"]


@dataclass(frozen=True)
class ProbeProfile:
    """Probe numbers of one reference node.

    Attributes
    ----------
    ffo:
        The reference's farthest-first order.
    counts:
        ``counts[i] = PN^z(v_i)`` aligned with ``ffo.order``.
    territory_size:
        Number of vertices whose reference is this node.
    """

    ffo: FarthestFirstOrder
    counts: np.ndarray
    territory_size: int

    def as_table_row(self) -> Dict[int, int]:
        """Map vertex id -> probe number (Table 2 layout)."""
        return {
            int(v): int(c) for v, c in zip(self.ffo.order, self.counts)
        }

    def is_monotone(self) -> bool:
        """Lemma 4.3: probe numbers never increase along the FFO."""
        return bool(np.all(np.diff(self.counts) <= 0))


def probe_numbers(
    graph: Graph,
    references: Sequence[int],
    counter: Optional[TraversalCounter] = None,
) -> List[ProbeProfile]:
    """Replay PLLECC's probing and count probes per FFO position.

    Runs |V| BFS traversals (one per probing vertex) to supply the
    distances PLLECC would read from its index, so use on small graphs
    only (the Table 2 reproduction and unit tests).
    """
    refs = [int(z) for z in references]
    if len(refs) == 0:
        raise InvalidParameterError("at least one reference node required")
    ffos = dict(zip(refs, compute_ffos(graph, refs, counter=counter)))
    counts = {z: np.zeros(len(ffos[z].order), dtype=np.int64) for z in refs}
    territory_sizes = {z: 0 for z in refs}

    ref_dists = np.stack([ffos[z].distances for z in refs])
    for v in range(graph.num_vertices):
        if v in refs:
            continue
        z = refs[int(np.argmin(ref_dists[:, v]))]
        territory_sizes[z] += 1
        ffo = ffos[z]
        dist_v = bfs_distances(graph, v, counter=counter)
        # Lemma 3.1 seed from the reference (Algorithm 1, lines 8-9).
        dist_vz = int(ffo.distances[v])
        lower = max(dist_vz, ffo.eccentricity - dist_vz)
        upper = dist_vz + ffo.eccentricity
        if lower == upper:
            continue
        for i, node in enumerate(ffo.order):
            counts[z][i] += 1
            lower = max(lower, int(dist_v[node]))
            tail = ffo.distance_of_rank(i + 1)
            upper = min(upper, max(lower, tail + dist_vz))
            if lower == upper:
                break
    return [
        ProbeProfile(
            ffo=ffos[z],
            counts=counts[z],
            territory_size=territory_sizes[z],
        )
        for z in refs
    ]
