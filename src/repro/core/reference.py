"""Reference-node selection strategies.

Both PLLECC (Algorithm 1, line 2) and IFECC (Algorithm 2, line 1) pick
``r`` *reference nodes* ``Z``; the paper uses the ``r`` highest-degree
vertices, arguing (Section 7.4) that in core–periphery networks the
highest-degree node sits near the graph center, which keeps the farthest
sets ``F1``/``F2`` small.

This module also ships two alternatives used by the reference-selection
ablation benchmark: uniform-random selection and a two-sweep pseudo-center
heuristic.  The theory of Section 5 holds for *any* reference node; the
strategies differ only in how small ``|F1|``/``|F2|`` come out.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import bfs_distances

__all__ = [
    "highest_degree",
    "random_vertices",
    "two_sweep_pseudo_center",
    "get_strategy",
    "STRATEGIES",
]

SelectionStrategy = Callable[[Graph, int, int], np.ndarray]


def _check_count(graph: Graph, count: int) -> None:
    if count < 1:
        raise InvalidParameterError("reference count must be >= 1")
    if graph.num_vertices == 0:
        raise InvalidParameterError("cannot select references in empty graph")


def highest_degree(graph: Graph, count: int, seed: int = 0) -> np.ndarray:
    """The ``count`` highest-degree vertices (the paper's choice).

    ``seed`` is accepted for signature uniformity and ignored — the
    selection is deterministic.
    """
    _check_count(graph, count)
    return graph.top_degree_vertices(count)


def random_vertices(graph: Graph, count: int, seed: int = 0) -> np.ndarray:
    """``count`` distinct vertices chosen uniformly at random."""
    _check_count(graph, count)
    rng = np.random.default_rng(seed)
    count = min(count, graph.num_vertices)
    return rng.choice(
        graph.num_vertices, size=count, replace=False
    ).astype(np.int32)


def two_sweep_pseudo_center(
    graph: Graph, count: int, seed: int = 0
) -> np.ndarray:
    """Pseudo-center by the classic double-sweep heuristic.

    BFS from the highest-degree vertex finds a far vertex ``a``; BFS from
    ``a`` finds ``b`` (the double-sweep diameter endpoints).  The vertex
    minimising ``max(dist(a, v), dist(b, v))`` approximates the graph
    center; ties are broken by higher degree then smaller id.  Additional
    references (``count > 1``) are the next-best vertices under the same
    score.
    """
    _check_count(graph, count)
    start = graph.max_degree_vertex()
    dist_start = bfs_distances(graph, start)
    a = int(np.argmax(dist_start))
    dist_a = bfs_distances(graph, a)
    b = int(np.argmax(dist_a))
    dist_b = bfs_distances(graph, b)
    # Unreachable vertices must never win: give them an infinite score.
    score = np.maximum(dist_a, dist_b).astype(np.int64)
    score[(dist_a < 0) | (dist_b < 0)] = np.iinfo(np.int64).max
    # Rank by (score asc, degree desc, id asc).
    ranking = np.lexsort(
        (np.arange(graph.num_vertices), -graph.degrees, score)
    )
    count = min(count, graph.num_vertices)
    return ranking[:count].astype(np.int32)


STRATEGIES: Dict[str, SelectionStrategy] = {
    "degree": highest_degree,
    "random": random_vertices,
    "center": two_sweep_pseudo_center,
}


def get_strategy(name: str) -> SelectionStrategy:
    """Look up a strategy by name (``degree``, ``random``, ``center``)."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown reference strategy {name!r}; "
            f"choose from {sorted(STRATEGIES)}"
        ) from None
