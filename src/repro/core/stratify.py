"""Graph stratification and the farthest sets F1 / F2 (Section 5).

Fixing a reference node ``z``, the graph splits into layers
``S_i^z = {v : dist(v, z) = i}`` (Definition 5.1).  The theory of
Section 5 tripartites the layers:

* ``F1 = {v : dist(v, z) > ecc(z) / 3}``  — the "farthest 2/3" set;
* ``F2 = {v : dist(v, z) > 2 ecc(z) / 3}`` — the "farthest 1/3" set.

Theorem 5.5: BFS from every node of ``F1`` determines the *exact* ED —
for ``v`` outside ``F1``, some farthest node of ``v`` lies inside ``F1``.

Theorem 5.6: BFS from every node of ``F2`` yields the exact ``ecc`` inside
``F2`` and, outside it, the estimator

    ecc~(v) = max(dist_max(v, F2), dist(v, z) + ecc(z) / 4)

with guarantee ``7/12 <= ecc~(v) / ecc(v) <= 3/2``.

This module computes the stratification, implements both theorem-driven
algorithms (they double as independent oracles for IFECC in the test
suite), and provides the ``|F1|``/``|F2|`` statistics of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.result import EccentricityResult
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import (
    UNREACHED,
    TraversalCounter,
    bfs_distances,
    eccentricity_and_distances,
)
from repro.obs.trace import Stopwatch

__all__ = [
    "Stratification",
    "stratify",
    "exact_via_f1",
    "approximate_via_f2",
]


@dataclass(frozen=True)
class Stratification:
    """Layer structure of a graph around a reference node ``z``.

    Attributes
    ----------
    reference:
        The node ``z``.
    distances:
        Distance vector from ``z``.
    eccentricity:
        ``ecc(z)`` (the number of non-empty layers minus one).
    """

    reference: int
    distances: np.ndarray
    eccentricity: int

    def layer(self, i: int) -> np.ndarray:
        """Vertex ids of layer ``S_i^z`` (Definition 5.1)."""
        return np.flatnonzero(self.distances == i).astype(np.int32)

    def layer_sizes(self) -> np.ndarray:
        """``sizes[i] = |S_i^z|`` for ``i = 0 .. ecc(z)``."""
        reachable = self.distances[self.distances >= 0]
        return np.bincount(
            reachable.astype(np.int64), minlength=self.eccentricity + 1
        )

    @property
    def f1(self) -> np.ndarray:
        """The farthest (2/3) set: ``dist(v, z) > ecc(z) / 3``.

        The threshold is evaluated exactly with integer arithmetic
        (``3 * dist > ecc``) to avoid float edge cases.
        """
        return np.flatnonzero(
            3 * self.distances.astype(np.int64) > self.eccentricity
        ).astype(np.int32)

    @property
    def f2(self) -> np.ndarray:
        """The farthest (1/3) set: ``dist(v, z) > 2 ecc(z) / 3``."""
        return np.flatnonzero(
            3 * self.distances.astype(np.int64) > 2 * self.eccentricity
        ).astype(np.int32)

    def sizes(self) -> Dict[str, int]:
        """The Figure 12 statistics."""
        return {"n": len(self.distances), "F1": len(self.f1), "F2": len(self.f2)}


def stratify(
    graph: Graph,
    reference: Optional[int] = None,
    counter: Optional[TraversalCounter] = None,
) -> Stratification:
    """Stratify ``graph`` around ``reference`` (default: highest degree).

    Requires a connected graph; Section 5's analysis holds for any
    reference choice, Section 7.4 recommends the highest-degree node.
    """
    if graph.num_vertices == 0:
        raise InvalidParameterError("cannot stratify the empty graph")
    if reference is None:
        reference = graph.max_degree_vertex()
    ecc, dist = eccentricity_and_distances(graph, reference, counter=counter)
    if np.any(dist == UNREACHED):
        from repro.graph.components import connected_components

        raise DisconnectedGraphError(
            connected_components(graph).num_components
        )
    return Stratification(
        reference=int(reference), distances=dist, eccentricity=ecc
    )


def exact_via_f1(
    graph: Graph,
    reference: Optional[int] = None,
    counter: Optional[TraversalCounter] = None,
) -> EccentricityResult:
    """Exact ED by BFS from every node of ``F1`` (Theorem 5.5).

    For ``v`` in ``F1`` the eccentricity comes from ``v``'s own BFS; for
    ``v`` outside, ``ecc(v) = max_{u in F1} dist(u, v)`` — the theorem
    guarantees some farthest node of ``v`` lies in ``F1``.

    :dtype ecc: int32
    """
    counter = counter if counter is not None else TraversalCounter()
    watch = Stopwatch()
    strat = stratify(graph, reference, counter=counter)
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int32)
    f1 = strat.f1
    in_f1 = np.zeros(n, dtype=bool)
    in_f1[f1] = True
    for u in f1:
        ecc_u, dist_u = eccentricity_and_distances(
            graph, int(u), counter=counter
        )
        ecc[u] = ecc_u
        outside = ~in_f1
        ecc[outside] = np.maximum(ecc[outside], dist_u[outside])
    # The reference itself: covered by max-over-F1 unless F1 is empty
    # (single-vertex graph or ecc(z) = 0).
    if len(f1) == 0:
        ecc[:] = strat.eccentricity
        ecc[strat.reference] = strat.eccentricity
    elapsed = watch.elapsed()
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm="F1-exact",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        reference_nodes=np.asarray([strat.reference], dtype=np.int32),
        counter=counter,
    )


def approximate_via_f2(
    graph: Graph,
    reference: Optional[int] = None,
    counter: Optional[TraversalCounter] = None,
) -> EccentricityResult:
    """Approximate ED by BFS from every node of ``F2`` (Theorem 5.6).

    Inside ``F2`` the result is exact; outside, the theorem's estimator
    ``max(dist_max(v, F2), dist(v, z) + ecc(z) / 4)`` applies, with a
    guaranteed ratio in ``[7/12, 3/2]``.  The ``ecc(z) / 4`` term keeps
    the paper's real-valued arithmetic; estimates are rounded down to
    stay integral (rounding down never violates the lower ratio bound
    because the other max-term ``dist_max`` is integral).
    """
    counter = counter if counter is not None else TraversalCounter()
    watch = Stopwatch()
    strat = stratify(graph, reference, counter=counter)
    n = graph.num_vertices
    f2 = strat.f2
    in_f2 = np.zeros(n, dtype=bool)
    in_f2[f2] = True
    dist_max_f2 = np.zeros(n, dtype=np.int64)
    ecc_exact = np.zeros(n, dtype=np.int64)
    for u in f2:
        ecc_u, dist_u = eccentricity_and_distances(
            graph, int(u), counter=counter
        )
        ecc_exact[u] = ecc_u
        dist_max_f2 = np.maximum(dist_max_f2, dist_u)
    theorem_term = (
        strat.distances.astype(np.float64) + strat.eccentricity / 4.0
    )
    estimate = np.maximum(dist_max_f2.astype(np.float64), theorem_term)
    ecc = np.floor(estimate).astype(np.int32)
    ecc[in_f2] = ecc_exact[in_f2]
    if len(f2) == 0:
        # ecc(z) = 0: isolated vertex graph.
        ecc[:] = 0
    elapsed = watch.elapsed()
    return EccentricityResult(
        eccentricities=ecc,
        lower=np.where(in_f2, ecc, dist_max_f2.astype(np.int32)),
        upper=ecc.copy(),
        exact=False,
        algorithm="F2-approx",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        reference_nodes=np.asarray([strat.reference], dtype=np.int32),
        counter=counter,
    )
