"""IFECC — Index-Free Eccentricity Computation (Algorithm 2, Section 4).

IFECC plugs the farthest-first node order (FFO) of a handful of reference
nodes into the BFS-framework:

1. select ``r`` highest-degree reference nodes ``Z`` (line 1);
2. one BFS per ``z`` in ``Z`` yields ``ecc(z)`` and the FFO ``L^z``
   (lines 2–4);
3. every other vertex joins the *territory* ``V^z`` of its closest
   reference and has its bounds seeded by Lemma 3.1 (lines 5–9);
4. for each ``z``, BFS from the nodes of ``L^z`` front-to-back; each BFS
   gives exact distances, so Lemma 3.1 tightens lower bounds and
   Lemma 3.3 caps upper bounds for the territory, until every territory
   member's bounds meet (lines 10–18).

The engine is *anytime*: :meth:`IFECC.steps` yields a snapshot after each
BFS, which is exactly how Algorithm 3 (kIFECC, :mod:`repro.core.kifecc`)
and the budget-matched SNAP comparison (Figure 14) consume it.

Space is ``O(m + n)`` (Theorem 4.5): the graph, the bound arrays, and the
``r`` reference distance vectors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.core.bounds import BoundState
from repro.core.ffo import FarthestFirstOrder, compute_ffo
from repro.core.reference import get_strategy
from repro.core.result import EccentricityResult, ProgressSnapshot
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.components import split_components
from repro.graph.csr import Graph
from repro.graph.engine import engine_for
from repro.graph.traversal import UNREACHED, BFSCounter

__all__ = ["IFECC", "compute_eccentricities", "eccentricities_per_component"]


@dataclass
class _Territory:
    """A reference node's working state during the main loop."""

    reference: int
    ffo: FarthestFirstOrder
    members: np.ndarray  # vertex ids owned by this reference


class IFECC:
    """The IFECC engine.

    Parameters
    ----------
    graph:
        Connected, undirected input graph.  (Disconnected graphs raise
        :class:`DisconnectedGraphError`; use
        :func:`eccentricities_per_component` instead.)
    num_references:
        ``r``, the reference-node count.  The paper's headline
        configuration is ``r = 1`` (Section 4.3: "one reference node is
        enough"); ``r = 16`` matches PLLECC's default and Figure 9's sweep.
    strategy:
        Reference-selection rule: ``"degree"`` (paper default),
        ``"random"``, or ``"center"`` — see :mod:`repro.core.reference`.
    seed:
        Seed for stochastic strategies; ignored by ``"degree"``.
    memoize_distances:
        Algorithm 2 re-runs a BFS when a vertex sits at the FFO front of
        several references (the redundancy Section 4.3 quantifies in
        Figure 5).  With this flag the engine instead caches each BFS
        source's distance vector and replays it — the "memorize the
        computed results" trade-off the paper notes costs additional
        space (``O(#BFS * n)``), so it is off by default.  Distance
        vectors of the reference nodes themselves are always reused;
        they are stored anyway.
    counter:
        Optional shared :class:`BFSCounter` for cost accounting.
    """

    def __init__(
        self,
        graph: Graph,
        num_references: int = 1,
        strategy: str = "degree",
        seed: int = 0,
        memoize_distances: bool = False,
        counter: Optional[BFSCounter] = None,
    ) -> None:
        if num_references < 1:
            raise InvalidParameterError("num_references must be >= 1")
        if graph.num_vertices == 0:
            raise InvalidParameterError("graph must have at least one vertex")
        self.graph = graph
        self.num_references = min(num_references, graph.num_vertices)
        self.strategy = strategy
        self.seed = seed
        self.memoize_distances = memoize_distances
        self.counter = counter if counter is not None else BFSCounter()
        self.bounds = BoundState(graph.num_vertices)
        self.references = get_strategy(strategy)(
            graph, self.num_references, seed
        )
        self._territories: List[_Territory] = []
        # Shared pooled-workspace BFS engine: the FFO-ordered sweep runs
        # one BFS per probed source, all on this graph, so per-run
        # allocation would dominate at scale.
        self._engine = engine_for(graph)
        # source id -> (ecc, distance vector) for sources whose BFS result
        # is retained: always the references, plus every BFS source when
        # memoize_distances is on.
        self._known: dict[int, tuple[int, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Phase 1: reference BFS + territory assignment (Algorithm 2, 1-9)
    # ------------------------------------------------------------------
    def _initialise(self) -> Iterator[ProgressSnapshot]:
        graph = self.graph
        n = graph.num_vertices
        ffos: List[FarthestFirstOrder] = []
        for z in self.references:
            ffo = compute_ffo(
                graph, int(z), counter=self.counter, engine=self._engine
            )
            if np.any(ffo.distances == UNREACHED):
                raise DisconnectedGraphError(
                    num_components=len(split_components(graph))
                )
            ffos.append(ffo)
            self.bounds.set_exact(int(z), ffo.eccentricity)
            self._known[int(z)] = (ffo.eccentricity, ffo.distances)
            yield self._snapshot(int(z))

        # Closest reference per vertex; ties go to the earlier entry of Z
        # (the higher-degree reference), matching Example 4.6.
        dist_matrix = np.stack([f.distances for f in ffos])  # (r, n)
        owner_idx = np.argmin(dist_matrix, axis=0)

        for idx, ffo in enumerate(ffos):
            z = int(self.references[idx])
            members = np.flatnonzero(owner_idx == idx)
            members = members[~np.isin(members, self.references)]
            # Lemma 3.1 seed from the territory's own reference (lines 8-9).
            self.bounds.apply_lemma31_subset(
                members, ffo.distances[members], ffo.eccentricity
            )
            self._territories.append(
                _Territory(
                    reference=z, ffo=ffo, members=members.astype(np.int64)
                )
            )

    # ------------------------------------------------------------------
    # Phase 2: FFO-ordered BFS sweep (Algorithm 2, 10-18)
    # ------------------------------------------------------------------
    def steps(self) -> Iterator[ProgressSnapshot]:
        """Run the algorithm, yielding a snapshot after every BFS.

        Exhausting the iterator completes the exact computation; stopping
        early leaves valid (possibly unresolved) bounds in
        :attr:`bounds` — that is the anytime mode kIFECC builds on.
        """
        yield from self._initialise()
        for territory in self._territories:
            yield from self._sweep_territory(territory)

    def _sweep_territory(
        self, territory: _Territory
    ) -> Iterator[ProgressSnapshot]:
        bounds = self.bounds
        members = territory.members
        ffo = territory.ffo
        dist_to_z = ffo.distances
        unresolved = members[bounds.lower[members] != bounds.upper[members]]
        if len(unresolved) == 0:
            return
        for rank, source in enumerate(ffo.order):
            source = int(source)
            if source == territory.reference:
                continue
            tail_radius = ffo.distance_of_rank(rank + 1)
            if source in self._known:
                # Replay the retained distance vector instead of
                # re-running the BFS.  Lemma 3.3 stays sound because the
                # replayed Lemma 3.1 update makes `source` a probed node
                # of this territory, exactly as a fresh BFS would.
                ecc_s, dist_s = self._known[source]
                fresh_bfs = False
            else:
                # Pooled-buffer BFS: dist_s aliases the engine workspace
                # and is consumed before the next run; only the memoised
                # copy outlives this iteration.
                dist_s = self._engine.run(source, counter=self.counter)
                ecc_s = self._engine.last_ecc
                # The BFS determines ecc(source) exactly even if `source`
                # belongs to another territory.
                bounds.set_exact(source, ecc_s)
                if self.memoize_distances:
                    self._known[source] = (ecc_s, dist_s.copy())
                fresh_bfs = True
            # Lemma 3.1 (lower) for the territory...
            bounds.raise_lower_subset(unresolved, dist_s[unresolved])
            # ... and Lemma 3.3's shrinking tail cap (upper).
            bounds.apply_lemma33_tail(
                dist_to_z, tail_radius, subset=unresolved
            )
            if fresh_bfs:
                yield self._snapshot(source)
            unresolved = unresolved[
                bounds.lower[unresolved] != bounds.upper[unresolved]
            ]
            if len(unresolved) == 0:
                break

    def _snapshot(self, source: int) -> ProgressSnapshot:
        return ProgressSnapshot(
            bfs_runs=self.counter.bfs_runs,
            source=source,
            resolved=self.bounds.num_resolved(),
            num_vertices=self.graph.num_vertices,
        )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run(self) -> EccentricityResult:
        """Run to completion and return the exact ED (Algorithm 2)."""
        start = time.perf_counter()
        for _ in self.steps():
            pass
        elapsed = time.perf_counter() - start
        return EccentricityResult(
            eccentricities=self.bounds.eccentricities(),
            lower=self.bounds.lower.copy(),
            upper=self.bounds.upper.copy(),
            exact=True,
            algorithm=f"IFECC-{self.num_references}",
            num_bfs=self.counter.bfs_runs,
            elapsed_seconds=elapsed,
            reference_nodes=self.references.copy(),
            counter=self.counter,
        )

    def run_budgeted(self, max_bfs: int) -> EccentricityResult:
        """Stop after ``max_bfs`` total BFS runs; lower bounds become the
        estimate (the anytime by-product of Section 1, contribution 5)."""
        if max_bfs < 0:
            raise InvalidParameterError("max_bfs must be non-negative")
        start = time.perf_counter()
        exact = True
        for snapshot in self.steps():
            if snapshot.bfs_runs >= max_bfs:
                exact = self.bounds.all_resolved()
                break
        else:
            exact = True
        elapsed = time.perf_counter() - start
        return EccentricityResult(
            eccentricities=self.bounds.lower.copy(),
            lower=self.bounds.lower.copy(),
            upper=self.bounds.upper.copy(),
            exact=exact,
            algorithm=f"IFECC-{self.num_references}(budget={max_bfs})",
            num_bfs=self.counter.bfs_runs,
            elapsed_seconds=elapsed,
            reference_nodes=self.references.copy(),
            counter=self.counter,
        )


def compute_eccentricities(
    graph: Graph,
    num_references: int = 1,
    strategy: str = "degree",
    seed: int = 0,
    counter: Optional[BFSCounter] = None,
) -> EccentricityResult:
    """Compute the exact eccentricity distribution with IFECC.

    This is the library's headline entry point — the index-free, exact,
    ``O(m + n)``-space algorithm of the paper with its recommended
    ``r = 1`` default.

    Examples
    --------
    >>> from repro.graph.generators import paper_example_graph
    >>> result = compute_eccentricities(paper_example_graph())
    >>> result.radius, result.diameter
    (3, 5)
    """
    engine = IFECC(
        graph,
        num_references=num_references,
        strategy=strategy,
        seed=seed,
        counter=counter,
    )
    return engine.run()


def eccentricities_per_component(
    graph: Graph,
    num_references: int = 1,
    strategy: str = "degree",
    seed: int = 0,
) -> EccentricityResult:
    """IFECC on each connected component (paper footnote 2).

    Eccentricities are taken within each vertex's component; isolated
    vertices get eccentricity 0.
    """
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int32)
    counter = BFSCounter()
    start = time.perf_counter()
    num_refs_used: List[int] = []
    for subgraph, original_ids in split_components(graph):
        if subgraph.num_vertices == 1:
            ecc[original_ids] = 0
            continue
        result = compute_eccentricities(
            subgraph,
            num_references=num_references,
            strategy=strategy,
            seed=seed,
            counter=counter,
        )
        ecc[original_ids] = result.eccentricities
        num_refs_used.extend(
            int(original_ids[z]) for z in result.reference_nodes
        )
    elapsed = time.perf_counter() - start
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm=f"IFECC-{num_references}(per-component)",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        reference_nodes=np.asarray(num_refs_used, dtype=np.int32),
        counter=counter,
    )
