"""IFECC — Index-Free Eccentricity Computation (Algorithm 2, Section 4).

IFECC plugs the farthest-first node order (FFO) of a handful of reference
nodes into the BFS-framework:

1. select ``r`` highest-degree reference nodes ``Z`` (line 1);
2. one BFS per ``z`` in ``Z`` yields ``ecc(z)`` and the FFO ``L^z``
   (lines 2–4);
3. every other vertex joins the *territory* ``V^z`` of its closest
   reference and has its bounds seeded by Lemma 3.1 (lines 5–9);
4. for each ``z``, BFS from the nodes of ``L^z`` front-to-back; each BFS
   gives exact distances, so Lemma 3.1 tightens lower bounds and
   Lemma 3.3 caps upper bounds for the territory, until every territory
   member's bounds meet (lines 10–18).

The loop itself lives in the metric-generic
:class:`repro.core.solver.EccentricitySolver`; :class:`IFECC` is its
unweighted instantiation over :class:`repro.core.oracles.BFSOracle` —
``int32`` hop counts, exact (zero-tolerance) bound comparison, one
pooled-workspace BFS per probe.  The class is bit-identical to the
pre-unification implementation: same BFS sequence, counters, snapshots
and results.

The engine is *anytime*: :meth:`IFECC.steps` yields a snapshot after each
BFS, which is exactly how Algorithm 3 (kIFECC, :mod:`repro.core.kifecc`)
and the budget-matched SNAP comparison (Figure 14) consume it.

Space is ``O(m + n)`` (Theorem 4.5): the graph, the bound arrays, and the
``r`` reference distance vectors.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.oracles import BFSOracle
from repro.core.result import EccentricityResult
from repro.core.solver import EccentricitySolver
from repro.errors import InvalidParameterError
from repro.graph.components import split_components
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter
from repro.obs.trace import Stopwatch

__all__ = ["IFECC", "compute_eccentricities", "eccentricities_per_component"]


class IFECC(EccentricitySolver):
    """The IFECC engine — :class:`EccentricitySolver` over hop counts.

    Parameters
    ----------
    graph:
        Connected, undirected input graph.  (Disconnected graphs raise
        :class:`repro.errors.DisconnectedGraphError`; use
        :func:`eccentricities_per_component` instead.)
    num_references:
        ``r``, the reference-node count.  The paper's headline
        configuration is ``r = 1`` (Section 4.3: "one reference node is
        enough"); ``r = 16`` matches PLLECC's default and Figure 9's sweep.
    strategy:
        Reference-selection rule: ``"degree"`` (paper default),
        ``"random"``, or ``"center"`` — see :mod:`repro.core.reference`.
    seed:
        Seed for stochastic strategies; ignored by ``"degree"``.
    memoize_distances:
        Algorithm 2 re-runs a BFS when a vertex sits at the FFO front of
        several references (the redundancy Section 4.3 quantifies in
        Figure 5).  With this flag the engine instead caches each BFS
        source's distance vector and replays it — the "memorize the
        computed results" trade-off the paper notes costs additional
        space (``O(#BFS * n)``), so it is off by default.  Distance
        vectors of the reference nodes themselves are always reused;
        they are stored anyway.
    counter:
        Optional shared :class:`TraversalCounter` for cost accounting.
    backend, workers:
        Traversal backend for the oracle's *batched* entry points
        (``"numpy"`` default, ``"process"`` fans out across ``workers``
        processes — see :mod:`repro.parallel`).  The sequential
        bound-tightening probes always run in-process, so IFECC results
        are identical under every backend; the flag matters to the
        batched reference scans and to callers sharing the oracle.
    """

    def __init__(
        self,
        graph: Graph,
        num_references: int = 1,
        strategy: str = "degree",
        seed: int = 0,
        memoize_distances: bool = False,
        counter: Optional[TraversalCounter] = None,
        backend: str = "numpy",
        workers: Optional[int] = None,
    ) -> None:
        if num_references < 1:
            raise InvalidParameterError("num_references must be >= 1")
        if graph.num_vertices == 0:
            raise InvalidParameterError("graph must have at least one vertex")
        self.graph = graph
        oracle = BFSOracle(graph, backend=backend, workers=workers)
        super().__init__(
            oracle,
            num_references=num_references,
            strategy=strategy,
            seed=seed,
            memoize_distances=memoize_distances,
            counter=counter,
        )
        # Kept for introspection/back-compat: the shared pooled-workspace
        # BFS engine behind the oracle.
        self._engine = oracle.engine


def compute_eccentricities(
    graph: Graph,
    num_references: int = 1,
    strategy: str = "degree",
    seed: int = 0,
    counter: Optional[TraversalCounter] = None,
    backend: str = "numpy",
    workers: Optional[int] = None,
) -> EccentricityResult:
    """Compute the exact eccentricity distribution with IFECC.

    This is the library's headline entry point — the index-free, exact,
    ``O(m + n)``-space algorithm of the paper with its recommended
    ``r = 1`` default.  ``backend``/``workers`` select the traversal
    backend for batched probes (results are backend-independent).

    Examples
    --------
    >>> from repro.graph.generators import paper_example_graph
    >>> result = compute_eccentricities(paper_example_graph())
    >>> result.radius, result.diameter
    (3, 5)
    """
    engine = IFECC(
        graph,
        num_references=num_references,
        strategy=strategy,
        seed=seed,
        counter=counter,
        backend=backend,
        workers=workers,
    )
    return engine.run()


def eccentricities_per_component(
    graph: Graph,
    num_references: int = 1,
    strategy: str = "degree",
    seed: int = 0,
) -> EccentricityResult:
    """IFECC on each connected component (paper footnote 2).

    Eccentricities are taken within each vertex's component; isolated
    vertices get eccentricity 0.
    """
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int32)
    counter = TraversalCounter()
    watch = Stopwatch()
    num_refs_used: List[int] = []
    for subgraph, original_ids in split_components(graph):
        if subgraph.num_vertices == 1:
            ecc[original_ids] = 0
            continue
        result = compute_eccentricities(
            subgraph,
            num_references=num_references,
            strategy=strategy,
            seed=seed,
            counter=counter,
        )
        ecc[original_ids] = result.eccentricities
        num_refs_used.extend(
            int(original_ids[z]) for z in result.reference_nodes
        )
    elapsed = watch.elapsed()
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm=f"IFECC-{num_references}(per-component)",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        reference_nodes=np.asarray(num_refs_used, dtype=np.int32),
        counter=counter,
    )
