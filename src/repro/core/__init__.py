"""The paper's primary contribution: IFECC, kIFECC, and their machinery.

Module map — how the metric-generic solver core fits together:

``oracles``
    The :class:`~repro.core.oracles.DistanceOracle` protocol ("give me
    single-source distances + an eccentricity") and its unweighted
    implementation :class:`~repro.core.oracles.BFSOracle`.  The weighted
    and directed oracles live with their metrics
    (:class:`repro.weighted.dijkstra.DijkstraOracle`,
    :class:`repro.directed.traversal.DirectedBFSOracle`).
``solver``
    :class:`~repro.core.solver.EccentricitySolver` — the single generic
    Algorithm-2 loop (reference selection → FFO → territories →
    Lemma 3.1/3.3 tightening → anytime snapshots), parameterised over an
    oracle.
``bounds``
    Dtype-generic :class:`~repro.core.bounds.BoundState`: Lemma 3.1/3.3
    updates, the tolerance-aware ``bounds_met`` comparison, and the
    directed reverse-distance hook.
``ffo``
    Farthest-first node orders (Section 3.2), metric-generic.
``ifecc`` / ``kifecc``
    The paper's algorithms as thin instantiations of the solver over
    :class:`BFSOracle` (bit-identical to the pre-unification code).
``extremes``
    Radius/diameter-only early termination, generic over oracles.
``reference``
    Reference-selection strategies (degree / random / center).
``framework`` / ``probes`` / ``stratify`` / ``result``
    The Section 3 BFS-framework with pluggable selectors, probe-number
    analysis, the F1/F2 stratification theory of Section 5, and the
    shared result dataclasses.

High-level entry points:

* :func:`repro.core.ifecc.compute_eccentricities` — exact ED via IFECC;
* :func:`repro.core.kifecc.approximate_eccentricities` — anytime kIFECC;
* :func:`repro.core.stratify.stratify` — the F1/F2 theory of Section 5.
"""

from repro.core.bounds import INFINITE_ECC, BoundState
from repro.core.extremes import (
    ExtremesResult,
    oracle_radius_and_diameter,
    radius_and_diameter,
)
from repro.core.ffo import (
    FarthestFirstOrder,
    compute_ffo,
    compute_ffos,
    farthest_first_order,
)
from repro.core.framework import (
    AlternatingBoundSelector,
    BFSFramework,
    DegreeSelector,
    FFOSelector,
    LargestGapSelector,
    RandomSelector,
)
from repro.core.ifecc import (
    IFECC,
    compute_eccentricities,
    eccentricities_per_component,
)
from repro.core.kifecc import approximate_eccentricities, kifecc_sweep
from repro.core.oracles import BFSOracle, DistanceOracle
from repro.core.probes import ProbeProfile, probe_numbers
from repro.core.result import EccentricityResult, ProgressSnapshot
from repro.core.solver import EccentricitySolver, Territory
from repro.core.stratify import (
    Stratification,
    approximate_via_f2,
    exact_via_f1,
    stratify,
)

__all__ = [
    "INFINITE_ECC",
    "BoundState",
    "ExtremesResult",
    "radius_and_diameter",
    "oracle_radius_and_diameter",
    "FarthestFirstOrder",
    "compute_ffo",
    "compute_ffos",
    "farthest_first_order",
    "BFSFramework",
    "AlternatingBoundSelector",
    "DegreeSelector",
    "FFOSelector",
    "LargestGapSelector",
    "RandomSelector",
    "IFECC",
    "compute_eccentricities",
    "eccentricities_per_component",
    "approximate_eccentricities",
    "kifecc_sweep",
    "DistanceOracle",
    "BFSOracle",
    "EccentricitySolver",
    "Territory",
    "ProbeProfile",
    "probe_numbers",
    "EccentricityResult",
    "ProgressSnapshot",
    "Stratification",
    "stratify",
    "exact_via_f1",
    "approximate_via_f2",
]
