"""The paper's primary contribution: IFECC, kIFECC, and their machinery.

High-level entry points:

* :func:`repro.core.ifecc.compute_eccentricities` — exact ED via IFECC;
* :func:`repro.core.kifecc.approximate_eccentricities` — anytime kIFECC;
* :func:`repro.core.stratify.stratify` — the F1/F2 theory of Section 5.
"""

from repro.core.bounds import INFINITE_ECC, BoundState
from repro.core.extremes import ExtremesResult, radius_and_diameter
from repro.core.ffo import FarthestFirstOrder, compute_ffo, farthest_first_order
from repro.core.framework import (
    AlternatingBoundSelector,
    BFSFramework,
    DegreeSelector,
    FFOSelector,
    LargestGapSelector,
    RandomSelector,
)
from repro.core.ifecc import (
    IFECC,
    compute_eccentricities,
    eccentricities_per_component,
)
from repro.core.kifecc import approximate_eccentricities, kifecc_sweep
from repro.core.probes import ProbeProfile, probe_numbers
from repro.core.result import EccentricityResult, ProgressSnapshot
from repro.core.stratify import (
    Stratification,
    approximate_via_f2,
    exact_via_f1,
    stratify,
)

__all__ = [
    "INFINITE_ECC",
    "BoundState",
    "ExtremesResult",
    "radius_and_diameter",
    "FarthestFirstOrder",
    "compute_ffo",
    "farthest_first_order",
    "BFSFramework",
    "AlternatingBoundSelector",
    "DegreeSelector",
    "FFOSelector",
    "LargestGapSelector",
    "RandomSelector",
    "IFECC",
    "compute_eccentricities",
    "eccentricities_per_component",
    "approximate_eccentricities",
    "kifecc_sweep",
    "ProbeProfile",
    "probe_numbers",
    "EccentricityResult",
    "ProgressSnapshot",
    "Stratification",
    "stratify",
    "exact_via_f1",
    "approximate_via_f2",
]
