"""Farthest-First Node Orders (FFO) — Section 3.2.

The FFO of a node ``z`` is the reverse-BFS order
``L^z = <v_1, v_2, ..., v_n = z>`` with
``dist(z, v_1) >= dist(z, v_2) >= ... >= dist(z, v_n) = 0``.

PLLECC probes distances along a vertex's (approximate) FFO so bounds close
quickly; IFECC turns the same order into the *BFS source priority order* of
the BFS-framework.  Ties are broken by ascending vertex id so every run is
reproducible (the paper leaves tie order unspecified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import Graph
from repro.graph.engine import BFSEngine, engine_for
from repro.graph.traversal import TraversalCounter
from repro.sentinels import unreached_mask

__all__ = [
    "FarthestFirstOrder",
    "farthest_first_order",
    "compute_ffo",
    "compute_ffos",
]


@dataclass(frozen=True)
class FarthestFirstOrder:
    """The FFO of one reference node.

    The order is metric-generic: ``distances`` may be ``int32`` hop
    counts or ``float64`` weighted distances; eccentricity values keep
    the metric's numeric type (python ``int`` for hop metrics, ``float``
    for weighted ones).

    Attributes
    ----------
    source:
        The node ``z`` the order belongs to.
    order:
        ``int32`` vertex ids sorted by non-increasing distance from ``z``
        (unreachable vertices are excluded; ``z`` itself is last).
    distances:
        Full distance vector from ``z`` (the metric's unreached sentinel
        marks other components).
    eccentricity:
        ``ecc(z)``, i.e. ``distances[order[0]]``.
    """

    source: int
    order: np.ndarray
    distances: np.ndarray
    eccentricity: float

    def __len__(self) -> int:
        return len(self.order)

    def distance_of_rank(self, rank: int) -> float:
        """``dist(v_rank, z)`` for 0-based ``rank``; 0 past the end.

        The "past the end" convention feeds Lemma 3.3: once every node has
        been probed the unprobed tail contributes nothing.
        """
        if rank >= len(self.order):
            return 0
        return self.distances[self.order[rank]].item()

    def prefix(self, count: int) -> np.ndarray:
        """The first ``count`` nodes of the order (the FFO "front")."""
        return self.order[:count]


def farthest_first_order(
    distances: np.ndarray, source: int
) -> FarthestFirstOrder:
    """Build a :class:`FarthestFirstOrder` from a precomputed distance
    vector (ties broken by ascending id).

    Works for any metric: reachability is decided by the dtype's
    sentinel (``-1`` for hop counts, ``inf`` for weighted distances) and
    the sort key stays in the metric's own numeric domain.

    :dtype order: int32
    """
    reachable = np.flatnonzero(~unreached_mask(distances))
    key = distances[reachable]
    if not np.issubdtype(key.dtype, np.floating):
        # Negating int32 hop counts in int64 avoids overflow at the edge.
        key = key.astype(np.int64)
    # Stable sort on ascending id, keyed by descending distance.
    order = reachable[np.argsort(-key, kind="stable")].astype(np.int32)
    ecc = distances[order[0]].item() if len(order) else 0
    return FarthestFirstOrder(
        source=source,
        order=order,
        distances=distances,
        eccentricity=ecc,
    )


def compute_ffo(
    graph: Graph,
    source: int,
    counter: Optional[TraversalCounter] = None,
    engine: Optional[BFSEngine] = None,
) -> FarthestFirstOrder:
    """Run one BFS from ``source`` and return its FFO (Algorithm 2, line 4).

    ``engine`` lets callers that run many traversals (IFECC's sweep)
    reuse one pooled-workspace engine; the FFO retains the distance
    vector, so it is copied out of the pooled buffer.

    :mutates engine: the run clobbers its pooled distance buffer, so any
        outstanding loan from a previous ``engine.run`` goes stale.
    """
    if engine is None:
        engine = engine_for(graph)
    distances = engine.run(source, counter=counter).copy()
    return farthest_first_order(distances, source)


def compute_ffos(
    graph: Graph,
    sources: Sequence[int],
    counter: Optional[TraversalCounter] = None,
) -> List[FarthestFirstOrder]:
    """FFOs for many references from one batched distance sweep.

    Equivalent to ``[compute_ffo(graph, z) for z in sources]`` but the
    traversals share bit-parallel MS-BFS lane sweeps
    (:func:`repro.graph.msengine.batch_distance_rows`) — the multi-
    reference seeding step of Algorithm 2 pays one sweep per lane group
    instead of one BFS per reference.  Each FFO owns its distance row.
    """
    from repro.graph.msengine import batch_distance_rows

    src = np.ascontiguousarray(sources, dtype=np.int64)
    rows = batch_distance_rows(graph, src, counter=counter)
    return [
        farthest_first_order(rows[i], int(src[i]))
        for i in range(len(src))
    ]
