"""The abstract BFS-framework (Section 3.1).

Every exact or approximate ED algorithm the paper surveys fits the same
loop:

1. initialise ``ecc_lower = 0``, ``ecc_upper = +inf`` for all vertices;
2. pick source vertices ``S`` — collectively, or one at a time by a
   priority rule;
3. BFS from each source ``t``; the BFS yields ``ecc(t)`` exactly and
   Lemma 3.1 tightens every other vertex's bounds; stop when all bounds
   have met (exact) or the budget runs out (approximate).

:class:`BFSFramework` implements the loop; a :class:`SourceSelector`
supplies step 2.  The classic heuristics from the literature ship here:

* :class:`LargestGapSelector` — Henderson's OPEX rule (largest
  upper-lower gap first);
* :class:`AlternatingBoundSelector` — Takes & Kosters' rule (alternate
  between the unresolved vertex of smallest lower bound and of largest
  upper bound, degree as tie-break) — this instance *is* the BoundECC
  baseline;
* :class:`RandomSelector` — uniformly random unresolved vertex;
* :class:`DegreeSelector` — highest-degree unresolved vertex first.

IFECC is the discovery that the right priority order is the reference
node's FFO; it is implemented natively in :mod:`repro.core.ifecc` (its
Lemma 3.3 territory cap does not fit the per-vertex selector interface),
but :class:`FFOSelector` is provided to demonstrate conformance: plugging
it into this framework yields the same BFS sequence as IFECC-1 without
the tail cap.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.core.bounds import BoundState
from repro.core.ffo import compute_ffo
from repro.core.result import EccentricityResult
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter, eccentricity_and_distances
from repro.obs.trace import Stopwatch

__all__ = [
    "SourceSelector",
    "LargestGapSelector",
    "AlternatingBoundSelector",
    "RandomSelector",
    "DegreeSelector",
    "FFOSelector",
    "BFSFramework",
]


class SourceSelector(Protocol):
    """Strategy interface for step 2 of the BFS-framework."""

    def select(self, graph: Graph, bounds: BoundState) -> Optional[int]:
        """Return the next BFS source, or ``None`` when done.

        Implementations must return an *unresolved* vertex; returning
        ``None`` with unresolved vertices remaining aborts the run as
        non-exact.
        """
        ...  # pragma: no cover


def _unresolved(bounds: BoundState) -> np.ndarray:
    return np.flatnonzero(bounds.lower != bounds.upper)


class LargestGapSelector:
    """Henderson's rule: the vertex with the largest bound gap."""

    def select(self, graph: Graph, bounds: BoundState) -> Optional[int]:
        candidates = _unresolved(bounds)
        if len(candidates) == 0:
            return None
        gaps = bounds.gap()[candidates]
        return int(candidates[np.argmax(gaps)])


class AlternatingBoundSelector:
    """Takes & Kosters' rule (the BoundECC strategy).

    Alternates between the unresolved vertex with the smallest lower
    bound (candidate graph-center, whose BFS pulls upper bounds down) and
    the one with the largest upper bound (candidate periphery, whose BFS
    pushes lower bounds up).  Ties are broken by larger degree, then by
    smaller id, as in the reference implementation.
    """

    def __init__(self) -> None:
        self._pick_small_lower = True

    def select(self, graph: Graph, bounds: BoundState) -> Optional[int]:
        candidates = _unresolved(bounds)
        if len(candidates) == 0:
            return None
        degrees = graph.degrees[candidates]
        if self._pick_small_lower:
            key = bounds.lower[candidates].astype(np.int64)
            ranking = np.lexsort((candidates, -degrees, key))
        else:
            key = -bounds.upper[candidates].astype(np.int64)
            ranking = np.lexsort((candidates, -degrees, key))
        self._pick_small_lower = not self._pick_small_lower
        return int(candidates[ranking[0]])


class RandomSelector:
    """Uniformly random unresolved vertex (the sampling baselines)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def select(self, graph: Graph, bounds: BoundState) -> Optional[int]:
        candidates = _unresolved(bounds)
        if len(candidates) == 0:
            return None
        return int(candidates[self._rng.integers(0, len(candidates))])


class DegreeSelector:
    """Highest-degree unresolved vertex first."""

    def select(self, graph: Graph, bounds: BoundState) -> Optional[int]:
        candidates = _unresolved(bounds)
        if len(candidates) == 0:
            return None
        degrees = graph.degrees[candidates]
        ranking = np.lexsort((candidates, -degrees))
        return int(candidates[ranking[0]])


class FFOSelector:
    """IFECC's priority order expressed as a framework selector.

    Walks the FFO of the highest-degree vertex front-to-back, skipping
    already-resolved vertices; falls back to any unresolved vertex once
    the order is exhausted (cannot happen on connected graphs, where the
    order covers V).
    """

    def __init__(self) -> None:
        self._order: Optional[np.ndarray] = None
        self._cursor = 0

    def select(self, graph: Graph, bounds: BoundState) -> Optional[int]:
        if self._order is None:
            z = graph.max_degree_vertex()
            ffo = compute_ffo(graph, z)
            # The reference BFS itself is performed by the framework when
            # it selects z; put z first, then the farthest-first order.
            self._order = np.concatenate(
                ([z], ffo.order[ffo.order != z])
            ).astype(np.int64)
        while self._cursor < len(self._order):
            v = int(self._order[self._cursor])
            self._cursor += 1
            if bounds.lower[v] != bounds.upper[v]:
                return v
        remaining = _unresolved(bounds)
        return int(remaining[0]) if len(remaining) else None


class BFSFramework:
    """Generic driver for bound-based ED computation (Section 3.1)."""

    def __init__(
        self,
        graph: Graph,
        selector: SourceSelector,
        counter: Optional[TraversalCounter] = None,
    ) -> None:
        if graph.num_vertices == 0:
            raise InvalidParameterError("graph must have at least one vertex")
        self.graph = graph
        self.selector = selector
        self.counter = counter if counter is not None else TraversalCounter()
        self.bounds = BoundState(graph.num_vertices)

    def run(
        self,
        max_bfs: Optional[int] = None,
        algorithm: str = "BFS-framework",
    ) -> EccentricityResult:
        """Iterate select-BFS-update until resolved or out of budget."""
        watch = Stopwatch()
        exact = True
        while not self.bounds.all_resolved():
            if max_bfs is not None and self.counter.bfs_runs >= max_bfs:
                exact = False
                break
            source = self.selector.select(self.graph, self.bounds)
            if source is None:
                exact = self.bounds.all_resolved()
                break
            ecc_s, dist_s = eccentricity_and_distances(
                self.graph, source, counter=self.counter
            )
            self.bounds.set_exact(source, ecc_s)
            self.bounds.apply_lemma31(dist_s, ecc_s)
        elapsed = watch.elapsed()
        ecc = self.bounds.lower.copy()
        return EccentricityResult(
            eccentricities=ecc,
            lower=self.bounds.lower.copy(),
            upper=self.bounds.upper.copy(),
            exact=exact and self.bounds.all_resolved(),
            algorithm=algorithm,
            num_bfs=self.counter.bfs_runs,
            elapsed_seconds=elapsed,
            counter=self.counter,
        )
