"""Eccentricity bound maintenance (Lemmas 3.1 and 3.3), metric-generic.

Every algorithm under the BFS-framework keeps, for each vertex ``v``, a
lower bound ``ecc_lower[v]`` and an upper bound ``ecc_upper[v]`` on
``ecc(v)``, initialised to ``0`` and ``+inf`` (Section 3.1 step 1).  After a
traversal from a source ``t`` with known ``ecc(t)`` and distance vector
``dist(t, .)``, the triangle inequalities of Lemma 3.1 tighten the bounds
of every other vertex:

.. math::

    ecc(v) \\le dist(v, t) + ecc(t)

    ecc(v) \\ge \\max\\{dist(v, t),\\; ecc(t) - dist(t, v)\\}

When distance probing follows a farthest-first node order ``L^z`` of a
reference node ``z``, Lemma 3.3 additionally caps ``ecc(v)`` by what the
*unprobed tail* of the order can contribute:

.. math::

    ecc(v) \\le \\max\\{\\underline{ecc}(v),\\;
                       dist(v_{next}, z) + dist(v, z)\\}

where ``v_next`` is the first unprobed node.  (The paper states the lemma
with the last probed node ``v_i``; using the next unprobed node is the
slightly tighter variant the paper's own Example 3.4 traces, and is valid
by the same proof since every unprobed node ``u`` has
``dist(u, z) <= dist(v_next, z)``.)

Both lemmas are pure triangle inequalities, so they hold for *any*
shortest-path metric — unweighted hops, non-negative edge weights, and
directed reachability alike (Dragan et al.'s certificate view).  A
:class:`BoundState` is therefore parameterised by

* ``dtype`` — ``int32`` hop counts (the paper's setting) or ``float64``
  weighted distances;
* ``tolerance`` — the slack used by every bound comparison.  Integer
  metrics use the exact ``0`` default; float metrics pass an absolute
  tolerance (distances are sums of ``float64`` weights) and every
  "have the bounds met?" question goes through the single
  :meth:`BoundState.bounds_met` helper;
* for *directed* (asymmetric) metrics, ``dist(v, t) != dist(t, v)`` in
  general, so the Lemma 3.1 update methods accept the reverse-distance
  vector separately (``dist_from``); symmetric callers omit it.

Bound arrays are updated with whole-array numpy operations only, and the
core invariant ``lower <= upper (+ tolerance)`` is re-checked on every
update.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import InvalidParameterError
from repro.sentinels import INFINITE_ECC, infinity_for, unreached_mask

__all__ = ["INFINITE_ECC", "BoundState", "lemma31_lower", "lemma31_upper"]

#: Numeric scalar accepted wherever an eccentricity value is expected.
Numeric = Union[int, float]


def lemma31_lower(dist_to_t: np.ndarray, ecc_t: Numeric) -> np.ndarray:
    """Element-wise Lemma 3.1 lower bound: max(dist, ecc(t) - dist)."""
    return np.maximum(dist_to_t, ecc_t - dist_to_t)


def lemma31_upper(dist_to_t: np.ndarray, ecc_t: Numeric) -> np.ndarray:
    """Element-wise Lemma 3.1 upper bound: dist + ecc(t)."""
    return dist_to_t + ecc_t


class BoundState:
    """Mutable lower/upper eccentricity bounds for all vertices.

    Parameters
    ----------
    num_vertices:
        Size of the bound vectors.
    dtype:
        Bound-array dtype — ``int32`` (default, unweighted/directed hop
        metrics) or ``float64`` (weighted distances).
    tolerance:
        Absolute comparison slack used by :meth:`bounds_met` and every
        consistency check.  ``0`` (default) gives exact integer
        comparison; float metrics pass e.g. ``1e-9``.
    infinity:
        The "+infinity" initial upper bound.  Defaults to the dtype's
        canonical sentinel (``2**30`` for integers, ``inf`` for floats).

    Notes
    -----
    The class enforces the core invariant ``lower <= upper + tolerance``
    on every update; a violation means the caller fed inconsistent
    distances and is reported as :class:`InvalidParameterError` rather
    than silently producing a wrong eccentricity.
    """

    __slots__ = ("lower", "upper", "tolerance", "infinity", "_dtype")

    def __init__(
        self,
        num_vertices: int,
        dtype: "np.typing.DTypeLike" = np.int32,
        tolerance: float = 0.0,
        infinity: Optional[Numeric] = None,
    ) -> None:
        if num_vertices < 0:
            raise InvalidParameterError("num_vertices must be non-negative")
        if tolerance < 0:
            raise InvalidParameterError("tolerance must be non-negative")
        self._dtype = np.dtype(dtype)
        self.tolerance = float(tolerance)
        self.infinity = (
            infinity if infinity is not None else infinity_for(self._dtype)
        )
        self.lower = np.zeros(num_vertices, dtype=self._dtype)
        self.upper = np.full(num_vertices, self.infinity, dtype=self._dtype)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.lower)

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def bounds_met(
        self,
        lower: Union[np.ndarray, Numeric],
        upper: Union[np.ndarray, Numeric],
    ) -> Union[np.ndarray, np.bool_]:
        """The one "have these bounds met?" comparison, tolerance-aware.

        Every resolution test in the solver core — scalar or
        whole-array — routes through this helper so integer metrics get
        exact comparison (``tolerance == 0`` with ``lower <= upper``
        invariant reduces it to equality) and float metrics get the
        documented absolute-tolerance comparison, in one place.
        """
        return upper - lower <= self.tolerance  # type: ignore[operator]

    def resolved_mask(self) -> np.ndarray:
        """Boolean mask of vertices whose bounds have met."""
        return np.asarray(self.bounds_met(self.lower, self.upper))

    def unresolved_subset(self, subset: np.ndarray) -> np.ndarray:
        """The members of ``subset`` whose bounds have not met yet."""
        met = np.asarray(self.bounds_met(self.lower[subset], self.upper[subset]))
        return subset[~met]

    def num_resolved(self) -> int:
        """Number of vertices with matching bounds."""
        return int(np.count_nonzero(self.resolved_mask()))

    def all_resolved(self) -> bool:
        return self.num_resolved() == self.num_vertices

    def gap(self) -> np.ndarray:
        """Per-vertex ``upper - lower`` gap, widened to avoid overflow.

        :dtype gap: int64
        """
        if np.issubdtype(self._dtype, np.floating):
            return self.upper.astype(np.float64) - self.lower.astype(
                np.float64
            )
        return self.upper.astype(np.int64) - self.lower.astype(np.int64)

    def eccentricities(self) -> np.ndarray:
        """The exact eccentricities; requires all bounds resolved."""
        if not self.all_resolved():
            raise InvalidParameterError(
                "bounds are not all resolved; eccentricities are not final"
            )
        return self.lower.copy()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def set_exact(self, vertex: int, value: Numeric) -> None:
        """Pin one vertex's eccentricity (e.g. after its own traversal)."""
        self._check_consistent(
            bool(
                self.lower[vertex] - self.tolerance
                <= value
                <= self.upper[vertex] + self.tolerance
            ),
            f"exact ecc {value} outside current bounds of vertex {vertex}",
        )
        self.lower[vertex] = value
        self.upper[vertex] = value

    def apply_lemma31(
        self,
        dist_to_t: np.ndarray,
        ecc_t: Numeric,
        dist_from_t: Optional[np.ndarray] = None,
    ) -> None:
        """Tighten all bounds after a traversal of ``t`` (Lemma 3.1).

        ``dist_to_t`` holds ``dist(v, t)`` — the distances *into* the
        source, which drive both the lower bound ``ecc(v) >= dist(v, t)``
        and the upper bound ``ecc(v) <= dist(v, t) + ecc(t)``.  For
        symmetric metrics it equals ``dist(t, v)`` and the second lower
        bound ``ecc(v) >= ecc(t) - dist(t, v)`` uses the same vector;
        directed callers pass the forward-distance vector ``dist(t, .)``
        as ``dist_from_t``.  Unreachable entries are left untouched.
        """
        reachable = ~unreached_mask(dist_to_t)
        dist = dist_to_t.astype(self._dtype)
        if dist_from_t is None:
            lower_candidate = lemma31_lower(dist, ecc_t)
        else:
            lower_candidate = np.maximum(
                dist, ecc_t - dist_from_t.astype(self._dtype)
            )
        new_lower = np.maximum(
            self.lower, np.where(reachable, lower_candidate, 0)
        )
        new_upper = np.where(
            reachable,
            np.minimum(self.upper, lemma31_upper(dist, ecc_t)),
            self.upper,
        )
        self._check_consistent(
            bool(np.all(new_lower <= new_upper + self.tolerance)),
            "Lemma 3.1 update produced lower > upper: inconsistent distances",
        )
        self.lower = new_lower
        self.upper = new_upper

    def apply_lower_only(self, dist_to_t: np.ndarray) -> None:
        """Raise lower bounds to ``dist(v, t)`` when ``ecc(t)`` is unknown.

        Section 3.1 notes this weaker update ("if one only knows
        dist(v, t)"); kBFS-style estimators rely on it, and it is the
        *whole* per-probe lower update of the directed sweep (a backward
        BFS yields ``dist(v, t)`` but not ``ecc(t)``).
        """
        reachable = ~unreached_mask(dist_to_t)
        new_lower = np.maximum(
            self.lower,
            np.where(reachable, dist_to_t.astype(self._dtype), 0),
        )
        self._check_consistent(
            bool(np.all(new_lower <= self.upper + self.tolerance)),
            "lower-only update produced lower > upper",
        )
        self.lower = new_lower

    def apply_lemma31_subset(
        self,
        subset: np.ndarray,
        dist_subset: np.ndarray,
        ecc_t: Numeric,
        dist_from_subset: Optional[np.ndarray] = None,
    ) -> None:
        """Lemma 3.1 tightening restricted to ``subset``.

        ``dist_subset`` holds ``dist(v, t)`` aligned with ``subset`` (the
        gathered distances, not the full vector).  This is the territory
        seeding step of Algorithm 2 lines 8-9.  Directed callers pass
        the gathered forward distances ``dist(t, v)`` as
        ``dist_from_subset`` for the ``ecc(t) - dist(t, v)`` term;
        symmetric metrics omit it.

        :dtype dist: int32
        """
        dist = dist_subset.astype(self._dtype)
        if dist_from_subset is None:
            new_lower = np.maximum(
                self.lower[subset], lemma31_lower(dist, ecc_t)
            )
        else:
            new_lower = np.maximum(
                self.lower[subset],
                np.maximum(
                    dist, ecc_t - dist_from_subset.astype(self._dtype)
                ),
            )
        new_upper = np.minimum(self.upper[subset], lemma31_upper(dist, ecc_t))
        self._check_consistent(
            bool(np.all(new_lower <= new_upper + self.tolerance)),
            "Lemma 3.1 subset update produced lower > upper: "
            "inconsistent distances",
        )
        self.lower[subset] = new_lower
        self.upper[subset] = new_upper

    def raise_lower_subset(
        self,
        subset: np.ndarray,
        dist_subset: np.ndarray,
    ) -> None:
        """Raise ``lower[subset]`` to ``dist_subset`` (Lemma 3.1, lower only).

        The subset counterpart of :meth:`apply_lower_only`, used by the
        FFO sweep where only the territory's unresolved members need the
        update (Algorithm 2 line 14).

        :dtype new_lower: int32
        """
        new_lower = np.maximum(
            self.lower[subset], dist_subset.astype(self._dtype)
        )
        self._check_consistent(
            bool(np.all(new_lower <= self.upper[subset] + self.tolerance)),
            "lower-only subset update produced lower > upper",
        )
        self.lower[subset] = new_lower

    def apply_lemma33_tail(
        self,
        dist_to_z: np.ndarray,
        tail_radius: Numeric,
        subset: Optional[np.ndarray] = None,
    ) -> None:
        """Cap upper bounds by the FFO tail (Lemma 3.3).

        Parameters
        ----------
        dist_to_z:
            Distances *into* the reference node ``z`` (``dist(v, z)``;
            for symmetric metrics this is the reference's own distance
            vector).
        tail_radius:
            ``dist(v_next, z)`` for the first unprobed node of ``L^z``
            (0 when the order is exhausted).
        subset:
            Optional vertex-id array restricting the update to the
            territory ``V^z`` of ``z``; other vertices keep their bounds.
        """
        if subset is None:
            cap = np.maximum(
                self.lower, dist_to_z.astype(self._dtype) + tail_radius
            )
            new_upper = np.minimum(self.upper, cap)
            self._check_consistent(
                bool(np.all(self.lower <= new_upper + self.tolerance)),
                "Lemma 3.3 update produced lower > upper",
            )
            self.upper = new_upper
        else:
            cap = np.maximum(
                self.lower[subset],
                dist_to_z[subset].astype(self._dtype) + tail_radius,
            )
            new_upper = np.minimum(self.upper[subset], cap)
            self._check_consistent(
                bool(np.all(self.lower[subset] <= new_upper + self.tolerance)),
                "Lemma 3.3 update produced lower > upper",
            )
            self.upper[subset] = new_upper

    @staticmethod
    def _check_consistent(condition: bool, message: str) -> None:
        if not condition:
            raise InvalidParameterError(message)

    def __repr__(self) -> str:
        return (
            f"BoundState(n={self.num_vertices}, "
            f"resolved={self.num_resolved()})"
        )
