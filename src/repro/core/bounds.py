"""Eccentricity bound maintenance (Lemmas 3.1 and 3.3).

Every algorithm under the BFS-framework keeps, for each vertex ``v``, a
lower bound ``ecc_lower[v]`` and an upper bound ``ecc_upper[v]`` on
``ecc(v)``, initialised to ``0`` and ``+inf`` (Section 3.1 step 1).  After a
BFS from a source ``t`` with known ``ecc(t)`` and distance vector
``dist(t, .)``, the triangle inequalities of Lemma 3.1 tighten the bounds
of every other vertex:

.. math::

    ecc(v) \\le dist(v, t) + ecc(t)

    ecc(v) \\ge \\max\\{dist(v, t),\\; ecc(t) - dist(v, t)\\}

When distance probing follows a farthest-first node order ``L^z`` of a
reference node ``z``, Lemma 3.3 additionally caps ``ecc(v)`` by what the
*unprobed tail* of the order can contribute:

.. math::

    ecc(v) \\le \\max\\{\\underline{ecc}(v),\\;
                       dist(v_{next}, z) + dist(z, v)\\}

where ``v_next`` is the first unprobed node.  (The paper states the lemma
with the last probed node ``v_i``; using the next unprobed node is the
slightly tighter variant the paper's own Example 3.4 traces, and is valid
by the same proof since every unprobed node ``u`` has
``dist(u, z) <= dist(v_next, z)``.)

:class:`BoundState` stores both bound arrays as ``int32`` vectors and
applies all updates with whole-array numpy operations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["INFINITE_ECC", "BoundState", "lemma31_lower", "lemma31_upper"]

#: Stand-in for the +infinity initial upper bound (int32-safe).
INFINITE_ECC = np.int32(2**30)


def lemma31_lower(dist_to_t: np.ndarray, ecc_t: int) -> np.ndarray:
    """Element-wise Lemma 3.1 lower bound: max(dist, ecc(t) - dist)."""
    return np.maximum(dist_to_t, ecc_t - dist_to_t)


def lemma31_upper(dist_to_t: np.ndarray, ecc_t: int) -> np.ndarray:
    """Element-wise Lemma 3.1 upper bound: dist + ecc(t)."""
    return dist_to_t + ecc_t


class BoundState:
    """Mutable lower/upper eccentricity bounds for all vertices.

    Parameters
    ----------
    num_vertices:
        Size of the bound vectors.

    Notes
    -----
    The class enforces the core invariant ``lower <= upper`` on every
    update; a violation means the caller fed inconsistent distances and is
    reported as :class:`InvalidParameterError` rather than silently
    producing a wrong eccentricity.
    """

    __slots__ = ("lower", "upper")

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise InvalidParameterError("num_vertices must be non-negative")
        self.lower = np.zeros(num_vertices, dtype=np.int32)
        self.upper = np.full(num_vertices, INFINITE_ECC, dtype=np.int32)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.lower)

    def resolved_mask(self) -> np.ndarray:
        """Boolean mask of vertices whose bounds have met."""
        return self.lower == self.upper

    def num_resolved(self) -> int:
        """Number of vertices with matching bounds."""
        return int(np.count_nonzero(self.resolved_mask()))

    def all_resolved(self) -> bool:
        return self.num_resolved() == self.num_vertices

    def gap(self) -> np.ndarray:
        """Per-vertex ``upper - lower`` gap (``int64`` to avoid overflow)."""
        return self.upper.astype(np.int64) - self.lower.astype(np.int64)

    def eccentricities(self) -> np.ndarray:
        """The exact eccentricities; requires all bounds resolved."""
        if not self.all_resolved():
            raise InvalidParameterError(
                "bounds are not all resolved; eccentricities are not final"
            )
        return self.lower.copy()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def set_exact(self, vertex: int, value: int) -> None:
        """Pin one vertex's eccentricity (e.g. after its own BFS)."""
        self._check_consistent(
            self.lower[vertex] <= value <= self.upper[vertex],
            f"exact ecc {value} outside current bounds of vertex {vertex}",
        )
        self.lower[vertex] = value
        self.upper[vertex] = value

    def apply_lemma31(self, dist_to_t: np.ndarray, ecc_t: int) -> None:
        """Tighten all bounds after a BFS from ``t`` (Lemma 3.1).

        ``dist_to_t`` is the distance vector of the finished BFS;
        unreachable entries (``-1``) are left untouched.
        """
        reachable = dist_to_t >= 0
        dist = dist_to_t.astype(np.int32)
        new_lower = np.maximum(
            self.lower, np.where(reachable, lemma31_lower(dist, ecc_t), 0)
        )
        new_upper = np.where(
            reachable,
            np.minimum(self.upper, lemma31_upper(dist, ecc_t)),
            self.upper,
        )
        self._check_consistent(
            bool(np.all(new_lower <= new_upper)),
            "Lemma 3.1 update produced lower > upper: inconsistent distances",
        )
        self.lower = new_lower
        self.upper = new_upper

    def apply_lower_only(self, dist_to_t: np.ndarray) -> None:
        """Raise lower bounds to ``dist(v, t)`` when ``ecc(t)`` is unknown.

        Section 3.1 notes this weaker update ("if one only knows
        dist(v, t)"); kBFS-style estimators rely on it.
        """
        reachable = dist_to_t >= 0
        new_lower = np.maximum(
            self.lower, np.where(reachable, dist_to_t.astype(np.int32), 0)
        )
        self._check_consistent(
            bool(np.all(new_lower <= self.upper)),
            "lower-only update produced lower > upper",
        )
        self.lower = new_lower

    def apply_lemma31_subset(
        self,
        subset: np.ndarray,
        dist_subset: np.ndarray,
        ecc_t: int,
    ) -> None:
        """Lemma 3.1 tightening restricted to ``subset``.

        ``dist_subset`` holds ``dist(v, t)`` aligned with ``subset`` (the
        gathered distances, not the full vector).  This is the territory
        seeding step of Algorithm 2 lines 8-9.

        :dtype dist: int32
        """
        dist = dist_subset.astype(np.int32)
        new_lower = np.maximum(self.lower[subset], lemma31_lower(dist, ecc_t))
        new_upper = np.minimum(self.upper[subset], lemma31_upper(dist, ecc_t))
        self._check_consistent(
            bool(np.all(new_lower <= new_upper)),
            "Lemma 3.1 subset update produced lower > upper: "
            "inconsistent distances",
        )
        self.lower[subset] = new_lower
        self.upper[subset] = new_upper

    def raise_lower_subset(
        self,
        subset: np.ndarray,
        dist_subset: np.ndarray,
    ) -> None:
        """Raise ``lower[subset]`` to ``dist_subset`` (Lemma 3.1, lower only).

        The subset counterpart of :meth:`apply_lower_only`, used by the
        FFO sweep where only the territory's unresolved members need the
        update (Algorithm 2 line 14).

        :dtype new_lower: int32
        """
        new_lower = np.maximum(
            self.lower[subset], dist_subset.astype(np.int32)
        )
        self._check_consistent(
            bool(np.all(new_lower <= self.upper[subset])),
            "lower-only subset update produced lower > upper",
        )
        self.lower[subset] = new_lower

    def apply_lemma33_tail(
        self,
        dist_to_z: np.ndarray,
        tail_radius: int,
        subset: Optional[np.ndarray] = None,
    ) -> None:
        """Cap upper bounds by the FFO tail (Lemma 3.3).

        Parameters
        ----------
        dist_to_z:
            Distance vector from the reference node ``z``.
        tail_radius:
            ``dist(v_next, z)`` for the first unprobed node of ``L^z``
            (0 when the order is exhausted).
        subset:
            Optional vertex-id array restricting the update to the
            territory ``V^z`` of ``z``; other vertices keep their bounds.
        """
        if subset is None:
            cap = np.maximum(
                self.lower, dist_to_z.astype(np.int32) + tail_radius
            )
            new_upper = np.minimum(self.upper, cap)
            self._check_consistent(
                bool(np.all(self.lower <= new_upper)),
                "Lemma 3.3 update produced lower > upper",
            )
            self.upper = new_upper
        else:
            cap = np.maximum(
                self.lower[subset],
                dist_to_z[subset].astype(np.int32) + tail_radius,
            )
            new_upper = np.minimum(self.upper[subset], cap)
            self._check_consistent(
                bool(np.all(self.lower[subset] <= new_upper)),
                "Lemma 3.3 update produced lower > upper",
            )
            self.upper[subset] = new_upper

    @staticmethod
    def _check_consistent(condition: bool, message: str) -> None:
        if not condition:
            raise InvalidParameterError(message)

    def __repr__(self) -> str:
        return (
            f"BoundState(n={self.num_vertices}, "
            f"resolved={self.num_resolved()})"
        )
