"""PLLECC — Li et al., *Exacting Eccentricity for Small-World Networks*
(ICDE 2018): the state-of-the-art exact baseline the paper improves on.

PLLECC runs in two stages (Algorithm 1):

* **PLLECC-PLL** — build a pruned-landmark-labeling all-pair-shortest-
  distance index (:mod:`repro.pll`).  This stage dominates: the paper
  measures it at >41x the second stage's time, with index sizes of
  190–400 GB on billion-edge graphs.
* **PLLECC-ECC** — select ``r`` high-degree reference nodes, compute each
  reference's FFO by BFS, then resolve each remaining vertex ``v`` by
  probing index distances along its closest reference's FFO, tightening
  Lemma 3.1/3.3 bounds until they meet.

The per-vertex probe loop is exactly the loop :mod:`repro.core.probes`
instruments to obtain probe numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ffo import compute_ffos
from repro.core.result import EccentricityResult
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHED, TraversalCounter
from repro.obs.trace import Stopwatch
from repro.pll.index import PLLIndex, build_pll_index

__all__ = ["PLLECCReport", "pllecc_eccentricities"]

#: Default reference-node count from the ICDE'18 paper (and Section 7.1).
DEFAULT_REFERENCES = 16


@dataclass
class PLLECCReport:
    """Result of a PLLECC run with per-stage accounting.

    Attributes
    ----------
    result:
        The eccentricity result (stage timings are broken out below;
        ``result.elapsed_seconds`` is their sum).
    pll_seconds:
        PLLECC-PLL stage wall time (index construction).
    ecc_seconds:
        PLLECC-ECC stage wall time (bounds + probing).
    index_bytes:
        Memory held by the distance index.
    index_entries:
        Total label entries in the index.
    probes:
        Number of index distance queries issued by the probe loops.
    """

    result: EccentricityResult
    pll_seconds: float
    ecc_seconds: float
    index_bytes: int
    index_entries: int
    probes: int


def pllecc_eccentricities(
    graph: Graph,
    num_references: int = DEFAULT_REFERENCES,
    index: Optional[PLLIndex] = None,
    ordering: str = "degree",
    counter: Optional[TraversalCounter] = None,
    time_budget: Optional[float] = None,
) -> PLLECCReport:
    """Exact ED with PLLECC (Algorithm 1).

    Parameters
    ----------
    graph:
        Connected input graph.
    num_references:
        ``r`` — the paper's default is 16.
    index:
        A prebuilt PLL index to reuse; when omitted the PLLECC-PLL stage
        builds one (and its time is reported in ``pll_seconds``).
    time_budget:
        Optional wall-clock cap (seconds) on the index construction —
        the analogue of the paper's 24-hour cut-off.  Raises
        :class:`repro.errors.BudgetExhaustedError` when exceeded.
    """
    if num_references < 1:
        raise InvalidParameterError("num_references must be >= 1")
    counter = counter if counter is not None else TraversalCounter()
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")

    # ------------------------------------------------------------- PLL
    pll_watch = Stopwatch()
    if index is None:
        index = build_pll_index(
            graph, ordering=ordering, time_budget=time_budget
        )
        pll_seconds = pll_watch.elapsed()
    else:
        pll_seconds = 0.0

    # ------------------------------------------------------------- ECC
    ecc_watch = Stopwatch()
    references = graph.top_degree_vertices(min(num_references, n))
    ffos = []
    for ffo in compute_ffos(graph, references, counter=counter):
        if np.any(ffo.distances == UNREACHED):
            from repro.graph.components import connected_components

            raise DisconnectedGraphError(
                connected_components(graph).num_components
            )
        ffos.append(ffo)

    lower = np.zeros(n, dtype=np.int64)
    upper = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    for idx, z in enumerate(references):
        lower[z] = upper[z] = ffos[idx].eccentricity

    ref_dists = np.stack([f.distances for f in ffos])
    owner_idx = np.argmin(ref_dists, axis=0)
    probes = 0
    ref_set = set(int(z) for z in references)
    for v in range(n):
        if v in ref_set:
            continue
        ffo = ffos[int(owner_idx[v])]
        dist_vz = int(ffo.distances[v])
        ecc_z = ffo.eccentricity
        lo = max(dist_vz, ecc_z - dist_vz)
        hi = dist_vz + ecc_z
        if lo < hi:
            for i, node in enumerate(ffo.order):
                probes += 1
                d = index.query(v, int(node))
                lo = max(lo, d)
                tail = ffo.distance_of_rank(i + 1)
                hi = min(hi, max(lo, tail + dist_vz))
                if lo == hi:
                    break
        lower[v] = lo
        upper[v] = hi
    ecc_seconds = ecc_watch.elapsed()

    exact = bool(np.all(lower == upper))
    ecc = lower.astype(np.int32)
    result = EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=upper.astype(np.int32)
        if exact
        else np.minimum(upper, np.iinfo(np.int32).max).astype(np.int32),
        exact=exact,
        algorithm=f"PLLECC-{num_references}",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=pll_seconds + ecc_seconds,
        reference_nodes=references.copy(),
        counter=counter,
    )
    return PLLECCReport(
        result=result,
        pll_seconds=pll_seconds,
        ecc_seconds=ecc_seconds,
        index_bytes=index.size_bytes(),
        index_entries=index.num_label_entries(),
        probes=probes,
    )
