"""Baseline algorithms the paper compares against.

* :func:`repro.baselines.naive.naive_eccentricities` — |V|-BFS oracle;
* :func:`repro.baselines.boundecc.boundecc_eccentricities` — Takes &
  Kosters 2013, the best prior BFS-framework method;
* :func:`repro.baselines.pllecc.pllecc_eccentricities` — the ICDE'18
  index-based state of the art (with its PLL substrate in
  :mod:`repro.pll`);
* :func:`repro.baselines.kbfs.kbfs_eccentricities` — Shun's KDD'15
  sampling estimator;
* :func:`repro.baselines.snap_diameter.snap_estimate_diameter` — SNAP's
  diameter sampling (case study).
"""

from repro.baselines.boundecc import boundecc_eccentricities
from repro.baselines.henderson import opex_eccentricities
from repro.baselines.kbfs import kbfs_eccentricities
from repro.baselines.naive import naive_eccentricities
from repro.baselines.rv_diameter import RVDiameterEstimate, rv_estimate_diameter
from repro.baselines.pllecc import PLLECCReport, pllecc_eccentricities
from repro.baselines.snap_diameter import (
    SnapDiameterEstimate,
    snap_estimate_diameter,
)

__all__ = [
    "naive_eccentricities",
    "boundecc_eccentricities",
    "opex_eccentricities",
    "rv_estimate_diameter",
    "RVDiameterEstimate",
    "pllecc_eccentricities",
    "PLLECCReport",
    "kbfs_eccentricities",
    "snap_estimate_diameter",
    "SnapDiameterEstimate",
]
