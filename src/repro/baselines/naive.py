"""The naive |V|-BFS exact baseline.

One BFS per vertex — the quadratic straw man every other algorithm is
measured against, and the simplest possible correctness oracle.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.result import EccentricityResult
from repro.graph.csr import Graph
from repro.graph.traversal import BFSCounter, eccentricity_and_distances

__all__ = ["naive_eccentricities"]


def naive_eccentricities(
    graph: Graph,
    counter: Optional[BFSCounter] = None,
) -> EccentricityResult:
    """Exact ED with one BFS per vertex (eccentricity within components).

    :dtype ecc: int32
    """
    counter = counter if counter is not None else BFSCounter()
    start = time.perf_counter()
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int32)
    for v in range(n):
        ecc[v], _dist = eccentricity_and_distances(graph, v, counter=counter)
    elapsed = time.perf_counter() - start
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm="Naive",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        counter=counter,
    )
