"""The naive |V|-BFS exact baseline.

One BFS per vertex — the quadratic straw man every other algorithm is
measured against, and the simplest possible correctness oracle.  Being
embarrassingly parallel over sources, it is also the first customer of
the process backend: ``backend="process"`` fans the full-ED sweep
across a worker pool (:mod:`repro.parallel`) with bit-identical output.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.result import EccentricityResult
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter, eccentricity_and_distances
from repro.obs.trace import Stopwatch

__all__ = ["naive_eccentricities"]


def naive_eccentricities(
    graph: Graph,
    counter: Optional[TraversalCounter] = None,
    backend: str = "numpy",
    workers: Optional[int] = None,
    traversal: str = "batch",
) -> EccentricityResult:
    """Exact ED with one BFS per vertex (eccentricity within components).

    ``backend="numpy"`` (default) runs the sweep in-process;
    ``backend="process"`` dispatches source chunks to ``workers``
    worker processes over the shared-memory CSR.  ``traversal`` picks
    the in-process sweep flavour: ``"batch"`` (default) shares
    bit-parallel MS-BFS lane sweeps via :meth:`repro.graph.engine.
    BFSEngine.ecc_batch`, ``"loop"`` keeps the historical one-BFS-per-
    vertex loop (the honest quadratic straw man for ablations).  All
    paths produce the same eccentricities bit for bit; the algorithm
    tag records which backend (and how many workers) actually ran.

    :dtype ecc: int32
    """
    if traversal not in ("batch", "loop"):
        raise InvalidParameterError(
            f"traversal must be 'batch' or 'loop', got {traversal!r}"
        )
    counter = counter if counter is not None else TraversalCounter()
    watch = Stopwatch()
    n = graph.num_vertices
    if backend == "process":
        from repro.parallel.pool import pool_for

        pool = pool_for(graph, workers=workers)
        ecc = pool.eccentricities(counter=counter)
        algorithm = f"Naive(process x{pool.workers})"
    elif traversal == "batch":
        from repro.graph.engine import engine_for

        ecc = engine_for(graph).ecc_batch(
            np.arange(n, dtype=np.int64), counter=counter
        )
        algorithm = "Naive"
    else:
        ecc = np.zeros(n, dtype=np.int32)
        for v in range(n):
            ecc[v], _dist = eccentricity_and_distances(
                graph, v, counter=counter
            )
        algorithm = "Naive"
    elapsed = watch.elapsed()
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm=algorithm,
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        counter=counter,
    )
