"""The naive |V|-BFS exact baseline.

One BFS per vertex — the quadratic straw man every other algorithm is
measured against, and the simplest possible correctness oracle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.result import EccentricityResult
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter, eccentricity_and_distances
from repro.obs.trace import Stopwatch

__all__ = ["naive_eccentricities"]


def naive_eccentricities(
    graph: Graph,
    counter: Optional[TraversalCounter] = None,
) -> EccentricityResult:
    """Exact ED with one BFS per vertex (eccentricity within components).

    :dtype ecc: int32
    """
    counter = counter if counter is not None else TraversalCounter()
    watch = Stopwatch()
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int32)
    for v in range(n):
        ecc[v], _dist = eccentricity_and_distances(graph, v, counter=counter)
    elapsed = watch.elapsed()
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm="Naive",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        counter=counter,
    )
