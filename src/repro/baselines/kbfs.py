"""kBFS — Shun, *An Evaluation of Parallel Eccentricity Estimation
Algorithms on Undirected Real-World Graphs* (KDD 2015).

The state-of-the-art approximate ED algorithm the paper compares kIFECC
against (Section 7.3).  kBFS spends its budget of ``k`` BFS runs in two
sampling stages:

1. **Random stage** — ``k/2`` sources drawn uniformly at random; their
   BFS distances raise every vertex's lower bound (Lemma 3.1).
2. **Election stage** — the remaining ``k/2`` sources are the vertices
   *farthest from the random sample* (maximum distance to their nearest
   sampled source), i.e. periphery candidates likely to realise other
   vertices' eccentricities.

The estimate for each vertex is its accumulated lower bound
``max_s max(dist(s, v), ecc(s) - dist(s, v))``.  Unlike kIFECC, each run
draws a fresh sample, so accuracy is *not* monotone in ``k`` — the
instability Figure 11 demonstrates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bounds import BoundState
from repro.core.result import EccentricityResult
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.msengine import batch_distance_rows
from repro.graph.traversal import TraversalCounter, multi_source_bfs
from repro.obs.trace import Stopwatch
from repro.sentinels import UNREACHED

__all__ = ["kbfs_eccentricities"]


def kbfs_eccentricities(
    graph: Graph,
    k: int,
    seed: int = 0,
    counter: Optional[TraversalCounter] = None,
) -> EccentricityResult:
    """Approximate the ED with ``k`` sampled BFS runs (kBFS).

    Parameters
    ----------
    graph:
        Input graph (need not be connected; estimates stay within
        components).
    k:
        Total BFS budget, split evenly between the random and election
        stages.
    seed:
        Sampling seed.  Different seeds (or different ``k``) draw
        different sources — re-running with a larger ``k`` does *not*
        extend a previous run.
    """
    if k < 1:
        raise InvalidParameterError("sample size k must be >= 1")
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    counter = counter if counter is not None else TraversalCounter()
    rng = np.random.default_rng(seed)
    watch = Stopwatch()
    bounds = BoundState(n)

    k = min(k, n)
    num_random = max(1, k // 2)
    random_sources = rng.choice(n, size=num_random, replace=False)

    # Both sampling stages draw their distance rows from shared MS-BFS
    # lane sweeps; bound updates stay in the historical per-source
    # order, so the resulting bounds are bit-identical to the loop.
    random_rows = batch_distance_rows(
        graph, random_sources.astype(np.int64), counter=counter
    )
    for i, s in enumerate(random_sources):
        dist_s = random_rows[i]
        ecc_s = int(dist_s[dist_s != UNREACHED].max())
        bounds.set_exact(int(s), ecc_s)
        bounds.apply_lemma31(dist_s, ecc_s)

    num_elected = k - num_random
    sources = list(int(s) for s in random_sources)
    if num_elected > 0:
        # One multi-source sweep scores every vertex by its distance to
        # the nearest random source; the farthest are periphery
        # candidates.  (The sweep is one extra BFS of work; the paper's
        # budget accounting is per-BFS, so we count it.)
        near_dist, _owner = multi_source_bfs(
            graph, sources, counter=counter
        )
        score = near_dist.astype(np.int64)
        score[random_sources] = -1  # never re-elect a sampled source
        elected = np.argsort(-score, kind="stable")[:num_elected]
        elected_rows = batch_distance_rows(
            graph, elected.astype(np.int64), counter=counter
        )
        for i, s in enumerate(elected):
            dist_s = elected_rows[i]
            ecc_s = int(dist_s[dist_s != UNREACHED].max())
            bounds.set_exact(int(s), ecc_s)
            bounds.apply_lemma31(dist_s, ecc_s)
            sources.append(int(s))

    elapsed = watch.elapsed()
    return EccentricityResult(
        eccentricities=bounds.lower.copy(),
        lower=bounds.lower.copy(),
        upper=bounds.upper.copy(),
        exact=bounds.all_resolved(),
        algorithm=f"kBFS(k={k})",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        reference_nodes=np.asarray(sources, dtype=np.int32),
        counter=counter,
    )
