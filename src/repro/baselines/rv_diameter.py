"""Roditty–Williams-style diameter estimation with an error bound.

Roditty & Vassilevska Williams (STOC 2013 — the paper's reference [28])
gave the sub-quadratic estimator behind the 2/3-approximation folklore:

1. sample ``s`` vertices ``S`` uniformly at random and BFS from each;
2. let ``w`` be the vertex farthest from ``S`` (max over ``v`` of
   ``min_{u in S} dist(u, v)``) and BFS from ``w`` and from the
   farthest vertex of ``w``;
3. report ``max`` of all observed eccentricities.

With ``s = Theta(sqrt(n log n))`` the estimate ``D^`` satisfies
``2/3 * dia <= D^ <= dia`` with high probability — the best possible
under SETH (the negative result the paper leans on).  We implement the
estimator faithfully; it is the "approximation *with* error bounds"
counterpart to the heuristic kBFS, rounding out the related-work
roster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import (
    TraversalCounter,
    eccentricity_and_distances,
    multi_source_bfs,
)
from repro.obs.trace import Stopwatch

__all__ = ["RVDiameterEstimate", "rv_estimate_diameter"]


@dataclass(frozen=True)
class RVDiameterEstimate:
    """Outcome of the RW sampling estimator.

    ``diameter`` is a lower bound on the true diameter; with the
    default sample size it is at least ``2/3`` of it w.h.p.
    """

    diameter: int
    sample_size: int
    hitting_vertex: int       # the vertex farthest from the sample
    num_bfs: int
    elapsed_seconds: float

    def lower_bound(self) -> int:
        """The certified lower bound (the estimate itself)."""
        return self.diameter

    def upper_bound(self) -> int:
        """The w.h.p. upper bound implied by the 2/3 guarantee."""
        return int(math.ceil(self.diameter * 3 / 2))


def rv_estimate_diameter(
    graph: Graph,
    sample_size: Optional[int] = None,
    seed: int = 0,
    counter: Optional[TraversalCounter] = None,
) -> RVDiameterEstimate:
    """Estimate the diameter with the Roditty–Williams scheme.

    ``sample_size`` defaults to ``ceil(sqrt(n log n))`` (the theory's
    choice); it is clamped to ``n``.
    """
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    if sample_size is None:
        sample_size = max(1, math.ceil(math.sqrt(n * max(1.0, math.log(n)))))
    if sample_size < 1:
        raise InvalidParameterError("sample_size must be >= 1")
    sample_size = min(sample_size, n)
    counter = counter if counter is not None else TraversalCounter()
    rng = np.random.default_rng(seed)
    watch = Stopwatch()

    sample = rng.choice(n, size=sample_size, replace=False)
    best = 0
    for u in sample:
        ecc_u, _dist = eccentricity_and_distances(
            graph, int(u), counter=counter
        )
        best = max(best, ecc_u)

    # The vertex farthest from the whole sample (one multi-source sweep).
    near_dist, _owner = multi_source_bfs(
        graph, [int(u) for u in sample], counter=counter
    )
    w = int(np.argmax(near_dist))
    ecc_w, dist_w = eccentricity_and_distances(graph, w, counter=counter)
    best = max(best, ecc_w)
    # ... and from w's farthest vertex (the classic double sweep tail).
    far = int(np.argmax(dist_w))
    ecc_far, _ = eccentricity_and_distances(graph, far, counter=counter)
    best = max(best, ecc_far)

    return RVDiameterEstimate(
        diameter=best,
        sample_size=sample_size,
        hitting_vertex=w,
        num_bfs=counter.bfs_runs,
        elapsed_seconds=watch.elapsed(),
    )
