"""BoundECC — Takes & Kosters, *Computing the Eccentricity Distribution of
Large Graphs* (Algorithms, 2013).

The strongest pre-PLLECC exact algorithm under the BFS-framework: keep
lower/upper eccentricity bounds, repeatedly BFS from a heuristically chosen
vertex, and stop when all bounds meet.  The selection heuristic alternates
between the unresolved vertex with the smallest lower bound (a candidate
center — its BFS drags upper bounds down) and the one with the largest
upper bound (a candidate periphery vertex — its BFS pushes lower bounds
up), breaking ties by degree.

The paper's experiments (Figure 8) show BoundECC trailing PLLECC by ~52x
and IFECC-1 by ~2675x on average, and timing out on STAC; our reproduction
recovers the ordering (not the constants).
"""

from __future__ import annotations

from typing import Optional

from repro.core.framework import AlternatingBoundSelector, BFSFramework
from repro.core.result import EccentricityResult
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter

__all__ = ["boundecc_eccentricities"]


def boundecc_eccentricities(
    graph: Graph,
    max_bfs: Optional[int] = None,
    counter: Optional[TraversalCounter] = None,
) -> EccentricityResult:
    """Exact ED with the Takes & Kosters bound-and-select loop.

    ``max_bfs`` optionally caps the work (the 24-hour cut-off of the
    paper's testbed translated to a BFS budget); a capped run returns
    ``exact=False`` with the current lower bounds as estimates.
    """
    framework = BFSFramework(
        graph, AlternatingBoundSelector(), counter=counter
    )
    return framework.run(max_bfs=max_bfs, algorithm="BoundECC")
