"""SNAP's sampling diameter estimator (case study, Section 7.5).

The Stanford Network Analysis Platform estimates a graph's diameter by
BFS from ``k`` vertices sampled uniformly at random and reporting the
maximum eccentricity observed (SNAP's code defaults to ``k = 1000``).

The paper's case study shows this estimator is unstable and biased low —
the vertices realising the diameter are a vanishing fraction of V
(~3.2e-6 on their four study graphs, Figure 15) — and proposes replacing
it with IFECC.  We reproduce the estimator faithfully, including its
accuracy metric ``est_diameter / true_diameter * 100``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.engine import engine_for
from repro.graph.traversal import TraversalCounter
from repro.obs.trace import Stopwatch

__all__ = ["SnapDiameterEstimate", "snap_estimate_diameter"]


@dataclass(frozen=True)
class SnapDiameterEstimate:
    """One run of the SNAP sampling estimator.

    Attributes
    ----------
    diameter:
        The estimated diameter (max eccentricity over the sample) — a
        lower bound on the true diameter.
    sample_size:
        Number of BFS sources used.
    sources:
        The sampled vertex ids.
    elapsed_seconds:
        Wall time of the run.
    """

    diameter: int
    sample_size: int
    sources: np.ndarray
    elapsed_seconds: float

    def accuracy_against(self, true_diameter: int) -> float:
        """The case study's accuracy: ``est / true * 100`` (Exp-1)."""
        if true_diameter <= 0:
            return 100.0
        return 100.0 * self.diameter / true_diameter


def snap_estimate_diameter(
    graph: Graph,
    sample_size: int = 1000,
    seed: int = 0,
    counter: Optional[TraversalCounter] = None,
) -> SnapDiameterEstimate:
    """Estimate the diameter from ``sample_size`` random BFS runs."""
    if sample_size < 1:
        raise InvalidParameterError("sample_size must be >= 1")
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    counter = counter if counter is not None else TraversalCounter()
    rng = np.random.default_rng(seed)
    sample_size = min(sample_size, n)
    sources = rng.choice(n, size=sample_size, replace=False)
    watch = Stopwatch()
    # The sample's eccentricities come from shared MS-BFS lane sweeps —
    # identical values, a fraction of the one-BFS-per-source wall time.
    ecc = engine_for(graph).ecc_batch(
        sources.astype(np.int64), counter=counter
    )
    best = int(ecc.max()) if len(ecc) else 0
    elapsed = watch.elapsed()
    return SnapDiameterEstimate(
        diameter=best,
        sample_size=sample_size,
        sources=sources.astype(np.int32),
        elapsed_seconds=elapsed,
    )
