"""OPEX — Henderson (LLNL technical report, 2011).

The earliest of the bound-based exact ED algorithms the paper surveys
(Section 6): repeatedly BFS from the unresolved vertex with the largest
gap between its eccentricity bounds.  It predates (and is dominated by)
the Takes & Kosters selection rule, but serves as the historical
baseline of the BFS-framework lineage.
"""

from __future__ import annotations

from typing import Optional

from repro.core.framework import BFSFramework, LargestGapSelector
from repro.core.result import EccentricityResult
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter

__all__ = ["opex_eccentricities"]


def opex_eccentricities(
    graph: Graph,
    max_bfs: Optional[int] = None,
    counter: Optional[TraversalCounter] = None,
) -> EccentricityResult:
    """Exact ED with Henderson's largest-gap selection rule."""
    framework = BFSFramework(graph, LargestGapSelector(), counter=counter)
    return framework.run(max_bfs=max_bfs, algorithm="OPEX")
