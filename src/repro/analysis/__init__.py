"""Analysis utilities: accuracy metrics, ED histograms, F1/F2 and
FFO-overlap statistics, and memory accounting."""

from repro.analysis.accuracy import AccuracyReport, accuracy, evaluate_estimate
from repro.analysis.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eccentricity_centrality,
)
from repro.analysis.convergence import (
    ConvergenceCurve,
    ConvergencePoint,
    track_convergence,
)
from repro.analysis.distribution import (
    EccentricityDistribution,
    distribution_from_eccentricities,
)
from repro.analysis.comparison import (
    AlgorithmRow,
    ComparisonTable,
    compare_algorithms,
)
from repro.analysis.report import GraphReport, analyze
from repro.analysis.memory import (
    MemoryFootprint,
    ifecc_footprint,
    pllecc_footprint,
)
from repro.analysis.stats import (
    FarthestSetStats,
    RepetitionPoint,
    farthest_set_statistics,
    repetition_curve,
    repetition_ratio,
)

__all__ = [
    "accuracy",
    "evaluate_estimate",
    "AccuracyReport",
    "betweenness_centrality",
    "closeness_centrality",
    "degree_centrality",
    "eccentricity_centrality",
    "ConvergenceCurve",
    "ConvergencePoint",
    "track_convergence",
    "EccentricityDistribution",
    "distribution_from_eccentricities",
    "AlgorithmRow",
    "ComparisonTable",
    "compare_algorithms",
    "GraphReport",
    "analyze",
    "MemoryFootprint",
    "ifecc_footprint",
    "pllecc_footprint",
    "FarthestSetStats",
    "RepetitionPoint",
    "farthest_set_statistics",
    "repetition_curve",
    "repetition_ratio",
]
