"""Memory accounting for the Figure 10 comparison.

The paper measures runtime resident memory; in-process, the meaningful
equivalent is the exact byte size of each algorithm's data structures:

* IFECC holds the CSR graph plus ``O(n)`` bound arrays and ``r``
  reference distance vectors (Theorem 4.5);
* PLLECC additionally holds the PLL label arrays, whose size is what
  blows past 190–400 GB on the paper's billion-edge graphs.

Reporting structure bytes rather than RSS removes interpreter noise
while preserving the quantity Figure 10 compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import Graph
from repro.pll.index import PLLIndex

__all__ = ["MemoryFootprint", "ifecc_footprint", "pllecc_footprint"]

_INT32 = 4
_INT64 = 8


@dataclass(frozen=True)
class MemoryFootprint:
    """Byte-level footprint of one algorithm on one graph."""

    algorithm: str
    graph_bytes: int
    working_bytes: int
    index_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.graph_bytes + self.working_bytes + self.index_bytes

    def ratio_to(self, other: "MemoryFootprint") -> float:
        """``self.total / other.total`` (Figure 10's headline ratio)."""
        if other.total_bytes == 0:
            return float("inf")
        return self.total_bytes / other.total_bytes

    def __str__(self) -> str:
        mib = self.total_bytes / (1024 * 1024)
        return f"{self.algorithm}: {mib:.2f} MiB (index {self.index_bytes} B)"


def ifecc_footprint(graph: Graph, num_references: int = 1) -> MemoryFootprint:
    """IFECC's footprint: graph + bounds + reference distance vectors."""
    n = graph.num_vertices
    bounds = 2 * n * _INT32              # lower + upper
    reference_vectors = num_references * n * _INT32
    return MemoryFootprint(
        algorithm=f"IFECC-{num_references}",
        graph_bytes=graph.memory_bytes(),
        working_bytes=bounds + reference_vectors,
        index_bytes=0,
    )


def pllecc_footprint(
    graph: Graph,
    index: PLLIndex,
    num_references: int = 16,
) -> MemoryFootprint:
    """PLLECC's footprint: graph + bounds + reference vectors + PLL index."""
    n = graph.num_vertices
    bounds = 2 * n * _INT64
    reference_vectors = num_references * n * _INT32
    return MemoryFootprint(
        algorithm=f"PLLECC-{num_references}",
        graph_bytes=graph.memory_bytes(),
        working_bytes=bounds + reference_vectors,
        index_bytes=index.size_bytes(),
    )
