"""Other centrality measures (paper Section 6, "Other Graph Centrality
Measures").

Eccentricity centrality is one of a family; the related work the paper
cites also uses:

* **closeness centrality** (Okamoto et al. [26]) — the inverse of the
  sum of distances to all other vertices;
* **betweenness centrality** (Newman [25]) — the fraction of shortest
  paths passing through a vertex (computed with Brandes' algorithm);
* **degree centrality** — the normalised degree.

Having them side by side lets applications compare eccentricity-based
rankings against the alternatives (e.g. the facility-placement example),
and lets us test the Section 7.4 intuition that the highest-degree
vertex approximates the eccentricity center.

All functions operate on connected components (vertices in other
components contribute nothing) and return ``float64`` arrays of length
``n``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.msbfs import multi_source_distances
from repro.graph.traversal import TraversalCounter

__all__ = [
    "degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "eccentricity_centrality",
]


def degree_centrality(graph: Graph) -> np.ndarray:
    """Degree divided by ``n - 1`` (1.0 = connected to everyone)."""
    n = graph.num_vertices
    if n <= 1:
        return np.zeros(n, dtype=np.float64)
    return graph.degrees.astype(np.float64) / (n - 1)


def closeness_centrality(
    graph: Graph,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """Classic closeness: ``(reachable - 1) / sum of distances``, scaled
    by the reachable fraction (the standard disconnected-graph
    correction), computed with MS-BFS batches.
    """
    n = graph.num_vertices
    closeness = np.zeros(n, dtype=np.float64)
    if n <= 1:
        return closeness
    batch = 64
    for start in range(0, n, batch):
        sources = np.arange(start, min(start + batch, n))
        dist = multi_source_distances(graph, sources, counter=counter)
        reachable = dist >= 0
        totals = np.where(reachable, dist, 0).sum(axis=1)
        counts = reachable.sum(axis=1) - 1  # exclude the source itself
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = np.where(totals > 0, counts / totals, 0.0)
        closeness[sources] = raw * (counts / (n - 1))
    return closeness


def betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """Exact betweenness centrality (Brandes 2001, unweighted).

    ``O(n m)`` — use on graphs of the library's benchmark scale.
    """
    n = graph.num_vertices
    betweenness = np.zeros(n, dtype=np.float64)
    indptr, indices = graph.indptr, graph.indices
    for s in range(n):
        # single-source shortest-path DAG
        sigma = np.zeros(n, dtype=np.float64)  # path counts
        dist = np.full(n, -1, dtype=np.int64)
        sigma[s] = 1.0
        dist[s] = 0
        order = []  # vertices in non-decreasing distance
        queue = deque([s])
        edges = 0
        while queue:
            u = queue.popleft()
            order.append(u)
            for pos in range(indptr[u], indptr[u + 1]):
                edges += 1
                w = int(indices[pos])
                if dist[w] == -1:
                    dist[w] = dist[u] + 1
                    queue.append(w)
                if dist[w] == dist[u] + 1:
                    sigma[w] += sigma[u]
        # dependency accumulation, reverse order
        delta = np.zeros(n, dtype=np.float64)
        for u in reversed(order):
            for pos in range(indptr[u], indptr[u + 1]):
                w = int(indices[pos])
                if dist[w] == dist[u] + 1 and sigma[w] > 0:
                    delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w])
            if u != s:
                betweenness[u] += delta[u]
        if counter is not None:
            counter.record(edges, len(order), label=f"brandes:{s}")
    betweenness /= 2.0  # undirected: each pair counted twice
    if normalized and n > 2:
        betweenness /= (n - 1) * (n - 2) / 2.0
    return betweenness


def eccentricity_centrality(
    eccentricities: np.ndarray,
) -> np.ndarray:
    """``1 / ecc(v)`` — the centrality reading of the paper's measure.

    Takes a precomputed eccentricity array (from IFECC), so the caller
    controls the algorithm and cost.
    """
    ecc = np.asarray(eccentricities, dtype=np.float64)
    if np.any(ecc < 0):
        raise InvalidParameterError("eccentricities must be non-negative")
    out = np.zeros_like(ecc)
    positive = ecc > 0
    out[positive] = 1.0 / ecc[positive]
    return out
