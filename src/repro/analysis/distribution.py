"""Eccentricity-distribution analytics (Figure 15 and Exp-3).

The *eccentricity distribution plot* maps each eccentricity value in
``[radius, diameter]`` to the number of vertices attaining it.  Its
extreme right tail — the handful of vertices whose eccentricity equals
the diameter — is why uniform sampling estimates the diameter poorly
(Exp-3 measures that tail at ~3.2e-6 of V on the study graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["EccentricityDistribution", "distribution_from_eccentricities"]


@dataclass(frozen=True)
class EccentricityDistribution:
    """Histogram of an eccentricity distribution.

    Attributes
    ----------
    values:
        Sorted distinct eccentricity values (x-axis of Figure 15).
    counts:
        ``counts[i]`` vertices have eccentricity ``values[i]``.
    """

    values: np.ndarray
    counts: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.counts.sum())

    @property
    def radius(self) -> int:
        return int(self.values[0]) if len(self.values) else 0

    @property
    def diameter(self) -> int:
        return int(self.values[-1]) if len(self.values) else 0

    def diameter_vertex_count(self) -> int:
        """Vertices whose eccentricity equals the diameter (Exp-3)."""
        return int(self.counts[-1]) if len(self.counts) else 0

    def diameter_vertex_fraction(self) -> float:
        """The probability a uniform sample realises the diameter."""
        n = self.num_vertices
        return self.diameter_vertex_count() / n if n else 0.0

    def center_vertex_count(self) -> int:
        """Vertices at the radius — the network center (Section 1)."""
        return int(self.counts[0]) if len(self.counts) else 0

    def as_series(self) -> List[Tuple[int, int]]:
        """``(eccentricity, count)`` pairs for plotting."""
        return list(zip(self.values.tolist(), self.counts.tolist()))

    def as_dict(self) -> Dict[int, int]:
        return dict(self.as_series())

    def mean(self) -> float:
        """Average eccentricity."""
        n = self.num_vertices
        if n == 0:
            return 0.0
        return float(
            (self.values.astype(np.float64) * self.counts).sum() / n
        )

    def ascii_plot(self, width: int = 50) -> str:
        """Render the histogram as ASCII bars (benchmark output)."""
        if len(self.values) == 0:
            return "(empty)"
        peak = int(self.counts.max())
        lines = []
        for value, count in self.as_series():
            bar = "#" * max(1, int(round(width * count / peak)))
            lines.append(f"ecc={value:>3}  {count:>10}  {bar}")
        return "\n".join(lines)


def distribution_from_eccentricities(
    eccentricities: np.ndarray,
) -> EccentricityDistribution:
    """Build the histogram from a per-vertex eccentricity array."""
    eccentricities = np.asarray(eccentricities)
    if eccentricities.ndim != 1:
        raise InvalidParameterError("eccentricities must be a 1-D array")
    if len(eccentricities) and eccentricities.min() < 0:
        raise InvalidParameterError("eccentricities must be non-negative")
    values, counts = np.unique(eccentricities, return_counts=True)
    return EccentricityDistribution(
        values=values.astype(np.int64), counts=counts.astype(np.int64)
    )
