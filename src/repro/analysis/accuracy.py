"""Accuracy metrics for approximate eccentricity results (Section 7).

The paper's headline metric is

    Accuracy = |{v : est(v) == ecc(v)}| / |V| * 100

(exact-match percentage).  This module adds the supporting error
statistics used in our extended analysis: mean absolute error, maximum
relative error, and the fraction of vertices within the theoretical
``[7/12, 3/2]`` band of Theorem 5.6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["AccuracyReport", "accuracy", "evaluate_estimate"]


def accuracy(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Exact-match percentage (the paper's Accuracy)."""
    estimate = np.asarray(estimate)
    truth = np.asarray(truth)
    if estimate.shape != truth.shape:
        raise InvalidParameterError("estimate/truth shape mismatch")
    if estimate.size == 0:
        return 100.0
    return 100.0 * float(np.count_nonzero(estimate == truth)) / estimate.size


@dataclass(frozen=True)
class AccuracyReport:
    """Full error profile of an approximate ED."""

    accuracy_percent: float
    mean_absolute_error: float
    max_absolute_error: int
    max_relative_error: float
    within_theorem_band: float  # fraction with 7/12 <= est/true <= 3/2

    def __str__(self) -> str:
        return (
            f"accuracy={self.accuracy_percent:.1f}% "
            f"mae={self.mean_absolute_error:.3f} "
            f"max_abs={self.max_absolute_error} "
            f"max_rel={self.max_relative_error:.3f} "
            f"band={100 * self.within_theorem_band:.1f}%"
        )


def evaluate_estimate(estimate: np.ndarray, truth: np.ndarray) -> AccuracyReport:
    """Compute the full :class:`AccuracyReport` of an estimate."""
    estimate = np.asarray(estimate, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if estimate.shape != truth.shape:
        raise InvalidParameterError("estimate/truth shape mismatch")
    if estimate.size == 0:
        return AccuracyReport(100.0, 0.0, 0, 0.0, 1.0)
    error = np.abs(estimate - truth)
    positive = truth > 0
    if positive.any():
        ratio = estimate[positive] / truth[positive]
        max_rel = float(np.max(np.abs(ratio - 1.0)))
        in_band = float(
            np.mean((ratio >= 7.0 / 12.0) & (ratio <= 1.5))
        )
    else:
        max_rel = 0.0
        in_band = 1.0
    return AccuracyReport(
        accuracy_percent=accuracy(estimate, truth),
        mean_absolute_error=float(error.mean()),
        max_absolute_error=int(error.max()),
        max_relative_error=max_rel,
        within_theorem_band=in_band,
    )
