"""One-call graph analysis reports.

:func:`analyze` bundles the library's measurements — exact ED via IFECC,
radius/diameter with witnesses, the distribution histogram, the F1/F2
stratification, and centrality summaries — into a single
:class:`GraphReport` that renders as readable text.  This is the "what
would a SNAP user want printed" surface the paper's case study motivates
(Section 7.5: "Integrating IFECC into SNAP ... is a must").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.centrality import (
    closeness_centrality,
    degree_centrality,
)
from repro.analysis.distribution import (
    EccentricityDistribution,
    distribution_from_eccentricities,
)
from repro.core.ifecc import compute_eccentricities
from repro.core.stratify import stratify
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.paths import diameter_path
from repro.obs.trace import Stopwatch

__all__ = ["GraphReport", "analyze"]


@dataclass
class GraphReport:
    """The full analysis bundle for one connected graph."""

    num_vertices: int
    num_edges: int
    radius: int
    diameter: int
    eccentricities: np.ndarray
    distribution: EccentricityDistribution
    center_vertices: np.ndarray
    peripheral_vertices: np.ndarray
    diameter_witness: List[int]
    f1_size: int
    f2_size: int
    bfs_used: int
    elapsed_seconds: float
    top_degree: List[tuple]      # (vertex, degree centrality)
    top_closeness: Optional[List[tuple]]

    def render(self, width: int = 40) -> str:
        """Human-readable multi-section text report."""
        lines = [
            "=" * 60,
            f"graph: {self.num_vertices} vertices, {self.num_edges} edges",
            f"radius {self.radius}, diameter {self.diameter} "
            f"(exact, {self.bfs_used} BFS, "
            f"{self.elapsed_seconds * 1000:.0f} ms)",
            "-" * 60,
            f"center: {len(self.center_vertices)} vertices "
            f"(e.g. {self.center_vertices[:5].tolist()})",
            f"periphery: {len(self.peripheral_vertices)} vertices attain "
            f"the diameter "
            f"({self.distribution.diameter_vertex_fraction():.2e} of V)",
            "a diameter path: "
            + " -> ".join(str(v) for v in self.diameter_witness[:12])
            + (" ..." if len(self.diameter_witness) > 12 else ""),
            "-" * 60,
            f"farthest sets (highest-degree reference): "
            f"|F1| = {self.f1_size}, |F2| = {self.f2_size}",
            "-" * 60,
            "eccentricity distribution:",
            self.distribution.ascii_plot(width=width),
            "-" * 60,
            "top-degree vertices: "
            + ", ".join(f"{v} ({c:.3f})" for v, c in self.top_degree),
        ]
        if self.top_closeness is not None:
            lines.append(
                "top-closeness vertices: "
                + ", ".join(
                    f"{v} ({c:.3f})" for v, c in self.top_closeness
                )
            )
        lines.append("=" * 60)
        return "\n".join(lines)


def analyze(
    graph: Graph,
    with_closeness: bool = False,
    top: int = 5,
) -> GraphReport:
    """Run the full analysis pipeline on a connected graph.

    ``with_closeness`` adds closeness centrality (an extra |V|-BFS
    sweep via MS-BFS — quadratic, so off by default).
    """
    if graph.num_vertices == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    watch = Stopwatch()
    result = compute_eccentricities(graph)
    ecc = result.eccentricities
    dist = distribution_from_eccentricities(ecc)
    strat = stratify(graph)
    witness = diameter_path(graph) if graph.num_vertices > 1 else [0]

    degree = degree_centrality(graph)
    order = np.argsort(-degree, kind="stable")[:top]
    top_degree = [(int(v), float(degree[v])) for v in order]

    top_close = None
    if with_closeness:
        closeness = closeness_centrality(graph)
        order = np.argsort(-closeness, kind="stable")[:top]
        top_close = [(int(v), float(closeness[v])) for v in order]

    elapsed = watch.elapsed()
    return GraphReport(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        radius=result.radius,
        diameter=result.diameter,
        eccentricities=ecc,
        distribution=dist,
        center_vertices=np.flatnonzero(ecc == result.radius),
        peripheral_vertices=np.flatnonzero(ecc == result.diameter),
        diameter_witness=witness,
        f1_size=len(strat.f1),
        f2_size=len(strat.f2),
        bfs_used=result.num_bfs,
        elapsed_seconds=elapsed,
        top_degree=top_degree,
        top_closeness=top_close,
    )
