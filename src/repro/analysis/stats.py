"""Statistical analyses from Sections 4.3 and 7.4.

* :func:`repetition_ratio` — Figure 5's measurement: how much the FFO
  *fronts* of multiple reference nodes overlap.  High overlap means
  multi-reference IFECC repeats BFS work, motivating ``r = 1``.
* :func:`farthest_set_statistics` — Figure 12's ``|F1|`` / ``|F2|``
  measurement under the highest-degree reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ffo import compute_ffos
from repro.core.stratify import stratify
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph
from repro.graph.traversal import TraversalCounter

__all__ = [
    "RepetitionPoint",
    "repetition_ratio",
    "repetition_curve",
    "FarthestSetStats",
    "farthest_set_statistics",
]


@dataclass(frozen=True)
class RepetitionPoint:
    """One x-point of Figure 5."""

    num: int            # front size per reference
    common: int         # |intersection of fronts|
    union: int          # |union of fronts|

    @property
    def ratio(self) -> float:
        """The repetition ratio |∩ D_z| / |∪ D_z|."""
        return self.common / self.union if self.union else 1.0


def repetition_ratio(
    graph: Graph,
    num: int,
    num_references: int = 16,
    counter: Optional[TraversalCounter] = None,
) -> RepetitionPoint:
    """Overlap of the first ``num`` FFO nodes across ``num_references``
    highest-degree references (one Figure 5 data point)."""
    if num < 1:
        raise InvalidParameterError("num must be >= 1")
    references = graph.top_degree_vertices(num_references)
    if len(references) == 0:
        raise InvalidParameterError("graph has no vertices")
    fronts = [
        set(int(v) for v in ffo.prefix(num))
        for ffo in compute_ffos(graph, references, counter=counter)
    ]
    common = set.intersection(*fronts)
    union = set.union(*fronts)
    return RepetitionPoint(num=num, common=len(common), union=len(union))


def repetition_curve(
    graph: Graph,
    nums: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    num_references: int = 16,
) -> List[RepetitionPoint]:
    """The full Figure 5 series (FFOs computed once, fronts sliced)."""
    references = graph.top_degree_vertices(num_references)
    ffos = compute_ffos(graph, references)
    points = []
    for num in nums:
        if num < 1:
            raise InvalidParameterError("front sizes must be >= 1")
        fronts = [set(int(v) for v in f.prefix(num)) for f in ffos]
        common = set.intersection(*fronts)
        union = set.union(*fronts)
        points.append(
            RepetitionPoint(num=num, common=len(common), union=len(union))
        )
    return points


@dataclass(frozen=True)
class FarthestSetStats:
    """Figure 12's statistics for one graph."""

    num_vertices: int
    reference: int
    eccentricity: int
    f1_size: int
    f2_size: int

    @property
    def f1_fraction(self) -> float:
        return self.f1_size / self.num_vertices if self.num_vertices else 0.0

    @property
    def f2_fraction(self) -> float:
        return self.f2_size / self.num_vertices if self.num_vertices else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.num_vertices,
            "|F1|": self.f1_size,
            "|F2|": self.f2_size,
            "|F1|/n": self.f1_fraction,
            "|F2|/n": self.f2_fraction,
        }


def farthest_set_statistics(
    graph: Graph,
    reference: Optional[int] = None,
) -> FarthestSetStats:
    """``|F1|`` and ``|F2|`` under the (default highest-degree) reference."""
    strat = stratify(graph, reference)
    return FarthestSetStats(
        num_vertices=graph.num_vertices,
        reference=strat.reference,
        eccentricity=strat.eccentricity,
        f1_size=len(strat.f1),
        f2_size=len(strat.f2),
    )
