"""Side-by-side algorithm comparison on one graph.

:func:`compare_algorithms` runs the exact-algorithm roster on a graph
and returns structured rows — the library-level engine behind the CLI's
``compare`` subcommand and a convenient harness for notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.boundecc import boundecc_eccentricities
from repro.baselines.naive import naive_eccentricities
from repro.baselines.pllecc import pllecc_eccentricities
from repro.core.ifecc import compute_eccentricities
from repro.core.result import EccentricityResult
from repro.errors import BudgetExhaustedError, InvalidParameterError
from repro.graph.csr import Graph
from repro.obs.trace import Stopwatch

__all__ = ["AlgorithmRow", "ComparisonTable", "compare_algorithms"]


@dataclass(frozen=True)
class AlgorithmRow:
    """One algorithm's outcome on the comparison graph."""

    name: str
    seconds: Optional[float]      # None = did not finish (budget)
    num_bfs: Optional[int]
    radius: Optional[int]
    diameter: Optional[int]
    exact: bool

    @property
    def finished(self) -> bool:
        return self.seconds is not None


@dataclass
class ComparisonTable:
    """All rows plus the consensus check."""

    graph_vertices: int
    graph_edges: int
    rows: List[AlgorithmRow]

    def row(self, name: str) -> AlgorithmRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise InvalidParameterError(f"no row named {name!r}")

    def fastest(self) -> AlgorithmRow:
        finished = [r for r in self.rows if r.finished]
        if not finished:
            raise InvalidParameterError("no algorithm finished")
        return min(finished, key=lambda r: r.seconds)

    def render(self) -> str:
        lines = [
            f"graph: n={self.graph_vertices} m={self.graph_edges}",
            f"{'algorithm':<12} {'time':>10} {'#BFS':>7} {'rad':>4} {'dia':>4}",
        ]
        for row in self.rows:
            if not row.finished:
                lines.append(
                    f"{row.name:<12} {'DNF':>10} {'-':>7} {'-':>4} {'-':>4}"
                )
                continue
            lines.append(
                f"{row.name:<12} {row.seconds:>9.3f}s {row.num_bfs:>7} "
                f"{row.radius:>4} {row.diameter:>4}"
            )
        return "\n".join(lines)


def compare_algorithms(
    graph: Graph,
    pllecc_budget: float = 60.0,
    boundecc_max_bfs: int = 20_000,
    include_naive: bool = False,
) -> ComparisonTable:
    """Run IFECC-1/IFECC-16/BoundECC/PLLECC (and optionally the naive
    oracle) on ``graph`` and cross-check their answers.

    Raises :class:`InvalidParameterError` if two exact finishers
    disagree (which would indicate a library bug, not a usage error —
    the check is the point of the harness).
    """
    rows: List[AlgorithmRow] = []
    reference_ecc = None

    def add(
        name: str,
        seconds: Optional[float],
        num_bfs: Optional[int],
        result: Optional[EccentricityResult],
    ) -> None:
        nonlocal reference_ecc
        if result is None:
            rows.append(AlgorithmRow(name, None, None, None, None, False))
            return
        if result.exact:
            if reference_ecc is None:
                reference_ecc = result.eccentricities
            elif not np.array_equal(result.eccentricities, reference_ecc):
                raise InvalidParameterError(
                    f"{name} disagrees with the reference eccentricities"
                )
        rows.append(
            AlgorithmRow(
                name,
                seconds,
                num_bfs,
                result.radius,
                result.diameter,
                result.exact,
            )
        )

    ifecc = compute_eccentricities(graph, num_references=1)
    add("IFECC-1", ifecc.elapsed_seconds, ifecc.num_bfs, ifecc)
    ifecc16 = compute_eccentricities(graph, num_references=16)
    add("IFECC-16", ifecc16.elapsed_seconds, ifecc16.num_bfs, ifecc16)
    bound = boundecc_eccentricities(graph, max_bfs=boundecc_max_bfs)
    if bound.exact:
        add("BoundECC", bound.elapsed_seconds, bound.num_bfs, bound)
    else:
        add("BoundECC", None, None, None)
    try:
        watch = Stopwatch()
        report = pllecc_eccentricities(
            graph, num_references=16, time_budget=pllecc_budget
        )
        add(
            "PLLECC",
            watch.elapsed(),
            report.result.num_bfs,
            report.result,
        )
    except BudgetExhaustedError:
        add("PLLECC", None, None, None)
    if include_naive:
        naive = naive_eccentricities(graph)
        add("Naive", naive.elapsed_seconds, naive.num_bfs, naive)

    return ComparisonTable(
        graph_vertices=graph.num_vertices,
        graph_edges=graph.num_edges,
        rows=rows,
    )
