"""Anytime-convergence instrumentation.

The anytime property of IFECC (Section 1, contribution 5) is about the
*trajectory*: how fast the bounds close and the estimate approaches the
exact ED as BFS traversals accumulate.  This module records that
trajectory — per-BFS resolved fraction, estimate accuracy, and bound-gap
mass — into a :class:`ConvergenceCurve` that benchmarks, examples, and
downstream monitoring dashboards can consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.ifecc import IFECC
from repro.core.solver import EccentricitySolver
from repro.errors import InvalidParameterError
from repro.graph.csr import Graph

__all__ = [
    "ConvergencePoint",
    "ConvergenceCurve",
    "track_convergence",
    "track_solver_convergence",
]


@dataclass(frozen=True)
class ConvergencePoint:
    """One sample of the anytime trajectory (after one BFS)."""

    bfs_runs: int
    resolved_fraction: float
    accuracy_percent: Optional[float]  # None when no truth supplied
    total_gap: float                   # sum of (upper - lower) bounds
    max_gap: float                     # (python int for hop metrics)


@dataclass
class ConvergenceCurve:
    """The full trajectory of one anytime run."""

    points: List[ConvergencePoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def final(self) -> ConvergencePoint:
        if not self.points:
            raise InvalidParameterError("empty convergence curve")
        return self.points[-1]

    def bfs_to_fraction(self, fraction: float) -> Optional[int]:
        """BFS count at which ``resolved_fraction`` first reached
        ``fraction`` (None if never)."""
        for point in self.points:
            if point.resolved_fraction >= fraction:
                return point.bfs_runs
        return None

    def bfs_to_accuracy(self, percent: float) -> Optional[int]:
        """BFS count at which accuracy first reached ``percent``."""
        for point in self.points:
            if (
                point.accuracy_percent is not None
                and point.accuracy_percent >= percent
            ):
                return point.bfs_runs
        return None

    def is_monotone(self) -> bool:
        """Resolved fraction and accuracy never decrease, gaps never grow."""
        fractions = [p.resolved_fraction for p in self.points]
        gaps = [p.total_gap for p in self.points]
        ok = fractions == sorted(fractions) and gaps == sorted(
            gaps, reverse=True
        )
        accs = [
            p.accuracy_percent
            for p in self.points
            if p.accuracy_percent is not None
        ]
        return ok and accs == sorted(accs)

    def as_rows(self) -> List[tuple]:
        """(bfs, resolved%, accuracy%, total_gap) tuples for tabulation."""
        return [
            (
                p.bfs_runs,
                100.0 * p.resolved_fraction,
                p.accuracy_percent,
                p.total_gap,
            )
            for p in self.points
        ]


def track_solver_convergence(
    solver: EccentricitySolver,
    truth: Optional[np.ndarray] = None,
    max_bfs: Optional[int] = None,
) -> ConvergenceCurve:
    """Record the anytime trajectory of any metric's solver.

    Works for every :class:`repro.core.oracles.DistanceOracle`
    instantiation — unweighted IFECC, the weighted Dijkstra solver and
    the directed one alike — because the trajectory only reads the
    solver's bounds and snapshots.

    Parameters
    ----------
    solver:
        A fresh (not yet run) :class:`EccentricitySolver`.
    truth:
        Optional exact eccentricities; when given, each point carries
        the Accuracy of the current lower-bound estimate.
    max_bfs:
        Optional traversal budget (None = run to the exact ED).
    """
    curve = ConvergenceCurve()
    n = solver.oracle.num_vertices
    # Cap per-vertex gaps at the oracle's finite eccentricity bound: the
    # cap is valid for vertices whose upper bound is still the +inf
    # sentinel, and the capped sum is monotone non-increasing.  Keep the
    # cap in the metric's own numeric domain so hop metrics stay exact
    # integers.
    cap = solver.oracle.gap_cap()
    if not np.issubdtype(solver.bounds.dtype, np.floating):
        cap = int(cap)
    for snapshot in solver.steps():
        gaps = np.minimum(solver.bounds.gap(), cap)
        accuracy = None
        if truth is not None:
            correct = int(np.count_nonzero(solver.bounds.lower == truth))
            accuracy = 100.0 * correct / n if n else 100.0
        curve.points.append(
            ConvergencePoint(
                bfs_runs=snapshot.bfs_runs,
                resolved_fraction=snapshot.fraction_resolved,
                accuracy_percent=accuracy,
                total_gap=gaps.sum().item() if len(gaps) else 0,
                max_gap=gaps.max().item() if len(gaps) else 0,
            )
        )
        if max_bfs is not None and snapshot.bfs_runs >= max_bfs:
            break
    return curve


def track_convergence(
    graph: Graph,
    truth: Optional[np.ndarray] = None,
    max_bfs: Optional[int] = None,
    num_references: int = 1,
    strategy: str = "degree",
    seed: int = 0,
) -> ConvergenceCurve:
    """Run IFECC and record the anytime trajectory after every BFS.

    The unweighted wrapper of :func:`track_solver_convergence` (the
    gap cap is ``n``, since any hop eccentricity is ``< n``).

    Parameters
    ----------
    graph:
        Connected input graph.
    truth:
        Optional exact eccentricities; when given, each point carries
        the Accuracy of the current lower-bound estimate.
    max_bfs:
        Optional BFS budget (None = run to the exact ED).
    """
    engine = IFECC(
        graph,
        num_references=num_references,
        strategy=strategy,
        seed=seed,
    )
    return track_solver_convergence(engine, truth=truth, max_bfs=max_bfs)
