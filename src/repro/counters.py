"""Traversal-work accounting shared by every distance oracle.

The paper compares approximate algorithms "under the same number of
BFSs" (Section 7.3) and reports exact algorithms by BFS count in the
case study (Section 7.5).  With the weighted and directed extensions
riding the same solver core, the cost unit generalises from "BFS runs"
to *traversal runs* — one Dijkstra or one backward BFS counts exactly
like one BFS, and each back-end additionally reports its own fine-
grained work (arcs expanded, arcs inspected bottom-up, Dijkstra edge
relaxations) so cross-metric comparisons stay honest.

:class:`TraversalCounter` is the meter; :data:`BFSCounter` is the
original name, kept as a deprecated alias because call sites and
benchmark reports throughout the repository (and downstream users)
still spell it that way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TraversalCounter", "BFSCounter"]


@dataclass
class TraversalCounter:
    """Counts traversal work for cost accounting, metric-generically.

    ``bfs_runs`` counts *traversals* of any kind — BFS, Dijkstra,
    forward or backward directed BFS — and keeps its historical name so
    every existing report and result field stays meaningful
    (:attr:`traversal_runs` is the modern alias).

    ``edges_scanned`` counts arcs expanded by the classic frontier
    metric; ``edges_inspected`` additionally includes the arcs that
    bottom-up levels of the direction-optimizing BFS engine examined
    while probing unvisited vertices — edges that are inspected but
    never "scanned".  For a purely top-down traversal the two are
    equal.  ``relaxations`` counts successful Dijkstra edge relaxations
    (distance improvements); it stays 0 for unweighted traversals.

    ``history`` records one label per traversal (``bfs:4``,
    ``dijkstra:7``, ``bwd:12``, ...) so tests and benchmarks can audit
    exactly which oracle ran what.
    """

    bfs_runs: int = 0
    edges_scanned: int = 0
    edges_inspected: int = 0
    vertices_visited: int = 0
    relaxations: int = 0
    history: list[str] = field(default_factory=list)

    @property
    def traversal_runs(self) -> int:
        """Metric-neutral alias for :attr:`bfs_runs`."""
        return self.bfs_runs

    def record(
        self,
        edges: int,
        vertices: int,
        label: str = "",
        inspected: Optional[int] = None,
        relaxations: int = 0,
    ) -> None:
        """Record one completed traversal.

        ``inspected`` defaults to ``edges`` (a traversal that never ran
        bottom-up inspects exactly what it scans); ``relaxations`` is
        the Dijkstra improvement count (0 for BFS).
        """
        self.bfs_runs += 1
        self.edges_scanned += edges
        self.edges_inspected += edges if inspected is None else inspected
        self.vertices_visited += vertices
        self.relaxations += relaxations
        if label:
            self.history.append(label)

    def merge(self, other: "TraversalCounter") -> None:
        """Fold another counter's totals into this one."""
        self.bfs_runs += other.bfs_runs
        self.edges_scanned += other.edges_scanned
        self.edges_inspected += other.edges_inspected
        self.vertices_visited += other.vertices_visited
        self.relaxations += other.relaxations
        self.history.extend(other.history)


# Deprecated alias — the meter predates the weighted/directed oracles,
# when every traversal really was a BFS.  The module-level __getattr__
# keeps ``repro.counters.BFSCounter`` importable for existing call
# sites, benchmarks, and pickled results, but every access now emits a
# DeprecationWarning; new code constructs :class:`TraversalCounter`.
def __getattr__(name: str) -> Any:
    if name == "BFSCounter":
        warnings.warn(
            "repro.counters.BFSCounter is a deprecated alias; "
            "use repro.counters.TraversalCounter",
            DeprecationWarning,
            stacklevel=2,
        )
        return TraversalCounter
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
