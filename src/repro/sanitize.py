"""Runtime buffer-ownership sanitizer for the pooled-kernel architecture.

The static half of the ownership story lives in
``tools/reprolint/dataflow.py`` (rules R9-R11): a dataflow analysis that
proves, at lint time, that no pooled workspace buffer escapes its
producer without a copy.  This module is the *dynamic* half — a guard
layer that re-checks the same discipline while tests run, catching what
static analysis structurally cannot see (``getattr`` tricks, data-driven
aliasing, third-party callbacks).

Design constraints, in priority order:

1. **Zero overhead when off.**  The sanitizer is disabled unless
   ``REPRO_SANITIZE=1`` is exported (or a test arms it via
   :func:`sanitized`).  Disabled, the only cost instrumented code pays
   is one attribute read and one ``is None`` branch per *kernel run* —
   never per level, never per element.  Benchmarks see the production
   code path.
2. **Diagnose, don't just crash.**  Violations raise
   :class:`repro.errors.SanitizerError` carrying the *borrow site*: the
   file, line, and function that took out the loan, plus the
   ``repro.obs`` span that was open at the time — so a stale read
   reported deep inside a solver names the traversal that invalidated
   the buffer.
3. **Loans are read-only.**  A pooled buffer handed to a caller is a
   loan: valid until the owner's next run, never writable.  Owned
   results (``.copy()``, any arithmetic) demote to plain ``ndarray``
   and carry no checks.

The enforcement points:

* :class:`WorkspaceGuard` — one per pooled workspace owner
  (``BFSEngine``, ``_LaneWorkspace``).  ``begin_run`` bumps a
  generation counter (invalidating every outstanding loan) and rejects
  re-entry mid-run; ``loan`` wraps a pooled buffer as a
  :class:`GuardedArray` stamped with the current generation.
* :class:`GuardedArray` — an ``ndarray`` view subclass that validates
  its generation on reads (indexing, ufuncs, ``np.*`` functions,
  ``.copy()``/``.astype()``/``.item()``/``.tolist()``) and refuses
  writes outright.  Results of any operation are plain arrays again.
* :func:`freeze` — wraps the immutable CSR arrays so an attempted write
  raises :class:`~repro.errors.SanitizerError` (still a ``ValueError``)
  instead of numpy's bare read-only complaint.

Known limitation: ``np.asarray(loan)`` / ``loan.view(np.ndarray)``
launder the guard silently — an ``ndarray`` subclass cannot intercept
re-viewing.  That escape is exactly what the static rule R9 covers, so
the two layers are checked against complementary blind spots.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from types import FrameType
from typing import Any, Iterator, Optional, Tuple

import numpy as np

from repro.errors import SanitizerError
from repro.obs.trace import get_tracer

__all__ = [
    "enabled",
    "enable",
    "disable",
    "sanitized",
    "guard_if_enabled",
    "assert_owned",
    "freeze",
    "BorrowSite",
    "WorkspaceGuard",
    "GuardedArray",
]

#: One-cell armed flag; mutate only through the accessors below
#: (reprolint R10 guards this via config.SHARED_STATE).
_ENABLED = [os.environ.get("REPRO_SANITIZE", "") not in ("", "0")]

#: Modules whose frames are bookkeeping, not borrowers: the capture
#: walk skips them so a borrow site names the consumer of the loan.
_INTERNAL_MODULES = frozenset(
    {__name__, "repro.graph.engine", "repro.graph.msbfs"}
)

#: ``np.*`` functions that write into their first argument; they bypass
#: ``__setitem__`` so the dispatch hook checks them explicitly.
_WRITING_FUNCTIONS = frozenset(
    {"copyto", "put", "place", "putmask", "put_along_axis"}
)


def enabled() -> bool:
    """Whether the sanitizer is armed for newly created workspaces."""
    return _ENABLED[0]


def enable() -> None:
    """Arm the sanitizer (workspaces created from now on are guarded)."""
    _ENABLED[0] = True


def disable() -> None:
    """Disarm the sanitizer; existing guards keep checking."""
    _ENABLED[0] = False


@contextmanager
def sanitized() -> Iterator[None]:
    """Arm the sanitizer for a ``with`` block (test fixture helper).

    Only workspaces *constructed inside* the block are guarded — cached
    engines built beforehand stay unguarded, so tests should build
    their graphs and engines within the context (or export
    ``REPRO_SANITIZE=1`` for the whole session).
    """
    previous = _ENABLED[0]
    _ENABLED[0] = True
    try:
        yield
    finally:
        _ENABLED[0] = previous


class BorrowSite:
    """Where a loan was taken out: caller frame plus the live obs span."""

    __slots__ = ("function", "filename", "lineno", "span_seq")

    def __init__(
        self,
        function: str,
        filename: str,
        lineno: int,
        span_seq: Optional[int],
    ) -> None:
        self.function = function
        self.filename = filename
        self.lineno = lineno
        self.span_seq = span_seq

    @classmethod
    def capture(cls) -> "BorrowSite":
        """Snapshot the first frame outside the sanitizer/kernel modules."""
        frame: Optional[FrameType] = sys._getframe(1)
        while (
            frame is not None
            and frame.f_globals.get("__name__") in _INTERNAL_MODULES
        ):
            frame = frame.f_back
        if frame is None:  # borrowed straight from kernel internals
            function, filename, lineno = "<unknown>", "<unknown>", 0
        else:
            function = frame.f_code.co_name
            filename = frame.f_code.co_filename
            lineno = frame.f_lineno
        return cls(
            function,
            filename,
            lineno,
            get_tracer().active_span_seq(),
        )

    def describe(self) -> str:
        where = f"{self.function} ({self.filename}:{self.lineno})"
        if self.span_seq is not None:
            where += f" [obs span seq={self.span_seq}]"
        return where


class WorkspaceGuard:
    """Generation counter and run bookkeeping for one pooled workspace.

    ``begin_run``/``end_run`` bracket every kernel run on the owner's
    buffers; each ``begin_run`` increments :attr:`generation`, which
    invalidates every loan stamped with an earlier value.  Re-entering
    while a run is open raises — a pooled kernel is not reentrant, by
    construction.
    """

    __slots__ = ("owner", "generation", "_running", "_run_site")

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self.generation = 0
        self._running = False
        self._run_site: Optional[BorrowSite] = None

    def begin_run(self) -> None:
        if self._running:
            prior = (
                self._run_site.describe()
                if self._run_site is not None
                else "<unknown>"
            )
            raise SanitizerError(
                f"re-entered {self.owner} while a run started at {prior} "
                f"is still in progress; pooled kernels are not reentrant"
            )
        self._running = True
        self._run_site = BorrowSite.capture()
        self.generation += 1

    def end_run(self) -> None:
        self._running = False

    # reprolint: disable=R11 (only the view's flag changes; base untouched)
    def loan(self, array: np.ndarray, label: str) -> np.ndarray:
        """A read-only :class:`GuardedArray` view valid this generation.

        The view carries the borrow site captured *now*, so a stale
        read later can report who borrowed the buffer and under which
        ``repro.obs`` span.
        """
        view = array.view(GuardedArray)
        view._repro_guard = self
        view._repro_generation = self.generation
        view._repro_label = label
        view._repro_site = BorrowSite.capture()
        view.flags.writeable = False
        return view


def guard_if_enabled(owner: str) -> Optional[WorkspaceGuard]:
    """A :class:`WorkspaceGuard` when armed, else ``None``.

    The ``None`` is what makes the disabled path free: instrumented
    kernels hold the result and test ``is None`` once per run.
    """
    return WorkspaceGuard(owner) if enabled() else None


def _demote(value: Any) -> Any:
    """Strip guard views (recursively through containers) for dispatch."""
    if isinstance(value, GuardedArray):
        return value.view(np.ndarray)
    if isinstance(value, (list, tuple)):
        return type(value)(_demote(item) for item in value)
    return value


class GuardedArray(np.ndarray):
    """A loaned (or frozen) view that validates every access.

    Reads check that the loan's generation still matches its guard's;
    writes raise unconditionally.  Any derived value — a copy, a ufunc
    result, an ``np.*`` call — is demoted to a plain ``ndarray``, so
    the guard never leaks into owned data and the checking overhead
    stays confined to direct touches of the pooled buffer.
    """

    _repro_guard: Optional[WorkspaceGuard]
    _repro_generation: int
    _repro_label: str
    _repro_site: Optional[BorrowSite]
    _repro_frozen: Optional[str]

    def __array_finalize__(self, obj: Optional[np.ndarray]) -> None:
        if self.base is not None and obj is not None:
            # A view of a guarded array is the same loan.
            self._repro_guard = getattr(obj, "_repro_guard", None)
            self._repro_generation = getattr(obj, "_repro_generation", 0)
            self._repro_label = getattr(obj, "_repro_label", "<buffer>")
            self._repro_site = getattr(obj, "_repro_site", None)
            self._repro_frozen = getattr(obj, "_repro_frozen", None)
        else:
            # Fresh allocation (copy, new-from-template): owned data.
            self._repro_guard = None
            self._repro_generation = 0
            self._repro_label = "<buffer>"
            self._repro_site = None
            self._repro_frozen = None

    # -- violation reporting -------------------------------------------
    def _assert_fresh(self) -> None:
        guard = self._repro_guard
        if guard is None or self._repro_generation == guard.generation:
            return
        borrowed = (
            self._repro_site.describe()
            if self._repro_site is not None
            else "<unknown>"
        )
        raise SanitizerError(
            f"stale read of {self._repro_label}: borrowed at {borrowed} "
            f"(generation {self._repro_generation}), but {guard.owner} "
            f"has since run {guard.generation - self._repro_generation} "
            f"more time(s) and overwritten the pooled buffer; .copy() "
            f"the loan before the next run if you need to keep it"
        )

    def _raise_write(self) -> None:
        if self._repro_frozen is not None:
            raise SanitizerError(
                f"write to frozen array {self._repro_frozen}: CSR arrays "
                f"are immutable (reprolint R1 / Theorem 4.5's shared "
                f"layout); build a new graph instead"
            )
        borrowed = (
            self._repro_site.describe()
            if self._repro_site is not None
            else "<unknown>"
        )
        raise SanitizerError(
            f"write through loaned workspace view {self._repro_label} "
            f"(borrowed at {borrowed}): loans are read-only; .copy() "
            f"first if you need a scratch vector"
        )

    def _is_guarded(self) -> bool:
        return self._repro_guard is not None or self._repro_frozen is not None

    # -- read interception ---------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        self._assert_fresh()
        return super().__getitem__(key)

    def __iter__(self) -> Iterator[Any]:
        self._assert_fresh()
        return super().__iter__()

    def copy(self, order: str = "C") -> np.ndarray:
        self._assert_fresh()
        return np.ndarray.copy(self.view(np.ndarray), order)

    def astype(self, *args: Any, **kwargs: Any) -> np.ndarray:
        self._assert_fresh()
        return self.view(np.ndarray).astype(*args, **kwargs)

    def item(self, *args: Any) -> Any:
        self._assert_fresh()
        return super().item(*args)

    def tolist(self) -> Any:
        self._assert_fresh()
        return super().tolist()

    def tobytes(self, order: str = "C") -> bytes:
        self._assert_fresh()
        return super().tobytes(order=order)

    # -- write interception --------------------------------------------
    def __setitem__(self, key: Any, value: Any) -> None:
        if self._is_guarded():
            self._raise_write()
        super().__setitem__(key, value)

    def fill(self, value: Any) -> None:
        if self._is_guarded():
            self._raise_write()
        super().fill(value)

    # -- dispatch hooks -------------------------------------------------
    def __array_ufunc__(
        self, ufunc: Any, method: str, *inputs: Any, **kwargs: Any
    ) -> Any:
        for operand in inputs:
            if isinstance(operand, GuardedArray):
                operand._assert_fresh()
        out = kwargs.get("out")
        if out is not None:
            for target in out:
                if isinstance(target, GuardedArray) and target._is_guarded():
                    target._raise_write()
            kwargs["out"] = tuple(_demote(target) for target in out)
        return getattr(ufunc, method)(*_demote(tuple(inputs)), **kwargs)

    def __array_function__(
        self, func: Any, types: Any, args: Tuple[Any, ...], kwargs: Any
    ) -> Any:
        if (
            getattr(func, "__name__", "") in _WRITING_FUNCTIONS
            and args
            and isinstance(args[0], GuardedArray)
            and args[0]._is_guarded()
        ):
            args[0]._raise_write()
        self._assert_fresh()
        return func(
            *_demote(tuple(args)),
            **{key: _demote(value) for key, value in kwargs.items()},
        )

    def __repr__(self) -> str:
        # Never raise from repr (debuggers walk stale locals freely).
        guard = self._repro_guard
        if guard is not None and self._repro_generation != guard.generation:
            return (
                f"<stale GuardedArray {self._repro_label} "
                f"gen={self._repro_generation} "
                f"owner-gen={guard.generation}>"
            )
        return super().__repr__()


def assert_owned(array: np.ndarray) -> np.ndarray:
    """Assert ``array`` is caller-owned (not a live workspace loan).

    The oracle protocol permits ``sweep_probe`` to return pooled loans;
    back-ends that *promise* fresh arrays (Dijkstra, the directed BFS
    pair) route their results through this so the promise is enforced,
    not just documented.  Returns ``array`` unchanged.
    """
    if isinstance(array, GuardedArray) and array._repro_guard is not None:
        borrowed = (
            array._repro_site.describe()
            if array._repro_site is not None
            else "<unknown>"
        )
        raise SanitizerError(
            f"expected an owned array but received a live loan of "
            f"{array._repro_label} (borrowed at {borrowed}); the "
            f"producer must .copy() before handing over ownership"
        )
    return array


def freeze(array: np.ndarray, label: str) -> np.ndarray:
    """Mark ``array`` immutable; guarded with a diagnosis when armed.

    Always clears the numpy writeable flag (the production behaviour —
    free).  When the sanitizer is armed the returned view additionally
    upgrades write attempts from numpy's bare ``ValueError`` to a
    :class:`~repro.errors.SanitizerError` naming ``label`` and the
    construction site.

    :mutates array: its writeable flag is cleared in place — freezing
        the caller's array is the entire point.
    """
    array.setflags(write=False)
    if not enabled():
        return array
    view = array.view(GuardedArray)
    view._repro_frozen = label
    view._repro_label = label
    view._repro_site = BorrowSite.capture()
    return view
