"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "DisconnectedGraphError",
    "InvalidParameterError",
    "InvalidVertexError",
    "DatasetNotFoundError",
    "BudgetExhaustedError",
    "SanitizerError",
    "ParallelBackendError",
    "StoreFormatError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphConstructionError(ReproError):
    """Raised when an edge list or adjacency input cannot form a valid graph."""


class DisconnectedGraphError(ReproError):
    """Raised when an algorithm requiring a connected graph receives one that
    is disconnected.

    The paper (footnote 2) assumes a connected graph; callers can either
    extract the largest connected component with
    :func:`repro.graph.components.largest_connected_component` or run the
    per-component driver :func:`repro.core.ifecc.eccentricities_per_component`.
    """

    def __init__(self, num_components: int, message: str = "") -> None:
        self.num_components = num_components
        if not message:
            message = (
                f"graph is disconnected ({num_components} components); "
                "extract the largest component or use the per-component driver"
            )
        super().__init__(message)


class InvalidParameterError(ReproError):
    """Raised when an algorithm parameter is out of its documented range."""


class InvalidVertexError(ReproError):
    """Raised when a vertex id is outside ``[0, n)`` for the given graph."""

    def __init__(self, vertex: int, num_vertices: int) -> None:
        self.vertex = vertex
        self.num_vertices = num_vertices
        super().__init__(
            f"vertex {vertex} is out of range for a graph with "
            f"{num_vertices} vertices"
        )


class DatasetNotFoundError(ReproError):
    """Raised when a dataset name is not present in the registry."""


class SanitizerError(ReproError, ValueError):
    """Raised by the runtime workspace sanitizer (:mod:`repro.sanitize`).

    Fires when code violates the buffer-ownership discipline the static
    rules (reprolint R9-R11) encode: reading a pooled distance vector
    after the engine's next run invalidated it, re-entering a pooled
    kernel mid-run, or writing a frozen CSR array.

    Also a :class:`ValueError` so callers (and tests) that guard the
    numpy read-only flag keep working unchanged when the sanitizer
    upgrades the flag violation to a diagnosis with a borrow site.
    """


class BudgetExhaustedError(ReproError):
    """Raised when an algorithm exceeds its configured BFS or time budget."""

    def __init__(self, budget: float, message: str = "") -> None:
        self.budget = budget
        super().__init__(message or f"computation budget exhausted ({budget})")


class StoreFormatError(ReproError):
    """Raised by the binary graph store (:mod:`repro.store`).

    Fires when a ``.rcsr`` container cannot be trusted: bad magic,
    newer-than-supported version, truncated header or payload,
    misaligned slot offsets, a row-pointer array that is not monotone,
    or (under ``verify``) a content fingerprint that no longer matches
    the header digest.
    """


class ParallelBackendError(ReproError, RuntimeError):
    """Raised by the multiprocessing traversal backend (:mod:`repro.parallel`).

    Fires when the process backend cannot deliver a batch: shared memory
    is unavailable on the platform, a worker process died mid-dispatch,
    or a worker reported an exception (whose traceback is carried in the
    message).  Also a :class:`RuntimeError` so generic infrastructure
    guards catch it without importing this module.
    """
