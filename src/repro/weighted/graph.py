"""Weighted undirected graphs in CSR form.

The paper treats unweighted graphs, but every bound it uses (Lemmas 3.1
and 3.3) is a triangle inequality and therefore holds verbatim for
non-negative edge weights with Dijkstra distances.  This subpackage
carries IFECC over to that setting as an extension.

:class:`WeightedGraph` mirrors :class:`repro.graph.csr.Graph` with a
parallel ``weights`` array aligned to ``indices``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro import sanitize
from repro.errors import GraphConstructionError, InvalidVertexError

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """An undirected graph with non-negative edge weights (CSR form).

    Construct via :meth:`from_edges` with ``(u, v, w)`` triples.
    Duplicate edges keep the *minimum* weight; self-loops are dropped.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_weights",
        "_degrees",
        "__weakref__",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if len(weights) != len(indices):
            raise GraphConstructionError(
                "weights must align with indices"
            )
        if len(weights) and weights.min() < 0:
            raise GraphConstructionError("weights must be non-negative")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphConstructionError("malformed indptr")
        degrees = np.diff(indptr).astype(np.int64)
        self._indptr = sanitize.freeze(indptr, "WeightedGraph.indptr")
        self._indices = sanitize.freeze(indices, "WeightedGraph.indices")
        self._weights = sanitize.freeze(weights, "WeightedGraph.weights")
        self._degrees = sanitize.freeze(degrees, "WeightedGraph.degrees")

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int, float]],
        num_vertices: int | None = None,
    ) -> "WeightedGraph":
        """Build from ``(u, v, weight)`` triples."""
        triples = list(edges)
        if num_vertices is None:
            num_vertices = (
                max((max(u, v) for u, v, _w in triples), default=-1) + 1
            )
        best: dict = {}
        for u, v, w in triples:
            u, v = int(u), int(v)
            w = float(w)
            if u == v:
                continue
            if w < 0:
                raise GraphConstructionError("weights must be non-negative")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise GraphConstructionError(
                    f"edge ({u}, {v}) out of range [0, {num_vertices})"
                )
            key = (min(u, v), max(u, v))
            if key not in best or w < best[key]:
                best[key] = w

        adjacency: List[List[Tuple[int, float]]] = [
            [] for _ in range(num_vertices)
        ]
        for (u, v), w in best.items():
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        indices: List[int] = []
        weights: List[float] = []
        for v, neighbors in enumerate(adjacency):
            neighbors.sort()
            indptr[v + 1] = indptr[v] + len(neighbors)
            indices.extend(t for t, _w in neighbors)
            weights.extend(w for _t, w in neighbors)
        return cls(
            indptr,
            np.asarray(indices, dtype=np.int32),
            np.asarray(weights, dtype=np.float64),
        )

    @classmethod
    def from_unweighted(
        cls, graph: Graph, weight: float = 1.0
    ) -> "WeightedGraph":
        """Lift an unweighted :class:`repro.graph.csr.Graph` (uniform
        edge weight)."""
        return cls(
            graph.indptr.copy(),
            graph.indices.copy(),
            np.full(len(graph.indices), float(weight)),
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self._indices) // 2

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        return self._weights

    @property
    def degrees(self) -> np.ndarray:
        return self._degrees

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbor_ids, edge_weights)`` views for vertex ``v``."""
        self._check_vertex(v)
        lo, hi = self._indptr[v], self._indptr[v + 1]
        return self._indices[lo:hi], self._weights[lo:hi]

    def max_degree_vertex(self) -> int:
        if self.num_vertices == 0:
            raise GraphConstructionError("graph has no vertices")
        return int(np.argmax(self._degrees))

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise InvalidVertexError(v, self.num_vertices)

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.num_vertices}, m={self.num_edges})"
