"""Single-source shortest distances on weighted graphs (Dijkstra).

The weighted analogue of :func:`repro.graph.traversal.bfs_distances`:
binary-heap Dijkstra with lazy deletion.  Distances are ``float64``;
unreachable vertices get ``numpy.inf``.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidVertexError
from repro.graph.traversal import BFSCounter
from repro.weighted.graph import WeightedGraph

__all__ = ["dijkstra_distances", "weighted_eccentricity_and_distances"]


def dijkstra_distances(
    graph: WeightedGraph,
    source: int,
    counter: Optional[BFSCounter] = None,
) -> np.ndarray:
    """Distances from ``source`` to every vertex (``inf`` = unreachable).

    :dtype dist: float64
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    edges_scanned = 0
    visited = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        visited += 1
        for pos in range(indptr[u], indptr[u + 1]):
            edges_scanned += 1
            w = int(indices[pos])
            nd = d + float(weights[pos])
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    if counter is not None:
        counter.record(edges_scanned, visited, label=f"dijkstra:{source}")
    return dist


def weighted_eccentricity_and_distances(
    graph: WeightedGraph,
    source: int,
    counter: Optional[BFSCounter] = None,
) -> Tuple[float, np.ndarray]:
    """Weighted eccentricity of ``source`` (within its component) plus
    the distance vector."""
    dist = dijkstra_distances(graph, source, counter=counter)
    finite = dist[np.isfinite(dist)]
    return (float(finite.max()) if len(finite) else 0.0), dist
