"""Single-source shortest distances on weighted graphs (Dijkstra).

The weighted analogue of :func:`repro.graph.traversal.bfs_distances`:
binary-heap Dijkstra with lazy deletion.  Distances are ``float64``;
unreachable vertices get ``numpy.inf``.

:class:`DijkstraOracle` packages the traversal as a
:class:`repro.core.oracles.DistanceOracle`, which is how the
metric-generic :class:`repro.core.solver.EccentricitySolver` (and the
extremes driver) run the paper's Algorithm 2 over non-negative edge
weights.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from repro import sanitize
from repro.counters import TraversalCounter
from repro.errors import (
    DisconnectedGraphError,
    InvalidParameterError,
    InvalidVertexError,
)
from repro.graph.traversal import TraversalCounter
from repro.weighted.graph import WeightedGraph

__all__ = [
    "dijkstra_distances",
    "weighted_eccentricity_and_distances",
    "DijkstraOracle",
]


def dijkstra_distances(
    graph: WeightedGraph,
    source: int,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """Distances from ``source`` to every vertex (``inf`` = unreachable).

    The counter (when given) records one traversal with its scanned-edge
    and settled-vertex totals plus the number of successful edge
    *relaxations* — the Dijkstra-specific work measure.

    :dtype dist: float64
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    edges_scanned = 0
    visited = 0
    relaxations = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        visited += 1
        for pos in range(indptr[u], indptr[u + 1]):
            edges_scanned += 1
            w = int(indices[pos])
            nd = d + float(weights[pos])
            if nd < dist[w]:
                dist[w] = nd
                relaxations += 1
                heapq.heappush(heap, (nd, w))
    if counter is not None:
        counter.record(
            edges_scanned,
            visited,
            label=f"dijkstra:{source}",
            relaxations=relaxations,
        )
    return dist


def weighted_eccentricity_and_distances(
    graph: WeightedGraph,
    source: int,
    counter: Optional[TraversalCounter] = None,
) -> Tuple[float, np.ndarray]:
    """Weighted eccentricity of ``source`` (within its component) plus
    the distance vector."""
    dist = dijkstra_distances(graph, source, counter=counter)
    finite = dist[np.isfinite(dist)]
    return (float(finite.max()) if len(finite) else 0.0), dist


class DijkstraOracle:
    """The non-negative edge-weight oracle (symmetric, ``float64``).

    One Dijkstra per probe; the distance metric is symmetric, so a
    single traversal yields both directions.  Bound comparisons use an
    absolute ``tolerance`` (default ``1e-9``) because distances are sums
    of ``float64`` weights; with integer-valued weights the comparisons
    are exact.
    """

    dtype = np.dtype(np.float64)
    symmetric = True
    metric_name = "IFECC-weighted"
    trace_kind = "dijkstra"

    def __init__(self, graph: WeightedGraph, tolerance: float = 1e-9) -> None:
        self.graph = graph
        self.num_vertices = graph.num_vertices
        self.tolerance = float(tolerance)

    def select_references(
        self, strategy: str, count: int, seed: int
    ) -> np.ndarray:
        # Weighted graphs support the paper-default degree rule only
        # (stable argsort: ties to the smaller id, so count=1 matches
        # max_degree_vertex()).
        if strategy != "degree":
            raise InvalidParameterError(
                f"weighted solver supports only the 'degree' strategy, "
                f"got {strategy!r}"
            )
        order = np.argsort(-self.graph.degrees, kind="stable")
        return order[:count].astype(np.int32)

    def source_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        ecc, dist = weighted_eccentricity_and_distances(
            self.graph, source, counter=counter
        )
        dist = sanitize.assert_owned(dist)
        return ecc, dist, dist

    def sweep_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[Optional[float], np.ndarray]:
        # Unlike BFSOracle this back-end promises *owned* vectors (no
        # pooling in the heap Dijkstra); assert_owned enforces the promise.
        ecc, dist = weighted_eccentricity_and_distances(
            self.graph, source, counter=counter
        )
        return ecc, sanitize.assert_owned(dist)

    def disconnected_error(self) -> DisconnectedGraphError:
        return DisconnectedGraphError(2, "weighted graph is disconnected")

    def gap_cap(self) -> float:
        # Any eccentricity is at most (n - 1) hops of the heaviest edge.
        max_weight = (
            float(self.graph.weights.max()) if len(self.graph.weights) else 0.0
        )
        return float(max(self.num_vertices - 1, 0)) * max_weight
