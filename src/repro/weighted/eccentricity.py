"""Weighted IFECC — the paper's algorithm lifted to non-negative weights.

Lemmas 3.1 and 3.3 are triangle inequalities, so they hold for any
shortest-path metric.  Replacing BFS with Dijkstra in Algorithm 2 gives
an exact weighted eccentricity-distribution algorithm with the same
structure: one reference traversal, a farthest-first order, and bound
tightening until every gap closes.

Floating-point note: bounds are compared with an absolute tolerance
(default 1e-9) because distances are sums of float64 weights; with
integer-valued weights the comparisons are exact.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.result import EccentricityResult
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.traversal import BFSCounter
from repro.weighted.dijkstra import weighted_eccentricity_and_distances
from repro.weighted.graph import WeightedGraph

__all__ = ["weighted_eccentricities", "naive_weighted_eccentricities"]

_TOL = 1e-9


def naive_weighted_eccentricities(
    graph: WeightedGraph,
    counter: Optional[BFSCounter] = None,
) -> np.ndarray:
    """One Dijkstra per vertex — the weighted oracle."""
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.float64)
    for v in range(n):
        ecc[v], _dist = weighted_eccentricity_and_distances(
            graph, v, counter=counter
        )
    return ecc


def weighted_eccentricities(
    graph: WeightedGraph,
    counter: Optional[BFSCounter] = None,
    tolerance: float = _TOL,
) -> EccentricityResult:
    """Exact weighted ED with the IFECC scheme (Dijkstra traversals).

    Returns an :class:`EccentricityResult` whose arrays are ``float64``.
    Raises :class:`DisconnectedGraphError` on disconnected inputs.
    """
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    counter = counter if counter is not None else BFSCounter()
    start = time.perf_counter()

    reference = graph.max_degree_vertex()
    ecc_z, dist_z = weighted_eccentricity_and_distances(
        graph, reference, counter=counter
    )
    if np.any(np.isinf(dist_z)):
        raise DisconnectedGraphError(2, "weighted graph is disconnected")

    lower = np.maximum(dist_z, ecc_z - dist_z)
    upper = dist_z + ecc_z
    lower[reference] = upper[reference] = ecc_z

    # Farthest-first order of the reference.
    order = np.argsort(-dist_z, kind="stable")
    resolved = upper - lower <= tolerance
    for rank, source in enumerate(order):
        if resolved.all():
            break
        source = int(source)
        if source == reference:
            continue
        # Note: like Algorithm 2, every order position is traversed even
        # if the source's own bounds already met — the Lemma 3.3 tail cap
        # is only sound when the whole order prefix has been probed.
        ecc_s, dist_s = weighted_eccentricity_and_distances(
            graph, source, counter=counter
        )
        lower[source] = upper[source] = ecc_s
        lower = np.maximum(lower, np.maximum(dist_s, ecc_s - dist_s))
        upper = np.minimum(upper, dist_s + ecc_s)
        tail = (
            float(dist_z[order[rank + 1]]) if rank + 1 < len(order) else 0.0
        )
        cap = np.maximum(lower, dist_z + tail)
        upper = np.minimum(upper, cap)
        resolved = upper - lower <= tolerance

    elapsed = time.perf_counter() - start
    ecc = lower.copy()
    return EccentricityResult(
        eccentricities=ecc,
        lower=lower,
        upper=upper,
        exact=bool(resolved.all()),
        algorithm="IFECC-weighted",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        reference_nodes=np.asarray([reference], dtype=np.int32),
        counter=counter,
    )
