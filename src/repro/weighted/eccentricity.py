"""Weighted IFECC — the paper's algorithm lifted to non-negative weights.

Lemmas 3.1 and 3.3 are triangle inequalities, so they hold for any
shortest-path metric.  Replacing BFS with Dijkstra in Algorithm 2 gives
an exact weighted eccentricity-distribution algorithm with the same
structure: one reference traversal, a farthest-first order, and bound
tightening until every gap closes.

Since the unification on :class:`repro.core.solver.EccentricitySolver`,
this module is a thin instantiation over
:class:`repro.weighted.dijkstra.DijkstraOracle` — which brings the full
runtime along for free: the anytime ``steps()`` protocol (build a solver
with :func:`weighted_solver`), kIFECC-style budgeting
(:func:`approximate_weighted_eccentricities`) and extremes early-stop
(:func:`weighted_radius_and_diameter`).

Floating-point note: bounds are compared with an absolute tolerance
(default 1e-9) because distances are sums of float64 weights; with
integer-valued weights the comparisons are exact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.extremes import ExtremesResult, oracle_radius_and_diameter
from repro.core.result import EccentricityResult
from repro.core.solver import EccentricitySolver
from repro.errors import InvalidParameterError
from repro.graph.traversal import TraversalCounter
from repro.weighted.dijkstra import (
    DijkstraOracle,
    weighted_eccentricity_and_distances,
)
from repro.weighted.graph import WeightedGraph

__all__ = [
    "weighted_eccentricities",
    "naive_weighted_eccentricities",
    "approximate_weighted_eccentricities",
    "weighted_radius_and_diameter",
    "weighted_solver",
]

_TOL = 1e-9


def naive_weighted_eccentricities(
    graph: WeightedGraph,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """One Dijkstra per vertex — the weighted oracle."""
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.float64)
    for v in range(n):
        ecc[v], _dist = weighted_eccentricity_and_distances(
            graph, v, counter=counter
        )
    return ecc


def weighted_solver(
    graph: WeightedGraph,
    counter: Optional[TraversalCounter] = None,
    tolerance: float = _TOL,
    memoize_distances: bool = False,
) -> EccentricitySolver:
    """An :class:`EccentricitySolver` over Dijkstra distances.

    The solver's :meth:`~EccentricitySolver.steps` iterator is the
    weighted anytime mode: every yielded snapshot leaves valid
    lower/upper bounds in ``solver.bounds``.
    """
    return EccentricitySolver(
        DijkstraOracle(graph, tolerance=tolerance),
        num_references=1,
        memoize_distances=memoize_distances,
        counter=counter,
    )


def weighted_eccentricities(
    graph: WeightedGraph,
    counter: Optional[TraversalCounter] = None,
    tolerance: float = _TOL,
) -> EccentricityResult:
    """Exact weighted ED with the IFECC scheme (Dijkstra traversals).

    Returns an :class:`EccentricityResult` whose arrays are ``float64``.
    Raises :class:`repro.errors.DisconnectedGraphError` on disconnected
    inputs.
    """
    solver = weighted_solver(graph, counter=counter, tolerance=tolerance)
    return solver.run(algorithm="IFECC-weighted")


def approximate_weighted_eccentricities(
    graph: WeightedGraph,
    k: int,
    counter: Optional[TraversalCounter] = None,
    tolerance: float = _TOL,
) -> EccentricityResult:
    """Weighted kIFECC: stop after ``k`` FFO-front Dijkstra probes.

    The weighted twin of
    :func:`repro.core.kifecc.approximate_eccentricities` (Algorithm 3)
    with the paper's lower-bound estimator: the budget is the reference
    traversal plus ``k`` probes, and the returned estimate is the
    lower-bound array — monotonically tightening in ``k``.
    """
    if k < 0:
        raise InvalidParameterError("sample size k must be >= 0")
    solver = weighted_solver(graph, counter=counter, tolerance=tolerance)
    return solver.run_budgeted(
        max_bfs=k + 1, algorithm=f"kIFECC-weighted(k={k})"
    )


def weighted_radius_and_diameter(
    graph: WeightedGraph,
    counter: Optional[TraversalCounter] = None,
    tolerance: float = _TOL,
) -> ExtremesResult:
    """Certified weighted radius and diameter with early termination.

    The extremes rules are bound statements, so the generic driver
    applies unchanged; certification is within ``tolerance``.
    """
    return oracle_radius_and_diameter(
        DijkstraOracle(graph, tolerance=tolerance), counter=counter
    )
