"""Weighted-graph extension: IFECC over Dijkstra distances.

The paper's bounds are triangle inequalities, valid for any
non-negative edge-weight metric; this subpackage carries the algorithm
over (see DESIGN.md §5 — the solver/oracle split, and §6 —
extensions)."""

from repro.weighted.dijkstra import (
    DijkstraOracle,
    dijkstra_distances,
    weighted_eccentricity_and_distances,
)
from repro.weighted.eccentricity import (
    approximate_weighted_eccentricities,
    naive_weighted_eccentricities,
    weighted_eccentricities,
    weighted_radius_and_diameter,
    weighted_solver,
)
from repro.weighted.graph import WeightedGraph

__all__ = [
    "WeightedGraph",
    "DijkstraOracle",
    "dijkstra_distances",
    "weighted_eccentricity_and_distances",
    "weighted_eccentricities",
    "naive_weighted_eccentricities",
    "approximate_weighted_eccentricities",
    "weighted_radius_and_diameter",
    "weighted_solver",
]
