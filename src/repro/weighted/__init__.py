"""Weighted-graph extension: IFECC over Dijkstra distances.

The paper's bounds are triangle inequalities, valid for any
non-negative edge-weight metric; this subpackage carries the algorithm
over (see DESIGN.md §6 — extensions)."""

from repro.weighted.dijkstra import (
    dijkstra_distances,
    weighted_eccentricity_and_distances,
)
from repro.weighted.eccentricity import (
    naive_weighted_eccentricities,
    weighted_eccentricities,
)
from repro.weighted.graph import WeightedGraph

__all__ = [
    "WeightedGraph",
    "dijkstra_distances",
    "weighted_eccentricity_and_distances",
    "weighted_eccentricities",
    "naive_weighted_eccentricities",
]
