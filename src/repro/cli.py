"""Command-line interface: ``repro-ecc`` / ``python -m repro``.

Subcommands
-----------
``ecc``
    Compute the exact eccentricity distribution of a graph (edge-list
    file or registered dataset) with IFECC and print the summary.
``approx``
    Run kIFECC with a BFS budget ``k`` and report bound statistics.
``diameter``
    Exact radius/diameter via IFECC (optionally comparing against the
    SNAP sampling estimator).
``stats``
    Stratification statistics: |F1|, |F2|, layer sizes (Section 5 /
    Figure 12).
``table3``
    Print the paper's Table 3 dataset inventory alongside the synthetic
    stand-ins this reproduction substitutes for them.
``compare``
    Run every exact algorithm on a graph and print a comparison table
    (a one-graph Figure 8).
``generate``
    Generate a synthetic graph (with the dataset stand-ins' structure)
    and write it to an edge-list file.
``report``
    Full analysis report: ED, center/periphery, a diameter path, F1/F2,
    centrality summaries.
``trace``
    Inspect saved run records: ``repro-ecc trace summarize PATH`` prints
    the convergence table of a record written via ``--trace PATH`` on
    ``ecc``/``approx``/``diameter``.  Those three subcommands also take
    ``--progress`` for a live convergence view on stderr.
``bench``
    Benchmark regression gate: ``bench check`` re-verifies every
    committed ``BENCH_*.json`` artifact's recorded claims, ``bench
    compare FRESH BASELINE`` gates a fresh ``--smoke`` artifact against
    a recorded baseline with a configurable tolerance.  Also available
    uninstalled as ``python tools/benchguard``.
``store``
    Manage the binary graph store: ``store build NAME`` materializes a
    dataset stand-in as a mmap-openable ``.rcsr`` container,
    ``store info`` prints a container's header, ``store verify``
    recomputes its content fingerprint.  Every graph-taking subcommand
    also accepts ``store://NAME`` (a collection entry, materialized on
    first use) and ``.rcsr`` file paths directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.distribution import distribution_from_eccentricities
from repro.baselines.snap_diameter import snap_estimate_diameter
from repro.core.ifecc import compute_eccentricities
from repro.core.kifecc import approximate_eccentricities
from repro.core.stratify import stratify
from repro.datasets.loader import load_dataset
from repro.datasets.registry import DATASETS, paper_table3
from repro.errors import ReproError
from repro.graph.components import largest_connected_component
from repro.graph.csr import Graph
from repro.graph.io import read_edge_list

__all__ = ["main", "build_parser"]


#: URL-style prefix selecting a collection entry as a graph source.
_STORE_PREFIX = "store://"


def _store_meta(source: str, graph: Graph) -> Dict[str, Any]:
    """Run-record source metadata for a store-backed ``graph``."""
    from repro.store.format import source_of

    info = source_of(graph)
    meta: Dict[str, Any] = {"source": source}
    if info is not None:
        meta["store"] = {"path": info.path, "fingerprint": info.digest}
    return meta


def _load_graph(source: str, use_lcc: bool) -> Tuple[Graph, Dict[str, Any]]:
    """Resolve ``source`` to ``(graph, meta)``.

    Resolution order: ``store://NAME`` (collection entry, materialized
    on first use), a ``.rcsr`` container path, a registered dataset
    name, then an edge-list file path.  ``meta`` describes where the
    graph came from and is merged into run-record config headers — for
    store-backed graphs it carries the container path and content
    fingerprint.
    """
    if source.startswith(_STORE_PREFIX):
        from repro.datasets.collection import default_collection

        graph = default_collection().open(source[len(_STORE_PREFIX):])
        return graph, _store_meta(source, graph)
    if source.endswith(".rcsr"):
        from repro.store.format import open_store

        graph = open_store(source)
        return graph, _store_meta(source, graph)
    if source in DATASETS:
        return load_dataset(source), {"source": f"dataset:{source}"}
    graph = read_edge_list(source)
    if use_lcc:
        graph, _ids = largest_connected_component(graph)
    return graph, {"source": source}


def _run_traced(
    args: argparse.Namespace,
    graph: Graph,
    config: Dict[str, Any],
    run: "Callable[[], Any]",
) -> Any:
    """Run ``run()`` — traced and/or monitored when flags ask for it.

    With ``--trace PATH`` the solver executes inside a
    :func:`repro.obs.trace.tracing` block feeding a memory sink, and the
    finished run is packaged as a versioned
    :class:`repro.obs.record.RunRecord` written to ``PATH``.  With
    ``--progress`` a live :class:`repro.obs.progress.ProgressMonitor`
    renders the convergence view on stderr; given both, the monitor
    tees every event into the capturing sink.
    """
    trace_path = getattr(args, "trace", None)
    progress = bool(getattr(args, "progress", False))
    if not trace_path and not progress:
        return run()
    from repro.obs.trace import MemorySink, Sink, tracing

    capture = MemorySink() if trace_path else None
    monitor = None
    if progress:
        from repro.obs.progress import ProgressMonitor

        monitor = ProgressMonitor(stream=sys.stderr, forward=capture)
    sink: Sink = monitor if monitor is not None else capture  # type: ignore[assignment]
    with tracing(sink) as tracer:
        try:
            result = run()
        finally:
            if monitor is not None:
                monitor.close()
    if capture is not None and trace_path:
        from repro.obs.record import RunRecord

        record = RunRecord.from_run(
            result,
            graph,
            capture.events,
            config=config,
            metrics=tracer.metrics.snapshot(),
        )
        record.write_jsonl(trace_path)
        print(f"run record written to {trace_path}")
    return result


def _backend_config(args: argparse.Namespace) -> Dict[str, Any]:
    """The ``backend``/``workers`` pair for run-record config headers."""
    return {"backend": args.backend, "workers": args.workers}


def _cmd_ecc(args: argparse.Namespace) -> int:
    graph, meta = _load_graph(args.graph, args.lcc)
    result = _run_traced(
        args,
        graph,
        {
            "command": "ecc",
            "references": args.references,
            **_backend_config(args),
            **meta,
        },
        lambda: compute_eccentricities(
            graph,
            num_references=args.references,
            backend=args.backend,
            workers=args.workers,
        ),
    )
    dist = distribution_from_eccentricities(result.eccentricities)
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}")
    print(
        f"algorithm={result.algorithm} bfs={result.num_bfs} "
        f"time={result.elapsed_seconds:.3f}s"
    )
    print(f"radius={result.radius} diameter={result.diameter}")
    print("eccentricity distribution:")
    print(dist.ascii_plot())
    if args.output:
        np.savetxt(args.output, result.eccentricities, fmt="%d")
        print(f"eccentricities written to {args.output}")
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    graph, meta = _load_graph(args.graph, args.lcc)
    result = _run_traced(
        args,
        graph,
        {
            "command": "approx",
            "k": args.k,
            "estimator": args.estimator,
            **_backend_config(args),
            **meta,
        },
        lambda: approximate_eccentricities(
            graph,
            k=args.k,
            estimator=args.estimator,
            backend=args.backend,
            workers=args.workers,
        ),
    )
    resolved = int(np.count_nonzero(result.lower == result.upper))
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}")
    print(
        f"algorithm={result.algorithm} bfs={result.num_bfs} "
        f"time={result.elapsed_seconds:.3f}s"
    )
    print(
        f"resolved={resolved}/{graph.num_vertices} "
        f"({100.0 * resolved / graph.num_vertices:.2f}%) "
        f"exact={result.exact}"
    )
    if args.output:
        np.savetxt(args.output, result.eccentricities, fmt="%d")
        print(f"estimates written to {args.output}")
    return 0


def _cmd_diameter(args: argparse.Namespace) -> int:
    graph, meta = _load_graph(args.graph, args.lcc)
    result = _run_traced(
        args,
        graph,
        {"command": "diameter", **_backend_config(args), **meta},
        lambda: compute_eccentricities(
            graph, backend=args.backend, workers=args.workers
        ),
    )
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}")
    print(
        f"radius={result.radius} diameter={result.diameter} "
        f"(IFECC, {result.num_bfs} BFS)"
    )
    if args.snap_sample:
        estimate = snap_estimate_diameter(
            graph, sample_size=args.snap_sample, seed=args.seed
        )
        print(
            f"SNAP sampling estimate (k={estimate.sample_size}): "
            f"{estimate.diameter} "
            f"(accuracy {estimate.accuracy_against(result.diameter):.1f}%)"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph, _meta = _load_graph(args.graph, args.lcc)
    strat = stratify(graph)
    sizes = strat.sizes()
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}")
    print(
        f"reference z={strat.reference} (highest degree), "
        f"ecc(z)={strat.eccentricity}"
    )
    print(
        f"|F1|={sizes['F1']} ({sizes['F1'] / sizes['n']:.4%} of n)   "
        f"|F2|={sizes['F2']} ({sizes['F2'] / sizes['n']:.4%} of n)"
    )
    print("layers:")
    for i, size in enumerate(strat.layer_sizes()):
        print(f"  S_{i}: {size}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import compare_algorithms

    graph, _meta = _load_graph(args.graph, args.lcc)
    table = compare_algorithms(
        graph,
        pllecc_budget=args.budget,
        boundecc_max_bfs=args.max_bfs,
        include_naive=args.naive,
    )
    print(table.render())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets.loader import build_standin
    from repro.datasets.registry import get_spec
    from repro.graph.io import write_edge_list

    spec = get_spec(args.dataset)
    graph = build_standin(spec)
    header = (
        f"synthetic stand-in for {spec.full_name} ({spec.kind}), "
        f"seed={spec.seed}\n"
        f"n={graph.num_vertices} m={graph.num_edges}"
    )
    write_edge_list(graph, args.output, header=header)
    print(
        f"wrote {args.dataset} stand-in "
        f"(n={graph.num_vertices}, m={graph.num_edges}) to {args.output}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import analyze

    graph, _meta = _load_graph(args.graph, args.lcc)
    report = analyze(graph, with_closeness=args.closeness)
    print(report.render())
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.obs.benchguard import run_check

    return run_check(args.artifacts, root=args.root, fmt=args.format)


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.benchguard import run_compare

    return run_compare(
        args.fresh,
        args.baseline,
        tolerance=args.tolerance,
        fmt=args.format,
    )


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs.record import RunRecord

    record = RunRecord.read_jsonl(args.record)
    print(record.summarize())
    return 0


def _resolve_store_target(target: str) -> str:
    """Resolve a ``store`` subcommand target to a container path.

    Accepts a ``store://NAME`` reference, a bare dataset name (looked up
    in the default collection), or a ``.rcsr`` file path.
    """
    from repro.datasets.collection import default_collection

    if target.startswith(_STORE_PREFIX):
        target = target[len(_STORE_PREFIX):]
    if target in DATASETS:
        return str(default_collection().path_for(target))
    return target


def _print_store_info(info: Any) -> None:
    print(f"path:         {info.path}")
    print(f"kind:         {info.kind} (v{info.version})")
    print(f"vertices:     {info.num_vertices}")
    print(f"entries:      {info.num_entries}")
    print(f"fingerprint:  {info.digest}")
    print(f"bytes:        {info.file_bytes}")
    for entry in info.arrays:
        print(
            f"  slot {entry.key:<12} {entry.dtype:<8} "
            f"offset={entry.offset:<12} length={entry.length}"
        )


def _cmd_store_build(args: argparse.Namespace) -> int:
    from repro.datasets.collection import GraphCollection, default_collection

    collection = (
        GraphCollection(args.root) if args.root else default_collection()
    )
    for name in args.names:
        info = collection.materialize(
            name, scale=args.scale, force=args.force
        )
        print(
            f"{name}: {info.path} (kind={info.kind}, "
            f"n={info.num_vertices}, entries={info.num_entries}, "
            f"fingerprint={info.digest})"
        )
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    from repro.store.format import read_info

    _print_store_info(read_info(_resolve_store_target(args.target)))
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store.format import verify_store

    info = verify_store(_resolve_store_target(args.target))
    print(f"{info.path}: OK (fingerprint {info.digest})")
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    print(
        f"{'Name':<6} {'Dataset':<14} {'n':>12} {'m':>14} "
        f"{'r':>4} {'d':>4}  {'Type':<9} {'Stand-in'}"
    )
    for name, full, n, m, r, d, kind in paper_table3():
        spec = DATASETS[name]
        standin = f"{spec.family}(n~{spec.standin_n}, seed={spec.seed})"
        print(
            f"{name:<6} {full:<14} {n:>12,} {m:>14,} "
            f"{r:>4} {d:>4}  {kind:<9} {standin}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ecc",
        description=(
            "Scalable exact and anytime graph-eccentricity computation "
            "(IFECC, SIGMOD 2022 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "graph",
            help="dataset name (see `table3`) or edge-list file path",
        )
        p.add_argument(
            "--no-lcc",
            dest="lcc",
            action="store_false",
            help="do not restrict file inputs to the largest component",
        )

    def add_trace_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            metavar="PATH",
            help="write a versioned run record (JSON Lines) of the "
            "computation; inspect it with `trace summarize PATH`",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="render a live convergence view (resolved count, "
            "bound-gap mass, traversal rate, ETA) on stderr while "
            "the solver runs; composes with --trace",
        )

    def add_backend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=("numpy", "process"),
            default="numpy",
            help="traversal backend for batched probes: in-process numpy "
            "(default) or a shared-memory worker pool; results are "
            "identical either way",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="worker-process count for --backend process "
            "(default: all usable cores)",
        )

    p_ecc = sub.add_parser("ecc", help="exact eccentricity distribution")
    add_graph_arg(p_ecc)
    p_ecc.add_argument(
        "-r", "--references", type=int, default=1,
        help="number of reference nodes (paper default: 1)",
    )
    p_ecc.add_argument("-o", "--output", help="write eccentricities to file")
    add_trace_arg(p_ecc)
    add_backend_args(p_ecc)
    p_ecc.set_defaults(func=_cmd_ecc)

    p_approx = sub.add_parser("approx", help="anytime kIFECC estimate")
    add_graph_arg(p_approx)
    p_approx.add_argument(
        "-k", type=int, default=16, help="BFS sample budget (default 16)"
    )
    p_approx.add_argument(
        "--estimator", choices=("lower", "upper", "midpoint"),
        default="lower",
        help="estimate for unresolved vertices (default: lower, as in "
        "Algorithm 3)",
    )
    p_approx.add_argument("-o", "--output", help="write estimates to file")
    add_trace_arg(p_approx)
    add_backend_args(p_approx)
    p_approx.set_defaults(func=_cmd_approx)

    p_dia = sub.add_parser("diameter", help="exact radius and diameter")
    add_graph_arg(p_dia)
    p_dia.add_argument(
        "--snap-sample", type=int, default=0,
        help="also run SNAP's sampling estimator with this sample size",
    )
    p_dia.add_argument("--seed", type=int, default=0)
    add_trace_arg(p_dia)
    add_backend_args(p_dia)
    p_dia.set_defaults(func=_cmd_diameter)

    p_stats = sub.add_parser("stats", help="F1/F2 stratification statistics")
    add_graph_arg(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_table = sub.add_parser("table3", help="print the dataset inventory")
    p_table.set_defaults(func=_cmd_table3)

    p_cmp = sub.add_parser(
        "compare", help="run all exact algorithms and compare"
    )
    add_graph_arg(p_cmp)
    p_cmp.add_argument(
        "--budget", type=float, default=60.0,
        help="PLLECC index-construction budget in seconds (default 60)",
    )
    p_cmp.add_argument(
        "--max-bfs", type=int, default=20000,
        help="BoundECC BFS cap standing in for the cut-off",
    )
    p_cmp.add_argument(
        "--naive", action="store_true",
        help="also run the |V|-BFS baseline (slow)",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_gen = sub.add_parser(
        "generate", help="write a dataset stand-in as an edge list"
    )
    p_gen.add_argument("dataset", help="dataset name (see `table3`)")
    p_gen.add_argument("output", help="output edge-list path")
    p_gen.set_defaults(func=_cmd_generate)

    p_store = sub.add_parser("store", help="manage the binary graph store")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_sbuild = store_sub.add_parser(
        "build",
        help="materialize dataset stand-ins as .rcsr containers",
    )
    p_sbuild.add_argument(
        "names", nargs="+", metavar="NAME",
        help="dataset names (see `table3`)",
    )
    p_sbuild.add_argument(
        "--scale", type=float, default=1.0,
        help="stand-in size multiplier (default 1.0)",
    )
    p_sbuild.add_argument(
        "--force", action="store_true",
        help="rebuild even when the container already exists",
    )
    p_sbuild.add_argument(
        "--root", metavar="DIR",
        help="collection directory (default: $REPRO_STORE_DIR or "
        "~/.cache/repro)",
    )
    p_sbuild.set_defaults(func=_cmd_store_build)
    p_sinfo = store_sub.add_parser(
        "info", help="print a container's header"
    )
    p_sinfo.add_argument(
        "target", help="store://NAME, dataset name, or .rcsr path"
    )
    p_sinfo.set_defaults(func=_cmd_store_info)
    p_sverify = store_sub.add_parser(
        "verify",
        help="recompute and check a container's content fingerprint",
    )
    p_sverify.add_argument(
        "target", help="store://NAME, dataset name, or .rcsr path"
    )
    p_sverify.set_defaults(func=_cmd_store_verify)

    p_bench = sub.add_parser(
        "bench", help="benchmark regression gate (BENCH_*.json artifacts)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bcheck = bench_sub.add_parser(
        "check",
        help="parse every committed BENCH_*.json and re-verify its "
        "recorded claims",
    )
    p_bcheck.add_argument(
        "artifacts", nargs="*", metavar="PATH",
        help="artifact paths (default: BENCH_*.json under --root)",
    )
    p_bcheck.add_argument(
        "--root", default=".",
        help="directory to glob artifacts from (default: .)",
    )
    p_bcheck.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="report style; `github` emits workflow annotations",
    )
    p_bcheck.set_defaults(func=_cmd_bench_check)
    p_bcmp = bench_sub.add_parser(
        "compare",
        help="gate a fresh --smoke artifact against a recorded baseline",
    )
    p_bcmp.add_argument("fresh", help="freshly produced artifact path")
    p_bcmp.add_argument("baseline", help="recorded baseline artifact path")
    p_bcmp.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional shortfall before a headline metric "
        "counts as a regression (default 0.5)",
    )
    p_bcmp.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="report style; `github` emits workflow annotations",
    )
    p_bcmp.set_defaults(func=_cmd_bench_compare)

    p_trace = sub.add_parser("trace", help="inspect saved run records")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_sum = trace_sub.add_parser(
        "summarize",
        help="print the convergence table encoded in a run record",
    )
    p_sum.add_argument("record", help="run-record JSONL path (from --trace)")
    p_sum.set_defaults(func=_cmd_trace_summarize)

    p_rep = sub.add_parser("report", help="full graph analysis report")
    add_graph_arg(p_rep)
    p_rep.add_argument(
        "--closeness", action="store_true",
        help="also compute closeness centrality (quadratic)",
    )
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
