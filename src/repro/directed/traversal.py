"""Forward and backward BFS on directed graphs.

Also home of :class:`DirectedBFSOracle`, the asymmetric-metric back-end
of the generic solver: its reverse-distance hook is what lets
:class:`repro.core.solver.EccentricitySolver` run the paper's Algorithm
2 on digraphs, where ``dist(v, t) != dist(t, v)`` and a sweep probe is a
single *backward* BFS that yields no forward eccentricity.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import sanitize
from repro.counters import TraversalCounter
from repro.errors import (
    DisconnectedGraphError,
    InvalidParameterError,
    InvalidVertexError,
)
from repro.graph.traversal import TraversalCounter
from repro.sentinels import UNREACHED
from repro.directed.graph import DirectedGraph

__all__ = [
    "forward_bfs",
    "backward_bfs",
    "is_strongly_connected",
    "DirectedBFSOracle",
]


def _bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source: int,
    counter: Optional[TraversalCounter],
    label: str,
) -> np.ndarray:
    """Level-synchronous BFS over one arc direction.

    :dtype dist: int32
    :dtype frontier: int64
    """
    dist = np.full(n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    edges = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        csum = np.cumsum(counts)
        offsets = np.repeat(starts - (csum - counts), counts)
        neighbors = indices[np.arange(total, dtype=np.int64) + offsets]
        edges += total
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    if counter is not None:
        counter.record(
            edges, int(np.count_nonzero(dist != UNREACHED)), label=label
        )
    return dist


def forward_bfs(
    graph: DirectedGraph,
    source: int,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """Distances ``dist(source, v)`` along arc directions."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    indptr, indices = graph.forward_view()
    return _bfs(indptr, indices, n, source, counter, f"fwd:{source}")


def backward_bfs(
    graph: DirectedGraph,
    source: int,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """Distances ``dist(v, source)`` — i.e. along *reversed* arcs."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    indptr, indices = graph.backward_view()
    return _bfs(indptr, indices, n, source, counter, f"bwd:{source}")


def is_strongly_connected(graph: DirectedGraph) -> bool:
    """True when every ordered pair is connected (finite directed ecc).

    One forward plus one backward BFS from vertex 0 suffice.
    """
    n = graph.num_vertices
    if n <= 1:
        return True
    if np.any(forward_bfs(graph, 0) == UNREACHED):
        return False
    return not np.any(backward_bfs(graph, 0) == UNREACHED)


class DirectedBFSOracle:
    """The strongly-connected digraph oracle (asymmetric, ``int32``).

    Probe economics differ from the symmetric oracles in exactly the two
    ways the :class:`repro.core.oracles.DistanceOracle` protocol allows:

    * :meth:`source_probe` pays a forward + backward BFS *pair* (two
      counted traversals) — forward for ``ecc_f`` and the FFO, backward
      for the ``dist(., t)`` vector every bound update needs;
    * :meth:`sweep_probe` is a single backward BFS and returns ``None``
      for the eccentricity: ``max_v dist(v, t)`` is the *backward*
      eccentricity, not the forward one being computed, so the solver
      skips the ``set_exact`` step for probed sweep sources.
    """

    dtype = np.dtype(np.int32)
    tolerance = 0.0
    symmetric = False
    metric_name = "DirectedIFECC"
    trace_kind = "bfs-directed"

    def __init__(self, graph: DirectedGraph) -> None:
        self.graph = graph
        self.num_vertices = graph.num_vertices

    def select_references(
        self, strategy: str, count: int, seed: int
    ) -> np.ndarray:
        # Highest out-degree, ties to the smaller id (stable argsort →
        # count=1 matches argmax(out_degrees)).
        if strategy != "degree":
            raise InvalidParameterError(
                f"directed solver supports only the 'degree' strategy, "
                f"got {strategy!r}"
            )
        order = np.argsort(-self.graph.out_degrees(), kind="stable")
        return order[:count].astype(np.int32)

    def source_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        fwd = sanitize.assert_owned(
            forward_bfs(self.graph, source, counter=counter)
        )
        bwd = sanitize.assert_owned(
            backward_bfs(self.graph, source, counter=counter)
        )
        ecc = int(fwd.max()) if self.num_vertices else 0
        return ecc, fwd, bwd

    def sweep_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[Optional[float], np.ndarray]:
        # This back-end promises owned vectors (each backward BFS
        # allocates); assert_owned enforces the promise at the boundary.
        return None, sanitize.assert_owned(
            backward_bfs(self.graph, source, counter=counter)
        )

    def disconnected_error(self) -> DisconnectedGraphError:
        return DisconnectedGraphError(
            2, "directed graph is not strongly connected"
        )

    def gap_cap(self) -> float:
        # Any forward eccentricity of an SCC is < n.
        return float(self.num_vertices)
