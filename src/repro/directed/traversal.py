"""Forward and backward BFS on directed graphs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidVertexError
from repro.graph.traversal import UNREACHED, BFSCounter
from repro.directed.graph import DirectedGraph

__all__ = ["forward_bfs", "backward_bfs", "is_strongly_connected"]


def _bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source: int,
    counter: Optional[BFSCounter],
    label: str,
) -> np.ndarray:
    """Level-synchronous BFS over one arc direction.

    :dtype dist: int32
    :dtype frontier: int64
    """
    dist = np.full(n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    edges = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        csum = np.cumsum(counts)
        offsets = np.repeat(starts - (csum - counts), counts)
        neighbors = indices[np.arange(total, dtype=np.int64) + offsets]
        edges += total
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    if counter is not None:
        counter.record(
            edges, int(np.count_nonzero(dist != UNREACHED)), label=label
        )
    return dist


def forward_bfs(
    graph: DirectedGraph,
    source: int,
    counter: Optional[BFSCounter] = None,
) -> np.ndarray:
    """Distances ``dist(source, v)`` along arc directions."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    indptr, indices = graph.forward_view()
    return _bfs(indptr, indices, n, source, counter, f"fwd:{source}")


def backward_bfs(
    graph: DirectedGraph,
    source: int,
    counter: Optional[BFSCounter] = None,
) -> np.ndarray:
    """Distances ``dist(v, source)`` — i.e. along *reversed* arcs."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    indptr, indices = graph.backward_view()
    return _bfs(indptr, indices, n, source, counter, f"bwd:{source}")


def is_strongly_connected(graph: DirectedGraph) -> bool:
    """True when every ordered pair is connected (finite directed ecc).

    One forward plus one backward BFS from vertex 0 suffice.
    """
    n = graph.num_vertices
    if n <= 1:
        return True
    if np.any(forward_bfs(graph, 0) == UNREACHED):
        return False
    return not np.any(backward_bfs(graph, 0) == UNREACHED)
