"""Forward and backward BFS on directed graphs.

Also home of :class:`DirectedBFSOracle`, the asymmetric-metric back-end
of the generic solver: its reverse-distance hook is what lets
:class:`repro.core.solver.EccentricitySolver` run the paper's Algorithm
2 on digraphs, where ``dist(v, t) != dist(t, v)`` and a sweep probe is a
single *backward* BFS that yields no forward eccentricity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro import sanitize
from repro.counters import TraversalCounter
from repro.errors import (
    DisconnectedGraphError,
    InvalidParameterError,
    InvalidVertexError,
)
from repro.graph.traversal import TraversalCounter
from repro.sentinels import UNREACHED
from repro.directed.graph import DirectedGraph

if TYPE_CHECKING:  # runtime import is lazy (multiprocessing is heavy)
    from repro.parallel.pool import TraversalPool

#: The traversal backends a :class:`DirectedBFSOracle` can select
#: (mirrors :data:`repro.core.oracles.BACKENDS`).
_BACKENDS = ("numpy", "process")

__all__ = [
    "forward_bfs",
    "backward_bfs",
    "is_strongly_connected",
    "DirectedBFSOracle",
]


def _bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source: int,
    counter: Optional[TraversalCounter],
    label: str,
) -> np.ndarray:
    """Level-synchronous BFS over one arc direction.

    :dtype dist: int32
    :dtype frontier: int64
    """
    dist = np.full(n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    edges = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        csum = np.cumsum(counts)
        offsets = np.repeat(starts - (csum - counts), counts)
        neighbors = indices[np.arange(total, dtype=np.int64) + offsets]
        edges += total
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    if counter is not None:
        counter.record(
            edges, int(np.count_nonzero(dist != UNREACHED)), label=label
        )
    return dist


def forward_bfs(
    graph: DirectedGraph,
    source: int,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """Distances ``dist(source, v)`` along arc directions."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    indptr, indices = graph.forward_view()
    return _bfs(indptr, indices, n, source, counter, f"fwd:{source}")


def backward_bfs(
    graph: DirectedGraph,
    source: int,
    counter: Optional[TraversalCounter] = None,
) -> np.ndarray:
    """Distances ``dist(v, source)`` — i.e. along *reversed* arcs."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise InvalidVertexError(source, n)
    indptr, indices = graph.backward_view()
    return _bfs(indptr, indices, n, source, counter, f"bwd:{source}")


def is_strongly_connected(graph: DirectedGraph) -> bool:
    """True when every ordered pair is connected (finite directed ecc).

    One forward plus one backward BFS from vertex 0 suffice.
    """
    n = graph.num_vertices
    if n <= 1:
        return True
    if np.any(forward_bfs(graph, 0) == UNREACHED):
        return False
    return not np.any(backward_bfs(graph, 0) == UNREACHED)


class DirectedBFSOracle:
    """The strongly-connected digraph oracle (asymmetric, ``int32``).

    Probe economics differ from the symmetric oracles in exactly the two
    ways the :class:`repro.core.oracles.DistanceOracle` protocol allows:

    * :meth:`source_probe` pays a forward + backward BFS *pair* (two
      counted traversals) — forward for ``ecc_f`` and the FFO, backward
      for the ``dist(., t)`` vector every bound update needs;
    * :meth:`sweep_probe` is a single backward BFS and returns ``None``
      for the eccentricity: ``max_v dist(v, t)`` is the *backward*
      eccentricity, not the forward one being computed, so the solver
      skips the ``set_exact`` step for probed sweep sources.
    """

    dtype = np.dtype(np.int32)
    tolerance = 0.0
    symmetric = False
    metric_name = "DirectedIFECC"
    trace_kind = "bfs-directed"

    def __init__(
        self,
        graph: DirectedGraph,
        backend: str = "numpy",
        workers: Optional[int] = None,
        pool: Optional["TraversalPool"] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise InvalidParameterError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.graph = graph
        self.num_vertices = graph.num_vertices
        self.backend = backend
        self.workers = workers
        self._pool = pool

    @property
    def pool(self) -> "TraversalPool":
        """The lazily-created worker pool (``backend="process"`` only)."""
        if self._pool is None or self._pool.closed:
            from repro.parallel.pool import pool_for

            self._pool = pool_for(self.graph, workers=self.workers)
        return self._pool

    def ecc_all(
        self,
        sources: Optional[Sequence[int]] = None,
        counter: Optional[TraversalCounter] = None,
    ) -> np.ndarray:
        """Forward eccentricities for ``sources`` (default: all vertices).

        Raises :class:`DisconnectedGraphError` when any source fails to
        reach the whole graph — directed eccentricities are only finite
        on strongly connected digraphs.

        :dtype: int32
        """
        n = self.num_vertices
        if sources is None:
            src = np.arange(n, dtype=np.int64)
        else:
            src = np.asarray(sources, dtype=np.int64)
            bad = (src < 0) | (src >= n)
            if np.any(bad):
                raise InvalidVertexError(int(src[bad][0]), n)
        if self.backend == "process":
            ecc = self.pool.directed_eccentricities(src, counter=counter)
            if n > 1 and np.any(ecc < 0):
                raise self.disconnected_error()
            return ecc
        ecc = np.zeros(len(src), dtype=np.int32)
        for i, s in enumerate(src):
            dist = forward_bfs(self.graph, int(s), counter=counter)
            if n > 1 and np.any(dist == UNREACHED):
                raise self.disconnected_error()
            ecc[i] = int(dist.max()) if n else 0
        return ecc

    def select_references(
        self, strategy: str, count: int, seed: int
    ) -> np.ndarray:
        # Highest out-degree, ties to the smaller id (stable argsort →
        # count=1 matches argmax(out_degrees)).
        if strategy != "degree":
            raise InvalidParameterError(
                f"directed solver supports only the 'degree' strategy, "
                f"got {strategy!r}"
            )
        order = np.argsort(-self.graph.out_degrees(), kind="stable")
        return order[:count].astype(np.int32)

    def source_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        if self.backend == "process":
            # One round trip ships the forward + backward pair: the two
            # traversals land on separate workers and run concurrently.
            rows = self.pool.directed_probe_pair(source, counter=counter)
            fwd = sanitize.assert_owned(rows[0].copy())
            bwd = sanitize.assert_owned(rows[1].copy())
        else:
            fwd = sanitize.assert_owned(
                forward_bfs(self.graph, source, counter=counter)
            )
            bwd = sanitize.assert_owned(
                backward_bfs(self.graph, source, counter=counter)
            )
        ecc = int(fwd.max()) if self.num_vertices else 0
        return ecc, fwd, bwd

    def sweep_probe(
        self,
        source: int,
        counter: Optional[TraversalCounter] = None,
    ) -> Tuple[Optional[float], np.ndarray]:
        # This back-end promises owned vectors (each backward BFS
        # allocates); assert_owned enforces the promise at the boundary.
        return None, sanitize.assert_owned(
            backward_bfs(self.graph, source, counter=counter)
        )

    def disconnected_error(self) -> DisconnectedGraphError:
        return DisconnectedGraphError(
            2, "directed graph is not strongly connected"
        )

    def gap_cap(self) -> float:
        # Any forward eccentricity of an SCC is < n.
        return float(self.num_vertices)
