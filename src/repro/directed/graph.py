"""Directed graphs in dual-CSR form.

The paper restricts itself to undirected graphs, but its related work
(Akiba, Iwata, Kawata 2015 [2]) computes diameters of large *directed*
real graphs with the same bound-propagation idea.  This subpackage
extends the library accordingly.

A :class:`DirectedGraph` stores both the forward adjacency (out-edges)
and the reverse adjacency (in-edges) as CSR arrays, so both forward and
backward BFS are cheap — the directed bound rules need one of each per
source (see :mod:`repro.directed.eccentricity`).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro import sanitize
from repro.errors import GraphConstructionError, InvalidVertexError
from repro.graph.csr import Graph

__all__ = ["DirectedGraph"]


def _build_csr(
    n: int, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst.astype(np.int32)


class DirectedGraph:
    """A directed graph with forward and reverse CSR adjacency."""

    __slots__ = (
        "_fwd_indptr",
        "_fwd_indices",
        "_rev_indptr",
        "_rev_indices",
        "__weakref__",
    )

    def __init__(
        self,
        fwd_indptr: np.ndarray,
        fwd_indices: np.ndarray,
        rev_indptr: np.ndarray,
        rev_indices: np.ndarray,
    ) -> None:
        self._fwd_indptr = np.ascontiguousarray(fwd_indptr, dtype=np.int64)
        self._fwd_indices = np.ascontiguousarray(fwd_indices, dtype=np.int32)
        self._rev_indptr = np.ascontiguousarray(rev_indptr, dtype=np.int64)
        self._rev_indices = np.ascontiguousarray(rev_indices, dtype=np.int32)
        if len(self._fwd_indices) != len(self._rev_indices):
            raise GraphConstructionError(
                "forward and reverse arc counts differ"
            )
        self._fwd_indptr = sanitize.freeze(
            self._fwd_indptr, "DirectedGraph.fwd_indptr"
        )
        self._fwd_indices = sanitize.freeze(
            self._fwd_indices, "DirectedGraph.fwd_indices"
        )
        self._rev_indptr = sanitize.freeze(
            self._rev_indptr, "DirectedGraph.rev_indptr"
        )
        self._rev_indices = sanitize.freeze(
            self._rev_indices, "DirectedGraph.rev_indices"
        )

    @classmethod
    def from_arcs(
        cls,
        arcs: Iterable[Tuple[int, int]],
        num_vertices: int | None = None,
    ) -> "DirectedGraph":
        """Build from ``(u, v)`` arcs (u -> v).  Duplicates collapse;
        self-loops are dropped."""
        pairs = [(int(u), int(v)) for u, v in arcs]
        if num_vertices is None:
            num_vertices = (
                max((max(u, v) for u, v in pairs), default=-1) + 1
            )
        seen = set()
        clean: List[Tuple[int, int]] = []
        for u, v in pairs:
            if u == v or (u, v) in seen:
                continue
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise GraphConstructionError(
                    f"arc ({u}, {v}) out of range [0, {num_vertices})"
                )
            seen.add((u, v))
            clean.append((u, v))
        if clean:
            arr = np.asarray(clean, dtype=np.int64)
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = dst = np.empty(0, dtype=np.int64)
        fwd_indptr, fwd_indices = _build_csr(num_vertices, src, dst)
        rev_indptr, rev_indices = _build_csr(num_vertices, dst, src)
        return cls(fwd_indptr, fwd_indices, rev_indptr, rev_indices)

    @classmethod
    def from_undirected(cls, graph: Graph) -> "DirectedGraph":
        """Lift an undirected :class:`repro.graph.csr.Graph` (each edge
        becomes two arcs)."""
        n = graph.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
        dst = graph.indices.astype(np.int64)
        fwd_indptr, fwd_indices = _build_csr(n, src, dst)
        rev_indptr, rev_indices = _build_csr(n, dst, src)
        return cls(fwd_indptr, fwd_indices, rev_indptr, rev_indices)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._fwd_indptr) - 1

    @property
    def num_arcs(self) -> int:
        return len(self._fwd_indices)

    def out_neighbors(self, v: int) -> np.ndarray:
        self._check_vertex(v)
        return self._fwd_indices[
            self._fwd_indptr[v]: self._fwd_indptr[v + 1]
        ]

    def in_neighbors(self, v: int) -> np.ndarray:
        self._check_vertex(v)
        return self._rev_indices[
            self._rev_indptr[v]: self._rev_indptr[v + 1]
        ]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self._fwd_indptr)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self._rev_indptr)

    def forward_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) of the out-adjacency."""
        return self._fwd_indptr, self._fwd_indices

    def backward_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) of the in-adjacency."""
        return self._rev_indptr, self._rev_indices

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise InvalidVertexError(v, self.num_vertices)

    def __repr__(self) -> str:
        return (
            f"DirectedGraph(n={self.num_vertices}, arcs={self.num_arcs})"
        )
