"""Exact forward eccentricities of strongly connected directed graphs.

The forward eccentricity of ``v`` is ``ecc(v) = max_u dist(v, u)``
(distances along arc directions); the directed radius and diameter are
its min and max.  The triangle inequality gives directed analogues of
Lemma 3.1 — for a processed source ``t`` with known ``ecc(t)``:

* ``ecc(v) <= dist(v, t) + ecc(t)``          (needs ``dist(v, t)``,
  obtained from one *backward* BFS from ``t``), and
* ``ecc(v) >= ecc(t) - dist(t, v)``          (needs ``dist(t, v)``,
  from the *forward* BFS), and ``ecc(v) >= dist(v, t)``.

So each processed source costs one forward + one backward BFS and
tightens every vertex's bounds, exactly like the undirected
BFS-framework with twice the traversal cost — the scheme of Akiba,
Iwata & Kawata (2015) for directed diameters, generalised to the full
eccentricity distribution.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.result import EccentricityResult
from repro.directed.graph import DirectedGraph
from repro.directed.traversal import backward_bfs, forward_bfs
from repro.errors import DisconnectedGraphError, InvalidParameterError
from repro.graph.traversal import UNREACHED, BFSCounter

__all__ = [
    "directed_eccentricities",
    "directed_ifecc_eccentricities",
    "naive_directed_eccentricities",
]

_INF = np.int64(2**40)


def naive_directed_eccentricities(
    graph: DirectedGraph,
    counter: Optional[BFSCounter] = None,
) -> np.ndarray:
    """One forward BFS per vertex — the directed oracle.

    Requires strong connectivity (raises otherwise).
    """
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int32)
    for v in range(n):
        dist = forward_bfs(graph, v, counter=counter)
        if np.any(dist == UNREACHED) and n > 1:
            raise DisconnectedGraphError(
                2, "directed graph is not strongly connected"
            )
        ecc[v] = int(dist.max()) if n else 0
    return ecc


def directed_eccentricities(
    graph: DirectedGraph,
    counter: Optional[BFSCounter] = None,
) -> EccentricityResult:
    """Exact forward eccentricities with bound propagation.

    Sources are chosen by alternating the largest-upper-bound vertex
    (periphery probe) with the smallest-lower-bound vertex (center
    probe), each costing a forward + backward BFS pair.
    """
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    counter = counter if counter is not None else BFSCounter()
    start = time.perf_counter()

    lower = np.zeros(n, dtype=np.int64)
    upper = np.full(n, _INF, dtype=np.int64)
    pick_upper = True
    while True:
        unresolved = np.flatnonzero(lower != upper)
        if len(unresolved) == 0:
            break
        if pick_upper:
            source = int(unresolved[np.argmax(upper[unresolved])])
        else:
            source = int(unresolved[np.argmin(lower[unresolved])])
        pick_upper = not pick_upper

        fwd = forward_bfs(graph, source, counter=counter)
        if np.any(fwd == UNREACHED) and n > 1:
            raise DisconnectedGraphError(
                2, "directed graph is not strongly connected"
            )
        bwd = backward_bfs(graph, source, counter=counter)
        ecc_s = int(fwd.max()) if n else 0
        fwd64 = fwd.astype(np.int64)
        bwd64 = bwd.astype(np.int64)
        # ecc(v) >= max(dist(v, t), ecc(t) - dist(t, v))
        lower = np.maximum(lower, bwd64)
        lower = np.maximum(lower, ecc_s - fwd64)
        # ecc(v) <= dist(v, t) + ecc(t)
        upper = np.minimum(upper, bwd64 + ecc_s)
        lower[source] = upper[source] = ecc_s
        if np.any(lower > upper):
            raise InvalidParameterError(
                "inconsistent directed bounds (bad input graph?)"
            )

    elapsed = time.perf_counter() - start
    ecc = lower.astype(np.int32)
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm="DirectedECC",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        counter=counter,
    )


def directed_ifecc_eccentricities(
    graph: DirectedGraph,
    counter: Optional[BFSCounter] = None,
) -> EccentricityResult:
    """Exact forward eccentricities with the IFECC scheme carried over
    to digraphs.

    Fix a reference ``z`` (highest out-degree).  One forward BFS from
    ``z`` gives ``dist(z, .)`` and ``ecc_f(z)``; one backward BFS gives
    ``dist(., z)``.  Walk the vertices ``u`` in non-increasing
    ``dist(z, u)`` (the forward FFO of ``z``): probing ``u`` is a single
    *backward* BFS, which yields ``dist(v, u)`` for every ``v`` at once —

    * lower: ``ecc_f(v) >= dist(v, u)``;
    * upper (the directed Lemma 3.3 tail cap): once the whole prefix of
      the order has been probed, every unprobed ``u`` has
      ``dist(z, u) <= tail``, so
      ``ecc_f(v) <= max(lb(v), dist(v, z) + tail)``.

    Each probe costs ONE traversal (the bound-propagation variant
    :func:`directed_eccentricities` pays two per source), and the tail
    cap closes the parity-stuck vertices wholesale — the same reason
    IFECC beats BoundECC on undirected graphs.
    """
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("graph must have at least one vertex")
    counter = counter if counter is not None else BFSCounter()
    start = time.perf_counter()

    reference = int(np.argmax(graph.out_degrees()))
    fwd_z = forward_bfs(graph, reference, counter=counter)
    if np.any(fwd_z == UNREACHED) and n > 1:
        raise DisconnectedGraphError(
            2, "directed graph is not strongly connected"
        )
    bwd_z = backward_bfs(graph, reference, counter=counter)
    if np.any(bwd_z == UNREACHED) and n > 1:
        raise DisconnectedGraphError(
            2, "directed graph is not strongly connected"
        )
    ecc_z = int(fwd_z.max()) if n else 0
    fwd_z64 = fwd_z.astype(np.int64)
    bwd_z64 = bwd_z.astype(np.int64)

    # Seed with the directed Lemma 3.1 pair for t = z.
    lower = np.maximum(bwd_z64, ecc_z - fwd_z64)
    upper = bwd_z64 + ecc_z
    lower[reference] = upper[reference] = ecc_z

    # Forward FFO of z (ties by id).
    order = np.argsort(-fwd_z64, kind="stable")
    unresolved = np.flatnonzero(lower != upper)
    for rank, u in enumerate(order):
        if len(unresolved) == 0:
            break
        u = int(u)
        if u == reference:
            continue
        bwd_u = backward_bfs(graph, u, counter=counter).astype(np.int64)
        lower = np.maximum(lower, bwd_u)
        tail = int(fwd_z64[order[rank + 1]]) if rank + 1 < n else 0
        cap = np.maximum(lower, bwd_z64 + tail)
        upper = np.minimum(upper, cap)
        unresolved = unresolved[lower[unresolved] != upper[unresolved]]

    if np.any(lower != upper):  # pragma: no cover - exhausting the
        # order always closes the bounds (tail reaches 0)
        raise InvalidParameterError("directed IFECC failed to converge")
    elapsed = time.perf_counter() - start
    ecc = lower.astype(np.int32)
    return EccentricityResult(
        eccentricities=ecc,
        lower=ecc.copy(),
        upper=ecc.copy(),
        exact=True,
        algorithm="DirectedIFECC",
        num_bfs=counter.bfs_runs,
        elapsed_seconds=elapsed,
        reference_nodes=np.asarray([reference], dtype=np.int32),
        counter=counter,
    )
